//! Detection-oriented metrics for intrusion detection.
//!
//! NIDS practitioners rarely stop at multi-class accuracy: what matters
//! operationally is the **detection rate** (how many attack flows are
//! flagged), the **false-alarm rate** (how much benign traffic is flagged)
//! and the trade-off between the two as the alarm threshold moves (ROC
//! curve / AUC).  This module provides those metrics on top of binary
//! "benign vs. attack" ground truth, which every multi-class model in this
//! repository can produce by mapping its predicted class to *attack* when it
//! is not the benign class.

use crate::{EvalError, Result};
use serde::{Deserialize, Serialize};

/// Outcome counts of a binary benign/attack evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionCounts {
    /// Attack flows flagged as attacks.
    pub true_positives: u64,
    /// Benign flows flagged as attacks (false alarms).
    pub false_positives: u64,
    /// Benign flows passed as benign.
    pub true_negatives: u64,
    /// Attack flows passed as benign (misses).
    pub false_negatives: u64,
}

impl DetectionCounts {
    /// Tallies counts from parallel "is attack" prediction/label slices.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::LengthMismatch`] if the slices differ in length
    /// or [`EvalError::InvalidArgument`] if they are empty.
    pub fn from_binary(predicted_attack: &[bool], actual_attack: &[bool]) -> Result<Self> {
        if predicted_attack.len() != actual_attack.len() {
            return Err(EvalError::LengthMismatch {
                predictions: predicted_attack.len(),
                labels: actual_attack.len(),
            });
        }
        if predicted_attack.is_empty() {
            return Err(EvalError::InvalidArgument("cannot evaluate zero samples".into()));
        }
        let mut counts = DetectionCounts::default();
        for (&p, &a) in predicted_attack.iter().zip(actual_attack) {
            match (p, a) {
                (true, true) => counts.true_positives += 1,
                (true, false) => counts.false_positives += 1,
                (false, false) => counts.true_negatives += 1,
                (false, true) => counts.false_negatives += 1,
            }
        }
        Ok(counts)
    }

    /// Tallies counts from multi-class predictions, treating every class
    /// other than `benign_class` as an attack.
    ///
    /// # Errors
    ///
    /// Same as [`DetectionCounts::from_binary`].
    pub fn from_multiclass(
        predictions: &[usize],
        labels: &[usize],
        benign_class: usize,
    ) -> Result<Self> {
        let predicted: Vec<bool> = predictions.iter().map(|&p| p != benign_class).collect();
        let actual: Vec<bool> = labels.iter().map(|&l| l != benign_class).collect();
        Self::from_binary(&predicted, &actual)
    }

    /// Total number of evaluated flows.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Detection rate (recall on the attack class): TP / (TP + FN).
    /// Zero when there are no attack flows.
    pub fn detection_rate(&self) -> f64 {
        let attacks = self.true_positives + self.false_negatives;
        if attacks == 0 {
            return 0.0;
        }
        self.true_positives as f64 / attacks as f64
    }

    /// False-alarm rate: FP / (FP + TN). Zero when there is no benign
    /// traffic.
    pub fn false_alarm_rate(&self) -> f64 {
        let benign = self.false_positives + self.true_negatives;
        if benign == 0 {
            return 0.0;
        }
        self.false_positives as f64 / benign as f64
    }

    /// Precision on the attack class: TP / (TP + FP). Zero when nothing was
    /// flagged.
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives + self.false_positives;
        if flagged == 0 {
            return 0.0;
        }
        self.true_positives as f64 / flagged as f64
    }

    /// F1 score of the attack class.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.detection_rate();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Binary accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / total as f64
    }
}

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Decision threshold that produced this point.
    pub threshold: f64,
    /// False-positive (false-alarm) rate at this threshold.
    pub false_positive_rate: f64,
    /// True-positive (detection) rate at this threshold.
    pub true_positive_rate: f64,
}

/// A receiver-operating-characteristic curve built from per-flow attack
/// scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    points: Vec<RocPoint>,
}

impl RocCurve {
    /// Builds the ROC curve from per-flow scores (higher = more suspicious)
    /// and the binary attack ground truth.
    ///
    /// The curve contains one point per distinct score (each score acts as a
    /// threshold: flows with `score >= threshold` are flagged), framed by the
    /// trivial (0, 0) and (1, 1) endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::LengthMismatch`] for mismatched inputs,
    /// [`EvalError::InvalidArgument`] for empty input, non-finite scores, or
    /// ground truth that contains only one of the two classes.
    pub fn from_scores(scores: &[f64], actual_attack: &[bool]) -> Result<Self> {
        if scores.len() != actual_attack.len() {
            return Err(EvalError::LengthMismatch {
                predictions: scores.len(),
                labels: actual_attack.len(),
            });
        }
        if scores.is_empty() {
            return Err(EvalError::InvalidArgument(
                "cannot build a ROC curve from zero samples".into(),
            ));
        }
        if scores.iter().any(|s| !s.is_finite()) {
            return Err(EvalError::InvalidArgument("scores must be finite".into()));
        }
        let positives = actual_attack.iter().filter(|&&a| a).count() as f64;
        let negatives = actual_attack.len() as f64 - positives;
        if positives == 0.0 || negatives == 0.0 {
            return Err(EvalError::InvalidArgument(
                "ROC needs both attack and benign samples in the ground truth".into(),
            ));
        }

        // Sort by descending score; sweep the threshold across the data.
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut points = vec![RocPoint {
            threshold: f64::INFINITY,
            false_positive_rate: 0.0,
            true_positive_rate: 0.0,
        }];
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut index = 0;
        while index < order.len() {
            let threshold = scores[order[index]];
            // Consume every sample tied at this threshold before emitting a point.
            while index < order.len() && scores[order[index]] == threshold {
                if actual_attack[order[index]] {
                    tp += 1.0;
                } else {
                    fp += 1.0;
                }
                index += 1;
            }
            points.push(RocPoint {
                threshold,
                false_positive_rate: fp / negatives,
                true_positive_rate: tp / positives,
            });
        }
        Ok(Self { points })
    }

    /// The curve's points, ordered by decreasing threshold.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the curve (trapezoidal rule), in `[0, 1]`.
    pub fn auc(&self) -> f64 {
        let mut area = 0.0;
        for pair in self.points.windows(2) {
            let dx = pair[1].false_positive_rate - pair[0].false_positive_rate;
            let avg_y = 0.5 * (pair[1].true_positive_rate + pair[0].true_positive_rate);
            area += dx * avg_y;
        }
        area.clamp(0.0, 1.0)
    }

    /// The detection rate achievable at (or below) a target false-alarm rate.
    pub fn detection_rate_at_false_alarm(&self, max_false_alarm_rate: f64) -> f64 {
        self.points
            .iter()
            .filter(|p| p.false_positive_rate <= max_false_alarm_rate)
            .map(|p| p.true_positive_rate)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_tallied_correctly() {
        let predicted = [true, true, false, false, true];
        let actual = [true, false, false, true, true];
        let counts = DetectionCounts::from_binary(&predicted, &actual).unwrap();
        assert_eq!(counts.true_positives, 2);
        assert_eq!(counts.false_positives, 1);
        assert_eq!(counts.true_negatives, 1);
        assert_eq!(counts.false_negatives, 1);
        assert_eq!(counts.total(), 5);
        assert!((counts.detection_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((counts.false_alarm_rate() - 0.5).abs() < 1e-12);
        assert!((counts.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((counts.accuracy() - 0.6).abs() < 1e-12);
        assert!(counts.f1() > 0.0);
    }

    #[test]
    fn counts_validate_inputs_and_handle_degenerate_cases() {
        assert!(DetectionCounts::from_binary(&[true], &[]).is_err());
        assert!(DetectionCounts::from_binary(&[], &[]).is_err());
        let all_benign = DetectionCounts::from_binary(&[false, false], &[false, false]).unwrap();
        assert_eq!(all_benign.detection_rate(), 0.0);
        assert_eq!(all_benign.false_alarm_rate(), 0.0);
        assert_eq!(all_benign.precision(), 0.0);
        assert_eq!(all_benign.f1(), 0.0);
        assert_eq!(DetectionCounts::default().accuracy(), 0.0);
    }

    #[test]
    fn multiclass_mapping_treats_non_benign_as_attack() {
        // benign class = 0; prediction 2 on a label-3 flow is still a detection.
        let counts = DetectionCounts::from_multiclass(&[0, 2, 1, 0], &[0, 3, 0, 2], 0).unwrap();
        assert_eq!(counts.true_positives, 1);
        assert_eq!(counts.false_positives, 1);
        assert_eq!(counts.true_negatives, 1);
        assert_eq!(counts.false_negatives, 1);
    }

    #[test]
    fn perfect_scores_give_unit_auc() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let actual = [true, true, false, false];
        let roc = RocCurve::from_scores(&scores, &actual).unwrap();
        assert!((roc.auc() - 1.0).abs() < 1e-12);
        assert_eq!(roc.detection_rate_at_false_alarm(0.0), 1.0);
    }

    #[test]
    fn inverted_scores_give_zero_auc_and_random_scores_give_half() {
        let actual = [true, true, false, false];
        let inverted = RocCurve::from_scores(&[0.1, 0.2, 0.8, 0.9], &actual).unwrap();
        assert!(inverted.auc() < 1e-12);
        // Identical scores: single threshold step, AUC = 0.5 by symmetry.
        let flat = RocCurve::from_scores(&[0.5, 0.5, 0.5, 0.5], &actual).unwrap();
        assert!((flat.auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn roc_validates_inputs() {
        assert!(RocCurve::from_scores(&[0.5], &[true, false]).is_err());
        assert!(RocCurve::from_scores(&[], &[]).is_err());
        assert!(RocCurve::from_scores(&[f64::NAN, 0.1], &[true, false]).is_err());
        assert!(RocCurve::from_scores(&[0.4, 0.6], &[true, true]).is_err());
    }

    #[test]
    fn roc_points_are_monotone_and_detection_rate_lookup_works() {
        let scores = [0.95, 0.9, 0.7, 0.65, 0.6, 0.4, 0.3, 0.2];
        let actual = [true, true, false, true, true, false, false, false];
        let roc = RocCurve::from_scores(&scores, &actual).unwrap();
        let points = roc.points();
        assert!(points.windows(2).all(|w| {
            w[1].false_positive_rate >= w[0].false_positive_rate
                && w[1].true_positive_rate >= w[0].true_positive_rate
        }));
        let auc = roc.auc();
        assert!(auc > 0.7 && auc <= 1.0);
        assert!(roc.detection_rate_at_false_alarm(0.26) >= 0.5);
        assert_eq!(roc.detection_rate_at_false_alarm(1.0), 1.0);
    }
}

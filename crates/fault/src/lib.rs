//! # `fault-inject` — bit-flip fault injection
//!
//! Fig. 5 of the CyberHD paper compares how a DNN and CyberHD degrade when a
//! fraction of the bits holding their deployed model is flipped at random
//! (memory upsets, voltage-scaling errors, radiation effects).  This crate
//! provides the injector used by that study:
//!
//! * [`BitFlipInjector`] flips each bit of a parameter block independently
//!   with probability `rate` (the paper's "hardware error" percentage),
//! * helpers target the three deployment artefacts of this repository:
//!   raw `f32` parameter slices (MLP/SVM weights), quantized hypervectors
//!   (CyberHD class memory at 1–32 bits) and bit-packed binary hypervectors,
//! * [`disk::DiskFaultInjector`] models **storage** faults — truncation,
//!   byte flips and torn writes against persisted artifacts (write-ahead
//!   logs, checkpoints, sealed detectors) — for the crash/recovery matrix.
//!
//! Every injector run is seeded, so a robustness curve is re-generated
//! bit-for-bit.
//!
//! # Example
//!
//! ```
//! use fault_inject::BitFlipInjector;
//!
//! # fn main() -> Result<(), fault_inject::FaultError> {
//! let mut weights = vec![1.0f32; 1024];
//! let mut injector = BitFlipInjector::new(0.05, 42)?;
//! let flipped = injector.flip_f32_slice(&mut weights);
//! assert!(flipped > 0);
//! assert!(weights.iter().any(|&w| w != 1.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;

pub use disk::{DiskFault, DiskFaultInjector};

use baselines::mlp::Mlp;
use baselines::svm::LinearSvm;
use hdc::{BinaryHypervector, QuantizedHypervector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;

/// Errors produced by the fault injector.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// The flip rate was outside `[0, 1]` or not finite.
    InvalidRate(f64),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidRate(rate) => {
                write!(f, "bit-flip rate must lie in [0, 1], got {rate}")
            }
        }
    }
}

impl Error for FaultError {}

/// Crate-local result alias.
pub type Result<T, E = FaultError> = std::result::Result<T, E>;

/// A seeded random bit-flip injector.
///
/// Each bit of the targeted storage is flipped independently with probability
/// `rate`, matching the uniform memory-upset model of the paper's robustness
/// study.
#[derive(Debug, Clone)]
pub struct BitFlipInjector {
    rate: f64,
    rng: StdRng,
    flipped: u64,
}

impl BitFlipInjector {
    /// Creates an injector flipping each bit with probability `rate`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidRate`] if `rate` is not in `[0, 1]`.
    pub fn new(rate: f64, seed: u64) -> Result<Self> {
        if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
            return Err(FaultError::InvalidRate(rate));
        }
        Ok(Self { rate, rng: StdRng::seed_from_u64(seed), flipped: 0 })
    }

    /// The configured per-bit flip probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Total number of bits flipped by this injector so far.
    pub fn total_flipped(&self) -> u64 {
        self.flipped
    }

    /// Draws how many of `bits` storage bits get flipped.
    ///
    /// For efficiency the binomial draw is approximated by a normal when the
    /// expected count is large; for small expectations each bit is considered
    /// individually.
    fn draw_flip_count(&mut self, bits: u64) -> u64 {
        if self.rate <= 0.0 || bits == 0 {
            return 0;
        }
        if self.rate >= 1.0 {
            return bits;
        }
        let expectation = self.rate * bits as f64;
        if expectation < 32.0 {
            let mut count = 0;
            for _ in 0..bits {
                if self.rng.gen::<f64>() < self.rate {
                    count += 1;
                }
            }
            count
        } else {
            // Normal approximation to Binomial(bits, rate).
            let std = (expectation * (1.0 - self.rate)).sqrt();
            let u1: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = self.rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (expectation + std * z).round().clamp(0.0, bits as f64) as u64
        }
    }

    /// Flips bits in a raw `f32` parameter slice (32 bits per element).
    /// Returns the number of flipped bits.
    pub fn flip_f32_slice(&mut self, values: &mut [f32]) -> u64 {
        let total_bits = values.len() as u64 * 32;
        let flips = self.draw_flip_count(total_bits);
        for _ in 0..flips {
            let index = self.rng.gen_range(0..values.len());
            let bit = self.rng.gen_range(0..32u32);
            let raw = values[index].to_bits() ^ (1u32 << bit);
            values[index] = f32::from_bits(raw);
        }
        self.flipped += flips;
        flips
    }

    /// Flips bits in a quantized hypervector (its physical storage width per
    /// element).  Returns the number of flipped bits.
    pub fn flip_quantized(&mut self, hv: &mut QuantizedHypervector) -> u64 {
        let bits_per_element = hv.width().bits();
        let total_bits = hv.fault_sites() as u64;
        let flips = self.draw_flip_count(total_bits);
        for _ in 0..flips {
            let element = self.rng.gen_range(0..hv.dim());
            let bit = self.rng.gen_range(0..bits_per_element);
            hv.flip_bit(element, bit).expect("element and bit indices are in range");
        }
        self.flipped += flips;
        flips
    }

    /// Flips bits across a whole set of quantized class hypervectors.
    /// Returns the number of flipped bits.
    pub fn flip_quantized_set(&mut self, hvs: &mut [QuantizedHypervector]) -> u64 {
        hvs.iter_mut().map(|hv| self.flip_quantized(hv)).sum()
    }

    /// Flips bits in a bit-packed binary hypervector.
    /// Returns the number of flipped bits.
    pub fn flip_binary(&mut self, hv: &mut BinaryHypervector) -> u64 {
        let total_bits = hv.dim() as u64;
        let flips = self.draw_flip_count(total_bits);
        for _ in 0..flips {
            let index = self.rng.gen_range(0..hv.dim());
            hv.flip(index);
        }
        self.flipped += flips;
        flips
    }

    /// Flips bits in every weight matrix and bias vector of a trained MLP
    /// (the paper's DNN robustness scenario).  Returns the number of flipped
    /// bits.
    pub fn flip_mlp(&mut self, mlp: &mut Mlp) -> u64 {
        let mut flips = 0;
        for layer in mlp.layers_mut() {
            flips += self.flip_f32_slice(layer.weights.as_mut_slice());
            flips += self.flip_f32_slice(&mut layer.bias);
        }
        flips
    }

    /// Flips bits in every weight vector of a trained linear SVM.
    /// Returns the number of flipped bits.
    pub fn flip_svm(&mut self, svm: &mut LinearSvm) -> u64 {
        let mut flips = 0;
        for weights in svm.weights_mut() {
            flips += self.flip_f32_slice(weights);
        }
        flips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::{BitWidth, Hypervector};

    #[test]
    fn rate_is_validated() {
        assert!(BitFlipInjector::new(-0.1, 0).is_err());
        assert!(BitFlipInjector::new(1.1, 0).is_err());
        assert!(BitFlipInjector::new(f64::NAN, 0).is_err());
        assert!(BitFlipInjector::new(0.0, 0).is_ok());
        assert!(BitFlipInjector::new(1.0, 0).is_ok());
        assert_eq!(BitFlipInjector::new(0.25, 0).unwrap().rate(), 0.25);
    }

    #[test]
    fn zero_rate_flips_nothing() {
        let mut injector = BitFlipInjector::new(0.0, 1).unwrap();
        let mut weights = vec![1.0f32; 100];
        assert_eq!(injector.flip_f32_slice(&mut weights), 0);
        assert!(weights.iter().all(|&w| w == 1.0));
        assert_eq!(injector.total_flipped(), 0);
    }

    #[test]
    fn full_rate_flips_every_bit_count() {
        let mut injector = BitFlipInjector::new(1.0, 2).unwrap();
        let mut weights = vec![0.0f32; 8];
        let flips = injector.flip_f32_slice(&mut weights);
        assert_eq!(flips, 8 * 32);
    }

    #[test]
    fn flip_count_tracks_the_requested_rate() {
        let mut injector = BitFlipInjector::new(0.05, 3).unwrap();
        let mut weights = vec![1.0f32; 10_000];
        let flips = injector.flip_f32_slice(&mut weights) as f64;
        let expected = 0.05 * 10_000.0 * 32.0;
        assert!(
            (flips - expected).abs() < expected * 0.1,
            "flips {flips} should be close to expectation {expected}"
        );
        assert_eq!(injector.total_flipped(), flips as u64);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = |seed| {
            let mut injector = BitFlipInjector::new(0.02, seed).unwrap();
            let mut weights = vec![1.5f32; 256];
            injector.flip_f32_slice(&mut weights);
            weights
        };
        // Compare bit patterns: exponent flips can produce NaN, and
        // NaN != NaN would fail a value comparison despite determinism.
        let bits = |v: Vec<f32>| v.into_iter().map(f32::to_bits).collect::<Vec<u32>>();
        assert_eq!(bits(run(7)), bits(run(7)));
        assert_ne!(bits(run(7)), bits(run(8)));
    }

    #[test]
    fn quantized_hypervectors_are_perturbed_in_place() {
        let hv = Hypervector::from_fn(512, |i| (i as f32 * 0.37).sin());
        for width in BitWidth::ALL {
            let mut q = QuantizedHypervector::quantize(&hv, width);
            let original = q.clone();
            let mut injector = BitFlipInjector::new(0.10, 5).unwrap();
            let flips = injector.flip_quantized(&mut q);
            assert!(flips > 0, "width {width:?}");
            assert_ne!(q, original, "width {width:?}");
        }
    }

    #[test]
    fn quantized_set_flipping_spreads_over_all_classes() {
        let hv = Hypervector::from_fn(256, |i| (i as f32 * 0.11).cos());
        let mut classes: Vec<_> =
            (0..4).map(|_| QuantizedHypervector::quantize(&hv, BitWidth::B8)).collect();
        let originals = classes.clone();
        let mut injector = BitFlipInjector::new(0.2, 9).unwrap();
        let flips = injector.flip_quantized_set(&mut classes);
        assert!(flips > 100);
        let changed = classes.iter().zip(&originals).filter(|(a, b)| a != b).count();
        assert_eq!(changed, 4, "every class hypervector should be perturbed at 20%");
    }

    #[test]
    fn binary_hypervector_flipping_changes_about_rate_bits() {
        let mut rng = hdc::rng::HdcRng::seed_from(11);
        let original = BinaryHypervector::random(10_000, &mut rng);
        let mut corrupted = original.clone();
        let mut injector = BitFlipInjector::new(0.10, 13).unwrap();
        injector.flip_binary(&mut corrupted);
        let distance = original.hamming_distance(&corrupted).unwrap();
        // Some flips may hit the same bit twice, so allow slack around 1000.
        assert!((700..=1100).contains(&distance), "distance {distance}");
    }

    #[test]
    fn mlp_and_svm_weights_are_reachable() {
        use baselines::mlp::MlpConfig;
        use baselines::svm::SvmConfig;
        use baselines::Classifier;

        let xs = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.1, 0.0], vec![0.9, 1.0]];
        let ys = vec![0, 1, 0, 1];

        let mut mlp =
            Mlp::new(MlpConfig::new(2, 2).hidden_layers(vec![8]).epochs(10).seed(1)).unwrap();
        mlp.fit(&xs, &ys).unwrap();
        let before = mlp.layers()[0].weights.clone();
        let mut injector = BitFlipInjector::new(0.3, 17).unwrap();
        assert!(injector.flip_mlp(&mut mlp) > 0);
        assert_ne!(mlp.layers()[0].weights, before);

        let mut svm = LinearSvm::new(SvmConfig::new(2, 2).epochs(5).seed(2)).unwrap();
        svm.fit(&xs, &ys).unwrap();
        let before = svm.weights().to_vec();
        assert!(injector.flip_svm(&mut svm) > 0);
        assert_ne!(svm.weights(), before.as_slice());
    }
}

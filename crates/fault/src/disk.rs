//! Seeded disk-corruption faults for durability testing.
//!
//! Where [`BitFlipInjector`](crate::BitFlipInjector) models memory upsets
//! in a *deployed* model, [`DiskFaultInjector`] models what storage does
//! to *persisted* artifacts — write-ahead logs, checkpoints, sealed
//! detector files — when a process dies mid-write or a medium degrades:
//!
//! * **truncation** — the tail of a file never made it to disk (torn
//!   fsync, lost cache),
//! * **byte flips** — latent sector corruption or a bad transfer,
//! * **torn writes** — an append persisted only partially.
//!
//! Every fault is drawn from a seeded stream, so a crash/recovery matrix
//! is reproducible bit for bit.  The injector operates on in-memory byte
//! buffers; callers read the file, corrupt the bytes and write them back
//! — keeping the faults synchronous and the tests hermetic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a [`DiskFaultInjector::corrupt`] call did to the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Removed this many trailing bytes.
    Truncated(usize),
    /// Flipped one bit in the byte at this offset.
    FlippedByte(usize),
    /// Nothing happened (the buffer was empty).
    None,
}

/// A seeded injector of storage-level corruption (see the
/// [module docs](self)).
#[derive(Debug, Clone)]
pub struct DiskFaultInjector {
    rng: StdRng,
}

impl DiskFaultInjector {
    /// Creates an injector drawing its faults from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    /// Removes a random positive number of trailing bytes (at least one,
    /// up to the whole buffer).  Returns how many were removed; `0` only
    /// for an empty buffer.
    pub fn truncate(&mut self, bytes: &mut Vec<u8>) -> usize {
        if bytes.is_empty() {
            return 0;
        }
        let cut = self.rng.gen_range(0..bytes.len());
        let removed = bytes.len() - cut;
        bytes.truncate(cut);
        removed
    }

    /// Truncates the buffer to a uniformly random prefix **at or past**
    /// `keep` bytes — the "kill the process at a random offset, but after
    /// this much was already durable" form the crash matrix uses.
    /// Returns the number of bytes removed.
    pub fn truncate_after(&mut self, bytes: &mut Vec<u8>, keep: usize) -> usize {
        if bytes.len() <= keep {
            return 0;
        }
        let cut = self.rng.gen_range(keep..=bytes.len());
        let removed = bytes.len() - cut;
        bytes.truncate(cut);
        removed
    }

    /// Flips one random bit of one random byte.  Returns the byte offset,
    /// or `None` for an empty buffer.
    pub fn flip_byte(&mut self, bytes: &mut [u8]) -> Option<usize> {
        if bytes.is_empty() {
            return None;
        }
        let at = self.rng.gen_range(0..bytes.len());
        bytes[at] ^= 1 << self.rng.gen_range(0..8u32);
        Some(at)
    }

    /// Flips one random bit in each of `count` independently chosen bytes
    /// (offsets may repeat — a repeat flips a second bit, or the same bit
    /// back).  Returns the offsets flipped.
    pub fn flip_bytes(&mut self, bytes: &mut [u8], count: usize) -> Vec<usize> {
        let mut flipped = Vec::with_capacity(count.min(bytes.len()));
        for _ in 0..count {
            match self.flip_byte(bytes) {
                Some(at) => flipped.push(at),
                None => break,
            }
        }
        flipped
    }

    /// Appends only a random **strict prefix** of `record` — a torn
    /// append: the write started but the process died before it finished.
    /// Returns how many of `record`'s bytes landed.
    pub fn torn_write(&mut self, bytes: &mut Vec<u8>, record: &[u8]) -> usize {
        if record.is_empty() {
            return 0;
        }
        let landed = self.rng.gen_range(0..record.len());
        bytes.extend_from_slice(&record[..landed]);
        landed
    }

    /// Applies one fault chosen at random: truncation or a byte flip,
    /// equally likely.  Returns what happened.
    pub fn corrupt(&mut self, bytes: &mut Vec<u8>) -> DiskFault {
        if bytes.is_empty() {
            return DiskFault::None;
        }
        if self.rng.gen_bool(0.5) {
            DiskFault::Truncated(self.truncate(bytes))
        } else {
            match self.flip_byte(bytes) {
                Some(at) => DiskFault::FlippedByte(at),
                None => DiskFault::None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_are_seed_deterministic() {
        let base: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        let run = |seed: u64| {
            let mut injector = DiskFaultInjector::new(seed);
            let mut bytes = base.clone();
            let removed = injector.truncate(&mut bytes);
            let flips = injector.flip_bytes(&mut bytes, 5);
            let landed = injector.torn_write(&mut bytes, &base[..64]);
            (bytes, removed, flips, landed)
        };
        assert_eq!(run(42), run(42), "same seed, same faults");
        assert_ne!(run(42).0, run(43).0, "different seeds diverge");
    }

    #[test]
    fn truncate_always_removes_something_from_a_non_empty_buffer() {
        let mut injector = DiskFaultInjector::new(7);
        for len in [1usize, 2, 17, 1024] {
            let mut bytes = vec![0xABu8; len];
            let removed = injector.truncate(&mut bytes);
            assert!(removed >= 1 && removed <= len);
            assert_eq!(bytes.len(), len - removed);
        }
        let mut empty = Vec::new();
        assert_eq!(injector.truncate(&mut empty), 0);
    }

    #[test]
    fn truncate_after_respects_the_durable_floor() {
        let mut injector = DiskFaultInjector::new(11);
        for _ in 0..100 {
            let mut bytes = vec![1u8; 300];
            injector.truncate_after(&mut bytes, 120);
            assert!(bytes.len() >= 120, "durable prefix must survive");
        }
        let mut short = vec![1u8; 50];
        assert_eq!(injector.truncate_after(&mut short, 120), 0);
        assert_eq!(short.len(), 50);
    }

    #[test]
    fn flips_change_exactly_the_reported_bytes() {
        let mut injector = DiskFaultInjector::new(13);
        let original = vec![0u8; 512];
        let mut bytes = original.clone();
        let flipped = injector.flip_bytes(&mut bytes, 8);
        assert_eq!(flipped.len(), 8);
        for (i, (a, b)) in original.iter().zip(&bytes).enumerate() {
            if a != b {
                assert!(flipped.contains(&i), "byte {i} changed without being reported");
                assert_eq!((a ^ b).count_ones(), 1, "exactly one bit flips per visit");
            }
        }
        let mut empty: [u8; 0] = [];
        assert!(injector.flip_byte(&mut empty).is_none());
    }

    #[test]
    fn torn_writes_land_a_strict_prefix() {
        let mut injector = DiskFaultInjector::new(17);
        let record: Vec<u8> = (0..100u8).collect();
        for _ in 0..50 {
            let mut file = vec![0xEEu8; 10];
            let landed = injector.torn_write(&mut file, &record);
            assert!(landed < record.len(), "a torn write never completes");
            assert_eq!(&file[10..], &record[..landed]);
        }
    }

    #[test]
    fn corrupt_always_does_something_to_a_non_empty_buffer() {
        let mut injector = DiskFaultInjector::new(19);
        let mut saw_truncate = false;
        let mut saw_flip = false;
        for _ in 0..64 {
            let original = vec![0x5Au8; 256];
            let mut bytes = original.clone();
            match injector.corrupt(&mut bytes) {
                DiskFault::Truncated(n) => {
                    saw_truncate = true;
                    assert_eq!(bytes.len(), 256 - n);
                }
                DiskFault::FlippedByte(at) => {
                    saw_flip = true;
                    assert_ne!(bytes[at], original[at]);
                }
                DiskFault::None => panic!("non-empty buffers must be corrupted"),
            }
        }
        assert!(saw_truncate && saw_flip, "both fault kinds must occur");
        let mut empty = Vec::new();
        assert_eq!(injector.corrupt(&mut empty), DiskFault::None);
    }
}

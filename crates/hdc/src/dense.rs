//! Dense real-valued hypervectors and their algebra.
//!
//! CyberHD trains class hypervectors in full (f32) precision and only
//! quantizes for deployment/robustness studies, so the dense representation is
//! the workhorse of the whole reproduction.  [`Hypervector`] wraps a
//! `Vec<f32>` and provides the standard HDC operations:
//!
//! * **bundling** (element-wise addition) — superimposes information,
//! * **binding** (element-wise multiplication) — associates two vectors,
//! * **permutation** (cyclic rotation) — encodes order/position,
//! * **similarity** (cosine / dot) — compares vectors,
//! * **normalization** — projects onto the unit sphere before variance
//!   analysis (step D of the CyberHD workflow).

use crate::similarity;
use crate::{HdcError, Result};
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense real-valued hypervector.
///
/// The element type is `f32`: the paper's "full precision" configuration.
/// Hypervectors are value types; all binary operations verify that both
/// operands have the same dimensionality and panic otherwise (operator
/// overloads) or return [`HdcError::DimensionMismatch`] (named methods).
///
/// # Example
///
/// ```
/// use hdc::Hypervector;
///
/// let a = Hypervector::from_vec(vec![1.0, 0.0, -1.0, 2.0]);
/// let b = Hypervector::from_vec(vec![0.5, 1.0, 1.0, 0.0]);
/// let bundled = a.bundle(&b).unwrap();
/// assert_eq!(bundled.as_slice(), &[1.5, 1.0, 0.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hypervector {
    values: Vec<f32>,
}

impl Hypervector {
    /// Creates a zero hypervector of dimensionality `dim`.
    ///
    /// # Example
    ///
    /// ```
    /// let z = hdc::Hypervector::zeros(8);
    /// assert_eq!(z.dim(), 8);
    /// assert!(z.iter().all(|&v| v == 0.0));
    /// ```
    pub fn zeros(dim: usize) -> Self {
        Self { values: vec![0.0; dim] }
    }

    /// Creates a hypervector whose elements are all `value`.
    pub fn splat(dim: usize, value: f32) -> Self {
        Self { values: vec![value; dim] }
    }

    /// Wraps an existing vector of elements.
    pub fn from_vec(values: Vec<f32>) -> Self {
        Self { values }
    }

    /// Builds a hypervector by evaluating `f` at every dimension index.
    pub fn from_fn(dim: usize, f: impl FnMut(usize) -> f32) -> Self {
        Self { values: (0..dim).map(f).collect() }
    }

    /// Dimensionality (number of elements).
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the hypervector has zero dimensionality.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrows the elements as a slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Borrows the elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Consumes the hypervector and returns the underlying element vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.values
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.values.iter()
    }

    /// Iterates mutably over the elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.values.iter_mut()
    }

    fn check_dim(&self, other: &Self) -> Result<()> {
        if self.dim() != other.dim() {
            return Err(HdcError::DimensionMismatch { expected: self.dim(), actual: other.dim() });
        }
        Ok(())
    }

    /// Bundles (element-wise adds) two hypervectors, producing a new one.
    ///
    /// Bundling superimposes the information of both operands; it is the HDC
    /// analogue of set union and is how class hypervectors accumulate their
    /// members.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the operands disagree on
    /// dimensionality.
    pub fn bundle(&self, other: &Self) -> Result<Self> {
        self.check_dim(other)?;
        Ok(Self::from_vec(self.values.iter().zip(&other.values).map(|(a, b)| a + b).collect()))
    }

    /// Bundles `other` into `self` in place, scaled by `weight`.
    ///
    /// This is the primitive behind CyberHD's adaptive update
    /// `C_l ← C_l + η(1−δ)·H`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the operands disagree on
    /// dimensionality.
    pub fn bundle_scaled_in_place(&mut self, other: &Self, weight: f32) -> Result<()> {
        self.check_dim(other)?;
        // Kernel axpy: element-wise mul + add, bit-exact on every dispatch
        // path (identical to the plain loop this replaces).
        crate::kernel::active().axpy(&mut self.values, weight, &other.values);
        Ok(())
    }

    /// Binds (element-wise multiplies) two hypervectors.
    ///
    /// Binding associates two pieces of information; the result is nearly
    /// orthogonal to both operands.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the operands disagree on
    /// dimensionality.
    pub fn bind(&self, other: &Self) -> Result<Self> {
        self.check_dim(other)?;
        Ok(Self::from_vec(self.values.iter().zip(&other.values).map(|(a, b)| a * b).collect()))
    }

    /// Cyclically permutes (rotates) the hypervector by `shift` positions.
    ///
    /// Permutation encodes sequence position: `ρ(x)` is nearly orthogonal to
    /// `x` for random `x`, yet the operation is exactly invertible.
    pub fn permute(&self, shift: usize) -> Self {
        let d = self.dim();
        if d == 0 {
            return self.clone();
        }
        let shift = shift % d;
        let mut out = Vec::with_capacity(d);
        out.extend_from_slice(&self.values[d - shift..]);
        out.extend_from_slice(&self.values[..d - shift]);
        Self::from_vec(out)
    }

    /// Scales every element by `factor`, in place.
    pub fn scale_in_place(&mut self, factor: f32) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, factor: f32) -> Self {
        let mut out = self.clone();
        out.scale_in_place(factor);
        out
    }

    /// Dot product with another hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the operands disagree on
    /// dimensionality.
    pub fn dot(&self, other: &Self) -> Result<f32> {
        self.check_dim(other)?;
        Ok(similarity::dot(&self.values, &other.values))
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        similarity::dot(&self.values, &self.values).sqrt()
    }

    /// Cosine similarity with another hypervector, in `[-1, 1]`.
    ///
    /// Returns `0.0` when either operand has zero norm, which matches the
    /// convention used by the CyberHD trainer (an empty class hypervector is
    /// "maximally dissimilar but not anti-similar" to any query).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the operands disagree on
    /// dimensionality.
    pub fn cosine(&self, other: &Self) -> Result<f32> {
        self.check_dim(other)?;
        Ok(similarity::cosine(&self.values, &other.values))
    }

    /// Normalizes the hypervector to unit L2 norm, in place.
    ///
    /// A zero hypervector is left unchanged (there is no meaningful
    /// direction to preserve). This is step (D) of the CyberHD workflow and a
    /// prerequisite for the cross-class variance computation.
    pub fn normalize_in_place(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            self.scale_in_place(1.0 / n);
        }
    }

    /// Returns a unit-norm copy (see [`Hypervector::normalize_in_place`]).
    pub fn normalized(&self) -> Self {
        let mut out = self.clone();
        out.normalize_in_place();
        out
    }

    /// Clamps every element into `[lo, hi]`, in place.
    pub fn clamp_in_place(&mut self, lo: f32, hi: f32) {
        for v in &mut self.values {
            *v = v.clamp(lo, hi);
        }
    }

    /// Element-wise sign, mapping `>= 0` to `+1.0` and `< 0` to `-1.0`.
    ///
    /// This is the bipolarization step used by the 1-bit deployment mode.
    pub fn to_bipolar(&self) -> Self {
        Self::from_vec(self.values.iter().map(|&v| if v >= 0.0 { 1.0 } else { -1.0 }).collect())
    }

    /// Sets the element at `index` to zero.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] if `index >= dim()`.
    pub fn zero_dimension(&mut self, index: usize) -> Result<()> {
        let d = self.dim();
        let v = self.values.get_mut(index).ok_or(HdcError::IndexOutOfRange { index, bound: d })?;
        *v = 0.0;
        Ok(())
    }

    /// Mean of the elements.
    pub fn mean(&self) -> f32 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f32>() / self.values.len() as f32
    }

    /// Population variance of the elements.
    pub fn variance(&self) -> f32 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.values.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / self.values.len() as f32
    }

    /// Minimum and maximum element, or `None` for an empty hypervector.
    pub fn min_max(&self) -> Option<(f32, f32)> {
        if self.values.is_empty() {
            return None;
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Maximum absolute element value (L∞ norm).
    pub fn max_abs(&self) -> f32 {
        self.values.iter().fold(0.0_f32, |acc, v| acc.max(v.abs()))
    }

    /// Returns `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

impl From<Vec<f32>> for Hypervector {
    fn from(values: Vec<f32>) -> Self {
        Self::from_vec(values)
    }
}

impl From<&[f32]> for Hypervector {
    fn from(values: &[f32]) -> Self {
        Self::from_vec(values.to_vec())
    }
}

impl AsRef<[f32]> for Hypervector {
    fn as_ref(&self) -> &[f32] {
        &self.values
    }
}

impl FromIterator<f32> for Hypervector {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

impl Index<usize> for Hypervector {
    type Output = f32;
    fn index(&self, index: usize) -> &f32 {
        &self.values[index]
    }
}

impl IndexMut<usize> for Hypervector {
    fn index_mut(&mut self, index: usize) -> &mut f32 {
        &mut self.values[index]
    }
}

impl IntoIterator for Hypervector {
    type Item = f32;
    type IntoIter = std::vec::IntoIter<f32>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.into_iter()
    }
}

impl<'a> IntoIterator for &'a Hypervector {
    type Item = &'a f32;
    type IntoIter = std::slice::Iter<'a, f32>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

macro_rules! checked_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &Hypervector {
            type Output = Hypervector;
            /// # Panics
            ///
            /// Panics if the operands disagree on dimensionality.
            fn $method(self, rhs: &Hypervector) -> Hypervector {
                assert_eq!(self.dim(), rhs.dim(), "hypervector dimension mismatch");
                Hypervector::from_vec(
                    self.values.iter().zip(&rhs.values).map(|(a, b)| a $op b).collect(),
                )
            }
        }
    };
}

checked_binop!(Add, add, +);
checked_binop!(Sub, sub, -);
checked_binop!(Mul, mul, *);

impl AddAssign<&Hypervector> for Hypervector {
    /// # Panics
    ///
    /// Panics if the operands disagree on dimensionality.
    fn add_assign(&mut self, rhs: &Hypervector) {
        assert_eq!(self.dim(), rhs.dim(), "hypervector dimension mismatch");
        for (a, b) in self.values.iter_mut().zip(&rhs.values) {
            *a += b;
        }
    }
}

impl SubAssign<&Hypervector> for Hypervector {
    /// # Panics
    ///
    /// Panics if the operands disagree on dimensionality.
    fn sub_assign(&mut self, rhs: &Hypervector) {
        assert_eq!(self.dim(), rhs.dim(), "hypervector dimension mismatch");
        for (a, b) in self.values.iter_mut().zip(&rhs.values) {
            *a -= b;
        }
    }
}

impl Neg for &Hypervector {
    type Output = Hypervector;
    fn neg(self) -> Hypervector {
        Hypervector::from_vec(self.values.iter().map(|v| -v).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::HdcRng;

    fn random_hv(dim: usize, seed: u64) -> Hypervector {
        let mut rng = HdcRng::seed_from(seed);
        Hypervector::from_fn(dim, |_| rng.standard_normal() as f32)
    }

    #[test]
    fn zeros_and_splat() {
        let z = Hypervector::zeros(16);
        assert_eq!(z.dim(), 16);
        assert_eq!(z.norm(), 0.0);
        let s = Hypervector::splat(4, 2.0);
        assert_eq!(s.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn bundle_adds_elementwise() {
        let a = Hypervector::from_vec(vec![1.0, 2.0, 3.0]);
        let b = Hypervector::from_vec(vec![4.0, -2.0, 1.0]);
        assert_eq!(a.bundle(&b).unwrap().as_slice(), &[5.0, 0.0, 4.0]);
    }

    #[test]
    fn bundle_dimension_mismatch_is_error() {
        let a = Hypervector::zeros(4);
        let b = Hypervector::zeros(5);
        assert_eq!(a.bundle(&b), Err(HdcError::DimensionMismatch { expected: 4, actual: 5 }));
    }

    #[test]
    fn bind_is_elementwise_product() {
        let a = Hypervector::from_vec(vec![1.0, -1.0, 2.0]);
        let b = Hypervector::from_vec(vec![3.0, 3.0, 0.5]);
        assert_eq!(a.bind(&b).unwrap().as_slice(), &[3.0, -3.0, 1.0]);
    }

    #[test]
    fn bundle_scaled_in_place_matches_manual_update() {
        let mut c = Hypervector::from_vec(vec![1.0, 1.0]);
        let h = Hypervector::from_vec(vec![2.0, -4.0]);
        c.bundle_scaled_in_place(&h, 0.5).unwrap();
        assert_eq!(c.as_slice(), &[2.0, -1.0]);
    }

    #[test]
    fn permute_rotates_and_round_trips() {
        let a = Hypervector::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let p = a.permute(1);
        assert_eq!(p.as_slice(), &[4.0, 1.0, 2.0, 3.0]);
        // Permuting by dim is the identity.
        assert_eq!(a.permute(4), a);
        // Composition of shifts wraps around.
        assert_eq!(a.permute(3).permute(1), a);
    }

    #[test]
    fn permute_empty_is_noop() {
        let a = Hypervector::zeros(0);
        assert_eq!(a.permute(3).dim(), 0);
    }

    #[test]
    fn permuted_random_vector_is_nearly_orthogonal() {
        let a = random_hv(4096, 42);
        let p = a.permute(1);
        let cos = a.cosine(&p).unwrap();
        assert!(cos.abs() < 0.1, "cosine {cos} should be near zero");
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let a = random_hv(512, 3);
        let c = a.cosine(&a).unwrap();
        assert!((c - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_of_opposite_vectors_is_minus_one() {
        let a = random_hv(512, 4);
        let b = -&a;
        let c = a.cosine(&b).unwrap();
        assert!((c + 1.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_with_zero_vector_is_zero() {
        let a = random_hv(64, 5);
        let z = Hypervector::zeros(64);
        assert_eq!(a.cosine(&z).unwrap(), 0.0);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut a = random_hv(256, 6);
        a.normalize_in_place();
        assert!((a.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut z = Hypervector::zeros(8);
        z.normalize_in_place();
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn bipolarization_maps_to_signs() {
        let a = Hypervector::from_vec(vec![0.3, -0.2, 0.0, -7.0]);
        assert_eq!(a.to_bipolar().as_slice(), &[1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn zero_dimension_works_and_bounds_checks() {
        let mut a = Hypervector::from_vec(vec![1.0, 2.0, 3.0]);
        a.zero_dimension(1).unwrap();
        assert_eq!(a.as_slice(), &[1.0, 0.0, 3.0]);
        assert!(matches!(a.zero_dimension(3), Err(HdcError::IndexOutOfRange { .. })));
    }

    #[test]
    fn statistics_are_correct() {
        let a = Hypervector::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.mean(), 2.5);
        assert!((a.variance() - 1.25).abs() < 1e-6);
        assert_eq!(a.min_max(), Some((1.0, 4.0)));
        assert_eq!(a.max_abs(), 4.0);
        assert!(a.is_finite());
    }

    #[test]
    fn empty_statistics_are_defined() {
        let a = Hypervector::zeros(0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.min_max(), None);
    }

    #[test]
    fn operator_overloads_match_methods() {
        let a = random_hv(32, 7);
        let b = random_hv(32, 8);
        assert_eq!((&a + &b), a.bundle(&b).unwrap());
        assert_eq!((&a * &b), a.bind(&b).unwrap());
        let mut c = a.clone();
        c += &b;
        assert_eq!(c, a.bundle(&b).unwrap());
        let mut d = a.clone();
        d -= &b;
        assert_eq!(d, (&a - &b));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn operator_add_panics_on_mismatch() {
        let a = Hypervector::zeros(3);
        let b = Hypervector::zeros(4);
        let _ = &a + &b;
    }

    #[test]
    fn conversions_round_trip() {
        let v = vec![1.0_f32, 2.0, 3.0];
        let hv = Hypervector::from(v.clone());
        assert_eq!(hv.as_ref(), v.as_slice());
        assert_eq!(hv.clone().into_vec(), v);
        let collected: Hypervector = v.iter().copied().collect();
        assert_eq!(collected, hv);
    }

    #[test]
    fn serde_round_trip_via_json_like_debug() {
        // serde is wired up; round-trip through the bincode-free `serde_test`
        // style is overkill here, so assert the derive exists by serializing
        // to a `Vec<u8>` with `serde::Serialize` through a manual writer.
        let hv = Hypervector::from_vec(vec![1.5, -2.0]);
        let as_string = format!("{:?}", hv);
        assert!(as_string.contains("1.5"));
    }
}

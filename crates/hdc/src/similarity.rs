//! Similarity kernels.
//!
//! CyberHD's learning rule and its inference step are both built on cosine
//! similarity between an encoded query and the class hypervectors; the 1-bit
//! deployment mode replaces cosine with normalized Hamming similarity, which
//! is its exact counterpart for bipolar vectors.  These free functions are the
//! hot kernels of the whole system and are deliberately written over plain
//! slices so every representation (dense, quantized, batched matrix rows) can
//! share them.  Since the SIMD layer landed they are thin fronts over
//! [`crate::kernel::Kernels::active`]: the reduction order of [`dot`] is
//! fixed *per dispatch path* (the scalar path keeps the historical four-way
//! unrolled order bit-for-bit), and [`hamming_distance`] is bit-exact on
//! every path.

/// Dot product of two equally sized slices, via the active
/// [`crate::kernel`] dispatch path.
///
/// Deterministic per dispatch path: the accumulation order is fixed for a
/// given path, and the scalar path (`CYBERHD_FORCE_SCALAR=1`) reproduces
/// the crate's historical four-accumulator order bit-for-bit.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Example
///
/// ```
/// assert_eq!(hdc::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    crate::kernel::active().dot(a, b)
}

/// Euclidean (L2) norm of a slice.
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity of two equally sized slices, in `[-1, 1]`.
///
/// Returns `0.0` when either operand has zero norm.
///
/// # Example
///
/// ```
/// let c = hdc::cosine(&[1.0, 0.0], &[0.0, 1.0]);
/// assert!(c.abs() < 1e-6);
/// ```
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine similarity when the norm of `b` is already known.
///
/// The CyberHD trainer pre-computes class-hypervector norms once per batch, so
/// the per-sample work reduces to a dot product plus one division.
/// Returns `0.0` when either norm is zero.
pub fn cosine_with_norm(a: &[f32], a_norm: f32, b: &[f32], b_norm: f32) -> f32 {
    if a_norm == 0.0 || b_norm == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (a_norm * b_norm)).clamp(-1.0, 1.0)
}

/// Hamming distance between two equally sized `u64` word slices, via the
/// active [`crate::kernel`] dispatch path (bit-exact on every path).
///
/// The caller is responsible for ensuring that bits beyond the logical
/// dimensionality are zero in both operands (see
/// [`crate::BinaryHypervector::mask_tail`]).
pub fn hamming_distance(a_words: &[u64], b_words: &[u64]) -> usize {
    crate::kernel::active().hamming_distance(a_words, b_words)
}

/// Normalized Hamming similarity in `[-1, 1]` for packed words of logical
/// dimensionality `dim`.
///
/// Equal vectors map to `1.0`, complementary vectors to `-1.0`; a zero `dim`
/// maps to `0.0`.
pub fn normalized_hamming_similarity(a_words: &[u64], b_words: &[u64], dim: usize) -> f32 {
    if dim == 0 {
        return 0.0;
    }
    1.0 - 2.0 * hamming_distance(a_words, b_words) as f32 / dim as f32
}

/// Index and value of the largest score, ties broken in favour of the
/// lowest index (the determinism convention of the whole inference path).
///
/// Returns `None` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(hdc::similarity::argmax(&[0.1, 0.9, 0.9]), Some((1, 0.9)));
/// assert_eq!(hdc::similarity::argmax(&[]), None);
/// ```
pub fn argmax(scores: &[f32]) -> Option<(usize, f32)> {
    if scores.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_sim = f32::NEG_INFINITY;
    for (i, &s) in scores.iter().enumerate() {
        if s > best_sim {
            best = i;
            best_sim = s;
        }
    }
    Some((best, best_sim))
}

/// Squared Euclidean distance between two equally sized slices.
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_handles_non_multiple_of_four_lengths() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(dot(&a, &b), 35.0);
    }

    #[test]
    fn dot_of_empty_slices_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm_matches_hand_computation() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_bounds_and_degenerate_cases() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        let c = cosine(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert!((c - 1.0).abs() < 1e-6);
        let c = cosine(&[1.0, 0.0], &[-1.0, 0.0]);
        assert!((c + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_with_norm_matches_cosine() {
        let a = [0.3, -0.7, 1.2, 0.0, 2.2];
        let b = [1.3, 0.7, -0.2, 0.4, -1.0];
        let reference = cosine(&a, &b);
        let fast = cosine_with_norm(&a, norm(&a), &b, norm(&b));
        assert!((reference - fast).abs() < 1e-6);
    }

    #[test]
    fn hamming_and_normalized_similarity() {
        let a = [0b1010u64];
        let b = [0b0110u64];
        assert_eq!(hamming_distance(&a, &b), 2);
        // dim = 4 bits in use -> similarity 1 - 2*2/4 = 0
        assert_eq!(normalized_hamming_similarity(&a, &b, 4), 0.0);
        assert_eq!(normalized_hamming_similarity(&a, &a, 4), 1.0);
        assert_eq!(normalized_hamming_similarity(&a, &a, 0), 0.0);
    }

    #[test]
    fn squared_euclidean_matches_hand_computation() {
        assert_eq!(squared_euclidean(&[1.0, 2.0], &[4.0, 6.0]), 25.0);
    }

    #[test]
    fn argmax_breaks_ties_towards_the_lowest_index() {
        assert_eq!(argmax(&[0.5, 1.0, 1.0, 0.2]), Some((1, 1.0)));
        assert_eq!(argmax(&[-2.0]), Some((0, -2.0)));
        assert_eq!(argmax(&[]), None);
        // All-NaN keeps the first index, matching the serial `nearest` loop.
        let (i, _) = argmax(&[f32::NAN, f32::NAN]).unwrap();
        assert_eq!(i, 0);
    }
}

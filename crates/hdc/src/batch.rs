//! Zero-copy batch views: the row-major batch currency of every engine.
//!
//! The first two engine generations moved batches around as `&[Vec<f32>]` —
//! one heap allocation per row, pointer-chasing in every kernel, and a forced
//! copy whenever a caller already held contiguous data (a preprocessed
//! matrix, a memory-mapped capture, a slice of a larger batch).  A
//! [`BatchView`] replaces that with a borrowed, contiguous, row-major
//! `&[f32]` plus a row width:
//!
//! * **zero-copy** — viewing an existing matrix, or any sub-range of its
//!   rows, costs nothing;
//! * **cache-friendly** — kernels stream one allocation linearly instead of
//!   hopping between per-row heap blocks;
//! * **cheap to slice** — [`BatchView::rows_range`] hands chunked engines a
//!   sub-view without touching the data.
//!
//! [`BatchBuffer`] is the owned companion used by the legacy `&[Vec<f32>]`
//! entry points, which survive as thin flatten-then-view wrappers.

use crate::{HdcError, Result};

/// A borrowed row-major batch of feature vectors: contiguous data plus a
/// fixed row width.
///
/// # Example
///
/// ```
/// use hdc::BatchView;
///
/// # fn main() -> Result<(), hdc::HdcError> {
/// let data = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
/// let view = BatchView::new(&data, 3)?;
/// assert_eq!(view.rows(), 2);
/// assert_eq!(view.row(1), &[4.0, 5.0, 6.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchView<'a> {
    data: &'a [f32],
    width: usize,
}

impl<'a> BatchView<'a> {
    /// Creates a view over `data` interpreted as rows of `width` elements.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `width` is zero and
    /// [`HdcError::DimensionMismatch`] if `data.len()` is not a whole number
    /// of rows.
    pub fn new(data: &'a [f32], width: usize) -> Result<Self> {
        if width == 0 {
            return Err(HdcError::InvalidArgument("batch row width must be non-zero".into()));
        }
        if !data.len().is_multiple_of(width) {
            return Err(HdcError::DimensionMismatch {
                expected: data.len().div_ceil(width) * width,
                actual: data.len(),
            });
        }
        Ok(Self { data, width })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len() / self.width
    }

    /// Elements per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns `true` when the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying contiguous row-major data.
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()` (like slice indexing).
    pub fn row(&self, i: usize) -> &'a [f32] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Sub-view over rows `start..end` — zero-copy, the chunking primitive
    /// of the batched engines.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > rows()` (like slice indexing).
    pub fn rows_range(&self, start: usize, end: usize) -> BatchView<'a> {
        BatchView { data: &self.data[start * self.width..end * self.width], width: self.width }
    }

    /// Iterates over the rows as `&[f32]` slices.
    pub fn iter_rows(&self) -> impl ExactSizeIterator<Item = &'a [f32]> {
        self.data.chunks_exact(self.width)
    }

    /// Iterates over consecutive sub-views of at most `rows_per_chunk` rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_chunk` is zero.
    pub fn chunk_rows(&self, rows_per_chunk: usize) -> impl Iterator<Item = BatchView<'a>> {
        let width = self.width;
        self.data.chunks(rows_per_chunk * width).map(move |data| BatchView { data, width })
    }
}

/// An owned row-major batch: the flattened form of a `&[Vec<f32>]` batch,
/// viewable as a [`BatchView`].
///
/// Beyond the one-shot flatten constructors, a buffer is **reusable**: the
/// micro-batching serve engine keeps one per tenant and fills it row by row
/// ([`BatchBuffer::push_row`] hands out the next zeroed row to write into),
/// flushes it through the batched kernels, then [`BatchBuffer::clear`]s it —
/// after warm-up the accumulate→flush cycle performs no allocation at all.
///
/// # Example
///
/// ```
/// use hdc::BatchBuffer;
///
/// # fn main() -> Result<(), hdc::HdcError> {
/// let rows = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
/// let buffer = BatchBuffer::from_rows(&rows, 2)?;
/// assert_eq!(buffer.view().rows(), 2);
/// assert_eq!(buffer.view().row(0), &[1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatchBuffer {
    data: Vec<f32>,
    width: usize,
}

impl BatchBuffer {
    /// Creates an empty buffer of the given row width.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `width` is zero.
    pub fn with_width(width: usize) -> Result<Self> {
        if width == 0 {
            return Err(HdcError::InvalidArgument("batch row width must be non-zero".into()));
        }
        Ok(Self { data: Vec::new(), width })
    }

    /// Appends one zeroed row and returns it for the caller to fill —
    /// the accumulate half of the reuse cycle (`Preprocessor`-style
    /// `transform_into` writers target this slice directly).
    ///
    /// Only reallocates when the row count exceeds every previous high-water
    /// mark; a [`BatchBuffer::clear`]ed buffer keeps its capacity.
    pub fn push_row(&mut self) -> &mut [f32] {
        let start = self.data.len();
        self.data.resize(start + self.width, 0.0);
        &mut self.data[start..]
    }

    /// Drops the last row (the undo of a [`BatchBuffer::push_row`] whose
    /// fill failed validation).  A no-op on an empty buffer.
    pub fn pop_row(&mut self) {
        let len = self.data.len().saturating_sub(self.width);
        self.data.truncate(len);
    }

    /// Removes every row, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Returns `true` when the buffer holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flattens `rows` into one contiguous buffer, validating that every row
    /// has exactly `width` elements.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `width` is zero and
    /// [`HdcError::FeatureMismatch`] on the first row of the wrong length.
    pub fn from_rows(rows: &[Vec<f32>], width: usize) -> Result<Self> {
        if width == 0 {
            return Err(HdcError::InvalidArgument("batch row width must be non-zero".into()));
        }
        if let Some(bad) = rows.iter().find(|r| r.len() != width) {
            return Err(HdcError::FeatureMismatch { expected: width, actual: bad.len() });
        }
        let mut data = Vec::with_capacity(rows.len() * width);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(Self { data, width })
    }

    /// Wraps an already-contiguous row-major matrix.
    ///
    /// # Errors
    ///
    /// Same validation as [`BatchView::new`].
    pub fn from_data(data: Vec<f32>, width: usize) -> Result<Self> {
        BatchView::new(&data, width)?;
        Ok(Self { data, width })
    }

    /// Borrows the buffer as a [`BatchView`].
    pub fn view(&self) -> BatchView<'_> {
        BatchView { data: &self.data, width: self.width }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len() / self.width
    }

    /// Elements per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Consumes the buffer, returning the contiguous data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_construction_validates_shape() {
        let data = [0.0f32; 6];
        assert!(BatchView::new(&data, 0).is_err());
        assert!(BatchView::new(&data, 4).is_err());
        let view = BatchView::new(&data, 3).unwrap();
        assert_eq!(view.rows(), 2);
        assert_eq!(view.width(), 3);
        assert!(!view.is_empty());
        assert_eq!(view.data().len(), 6);
    }

    #[test]
    fn empty_views_are_fine() {
        let view = BatchView::new(&[], 5).unwrap();
        assert_eq!(view.rows(), 0);
        assert!(view.is_empty());
        assert_eq!(view.iter_rows().count(), 0);
    }

    #[test]
    fn rows_and_ranges_index_correctly() {
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let view = BatchView::new(&data, 4).unwrap();
        assert_eq!(view.row(2), &[8.0, 9.0, 10.0, 11.0]);
        let sub = view.rows_range(1, 3);
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.row(0), view.row(1));
        let rows: Vec<&[f32]> = view.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1], view.row(1));
    }

    #[test]
    fn chunking_covers_all_rows_in_order() {
        let data: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let view = BatchView::new(&data, 2).unwrap();
        let chunks: Vec<BatchView<'_>> = view.chunk_rows(2).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].rows(), 2);
        assert_eq!(chunks[2].rows(), 1);
        assert_eq!(chunks[2].row(0), view.row(4));
    }

    #[test]
    fn buffer_flattens_and_validates_rows() {
        let rows = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
        let buffer = BatchBuffer::from_rows(&rows, 2).unwrap();
        assert_eq!(buffer.rows(), 2);
        assert_eq!(buffer.width(), 2);
        assert_eq!(buffer.view().row(1), &[3.0, 4.0]);
        assert_eq!(buffer.clone().into_data(), vec![1.0, 2.0, 3.0, 4.0]);

        let ragged = vec![vec![1.0f32, 2.0], vec![3.0]];
        assert!(matches!(
            BatchBuffer::from_rows(&ragged, 2),
            Err(HdcError::FeatureMismatch { expected: 2, actual: 1 })
        ));
        assert!(BatchBuffer::from_rows(&rows, 0).is_err());
    }

    #[test]
    fn buffer_reuse_cycle_accumulates_and_clears() {
        assert!(BatchBuffer::with_width(0).is_err());
        let mut buffer = BatchBuffer::with_width(3).unwrap();
        assert!(buffer.is_empty());
        assert_eq!(buffer.rows(), 0);

        buffer.push_row().copy_from_slice(&[1.0, 2.0, 3.0]);
        let row = buffer.push_row();
        assert_eq!(row, &[0.0; 3], "fresh rows arrive zeroed");
        row.copy_from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(buffer.rows(), 2);
        assert_eq!(buffer.view().row(1), &[4.0, 5.0, 6.0]);

        // A failed fill is undone without disturbing earlier rows.
        buffer.push_row()[0] = 9.0;
        buffer.pop_row();
        assert_eq!(buffer.rows(), 2);
        assert_eq!(buffer.view().row(0), &[1.0, 2.0, 3.0]);

        buffer.clear();
        assert!(buffer.is_empty());
        // Cleared buffers zero recycled rows.
        assert_eq!(buffer.push_row(), &[0.0; 3]);
        buffer.pop_row();
        buffer.pop_row();
        assert!(buffer.is_empty(), "pop on an empty buffer is a no-op");
    }

    #[test]
    fn buffer_wraps_contiguous_data() {
        let buffer = BatchBuffer::from_data(vec![0.0; 8], 4).unwrap();
        assert_eq!(buffer.rows(), 2);
        assert!(BatchBuffer::from_data(vec![0.0; 7], 4).is_err());
    }
}

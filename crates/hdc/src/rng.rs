//! Deterministic random sources for hypervector generation.
//!
//! HDC relies heavily on randomness: base vectors are drawn from a Gaussian
//! distribution (for the RBF encoder), level hypervectors are random bipolar
//! vectors, and CyberHD regenerates dropped dimensions from fresh Gaussian
//! draws.  Everything in this module is seedable so that experiments are
//! exactly reproducible.
//!
//! The Gaussian sampler is a Box–Muller transform over the uniform output of
//! [`rand::rngs::StdRng`]; we deliberately avoid extra dependencies such as
//! `rand_distr` (see `DESIGN.md` §7).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seedable Gaussian/uniform sampler used for base-vector generation.
///
/// # Example
///
/// ```
/// use hdc::rng::HdcRng;
///
/// let mut rng = HdcRng::seed_from(42);
/// let z = rng.normal(0.0, 1.0);
/// assert!(z.is_finite());
/// let u = rng.uniform(0.0, 1.0);
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone)]
pub struct HdcRng {
    inner: StdRng,
    /// Cached second output of the Box–Muller transform.
    spare: Option<f64>,
}

impl HdcRng {
    /// Creates a sampler from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self { inner: StdRng::seed_from_u64(seed), spare: None }
    }

    /// Derives an independent child sampler.
    ///
    /// The child stream is decorrelated from the parent by hashing the parent
    /// draw together with `stream`, so regenerating dimension `i` twice with
    /// the same stream id yields the same base vector.
    pub fn child(&mut self, stream: u64) -> Self {
        let mixed = self.inner.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::seed_from(mixed)
    }

    /// Draws a standard-normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent normals.
        let mut u1: f64 = self.inner.gen::<f64>();
        // Guard against log(0).
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2: f64 = self.inner.gen::<f64>();
        let radius = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let z0 = radius * theta.cos();
        let z1 = radius * theta.sin();
        self.spare = Some(z1);
        z0
    }

    /// Draws a normal sample with the given `mean` and `std_dev`.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev.is_finite() && std_dev >= 0.0, "std_dev must be finite and non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Draws a uniform sample in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or either bound is non-finite.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(low.is_finite() && high.is_finite() && low < high, "invalid uniform bounds");
        low + (high - low) * self.inner.gen::<f64>()
    }

    /// Draws a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Draws a random sign, `+1.0` or `-1.0`, with equal probability.
    pub fn sign(&mut self) -> f64 {
        if self.inner.gen::<bool>() {
            1.0
        } else {
            -1.0
        }
    }

    /// Draws a boolean that is `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.inner.gen::<f64>() < p
    }

    /// Fills `out` with standard-normal samples.
    pub fn fill_standard_normal(&mut self, out: &mut [f32]) {
        for v in out.iter_mut() {
            *v = self.standard_normal() as f32;
        }
    }

    /// Fills `out` with uniform samples in `[low, high)`.
    pub fn fill_uniform(&mut self, out: &mut [f32], low: f64, high: f64) {
        for v in out.iter_mut() {
            *v = self.uniform(low, high) as f32;
        }
    }

    /// Produces a Fisher–Yates shuffled index permutation of length `n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.inner.gen_range(0..=i);
            idx.swap(i, j);
        }
        idx
    }

    /// Draws 64 uniform random bits in one call.
    ///
    /// The word-fill path of [`crate::BinaryHypervector::random`] uses this
    /// to draw 64 bits per RNG step instead of one.
    pub fn next_word(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Exposes the underlying [`RngCore`] for integration with `rand` APIs.
    pub fn as_rng_core(&mut self) -> &mut impl RngCore {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = HdcRng::seed_from(123);
        let mut b = HdcRng::seed_from(123);
        for _ in 0..64 {
            assert_eq!(a.standard_normal().to_bits(), b.standard_normal().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = HdcRng::seed_from(1);
        let mut b = HdcRng::seed_from(2);
        let same = (0..32).filter(|_| a.standard_normal() == b.standard_normal()).count();
        assert!(same < 4, "independently seeded streams should rarely coincide");
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = HdcRng::seed_from(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean} too far from 2.0");
        assert!((var - 9.0).abs() < 0.5, "variance {var} too far from 9.0");
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = HdcRng::seed_from(11);
        for _ in 0..1000 {
            let u = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&u));
        }
    }

    #[test]
    fn bernoulli_rate_matches_probability() {
        let mut rng = HdcRng::seed_from(5);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn sign_is_balanced() {
        let mut rng = HdcRng::seed_from(13);
        let pos = (0..10_000).filter(|_| rng.sign() > 0.0).count();
        assert!((4_500..5_500).contains(&pos));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = HdcRng::seed_from(3);
        let p = rng.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn child_streams_are_decorrelated() {
        let mut parent = HdcRng::seed_from(9);
        let mut c1 = parent.child(1);
        let mut c2 = parent.child(2);
        let equal = (0..32).filter(|_| c1.standard_normal() == c2.standard_normal()).count();
        assert!(equal < 4);
    }

    #[test]
    fn index_respects_bound() {
        let mut rng = HdcRng::seed_from(21);
        for _ in 0..1000 {
            assert!(rng.index(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn index_zero_bound_panics() {
        HdcRng::seed_from(0).index(0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bernoulli_rejects_invalid_probability() {
        HdcRng::seed_from(0).bernoulli(1.5);
    }
}

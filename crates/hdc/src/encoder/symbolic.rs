//! Symbolic and sequence encoders: item memories, n-grams, categorical
//! records.
//!
//! The numeric encoders ([`crate::encoder::RbfEncoder`] & friends) map
//! real-valued feature vectors into hyperspace.  This module opens the
//! other half of the classic HDC literature — **symbolic** workloads,
//! where the raw data is a sequence of discrete symbols (characters,
//! tokens, category values) rather than measurements:
//!
//! * [`ItemMemory`] — a deterministic, seeded table assigning every symbol
//!   of an alphabet an independent random [`BinaryHypervector`].  Symbol
//!   `s` always gets the same vector for a given `(dim, seed)`, regardless
//!   of how large the alphabet is, so item memories are stable across runs
//!   and extensible without re-keying.
//! * [`NGramEncoder`] — the classic **bind-permute-bundle** sequence
//!   encoding: each n-gram of symbols becomes
//!   `ρ^{n-1}(V_{s_0}) ⊕ ρ^{n-2}(V_{s_1}) ⊕ … ⊕ V_{s_{n-1}}`
//!   (XOR binding of progressively [permuted](BinaryHypervector::permute)
//!   item vectors), and the n-grams of a sequence are bundled into a
//!   profile hypervector.  Language identification over character streams
//!   is the canonical workload.
//! * [`SymbolRecordEncoder`] — record encoding for categorical tabular
//!   rows: every column gets a random ID vector, every column value (a
//!   category symbol, or a quantized level for numeric columns) a value
//!   vector; a row is the bundle of `ID_j ⊕ V_{value_j}` over its columns.
//!
//! Both encoders implement [`Encoder`] by emitting the **bipolar n-gram /
//! column count profile** as `f32`: output element `d` is the number of
//! bundled vectors with bit `d` set minus the number with it cleared.  The
//! sign threshold of that profile (which the default
//! [`Encoder::encode_signs_into`] takes, with ties at `0.0` counting as
//! positive — the [`BinaryHypervector::from_dense`] convention) *is* the
//! classic majority-bundled binary profile, so the dense training path and
//! the fused 1-bit scoring path both consume the textbook encoding without
//! any engine changes.

use crate::binary::words_for_dim;
use crate::codec::{CodecError, CodecResult, Reader, Writer};
use crate::encoder::Encoder;
use crate::rng::HdcRng;
use crate::{BinaryHypervector, HdcError, Result};
use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// Salt decorrelating [`SymbolRecordEncoder`] column streams from
/// [`ItemMemory`] symbol streams built from the same user seed.
const COLUMN_STREAM_SALT: u64 = 0xC01_BEEF;

/// Validates that `value` is an integral symbol index below `bound`,
/// mirroring the schema-level categorical validation so encoders fed
/// un-validated floats fail loudly instead of encoding garbage.
fn symbol_index(value: f32, bound: usize, what: &str) -> Result<usize> {
    if value.fract() != 0.0 || value < 0.0 || (value as usize) >= bound {
        return Err(HdcError::InvalidArgument(format!(
            "{what} symbol {value} is not an integer in [0, {bound})"
        )));
    }
    Ok(value as usize)
}

/// Adds the bipolar expansion of packed `words` (`+1` per set bit, `-1`
/// per cleared bit over the first `dim` positions) into `out`.
fn accumulate_bipolar(words: &[u64], dim: usize, out: &mut [f32]) {
    for (w, &word) in words.iter().enumerate() {
        let base = w * WORD_BITS;
        let end = (base + WORD_BITS).min(dim);
        for d in base..end {
            out[d] += ((word >> (d - base)) & 1) as f32 * 2.0 - 1.0;
        }
    }
}

/// A deterministic seeded symbol → hypervector table.
///
/// Symbol `s` maps to an independent uniform random binary hypervector
/// drawn from a decorrelated RNG stream keyed by `(seed, s)`.  Two item
/// memories with the same `(dim, seed)` agree on every shared symbol even
/// if their alphabet sizes differ, which keeps encodings stable when a
/// vocabulary grows.
///
/// # Example
///
/// ```
/// use hdc::ItemMemory;
///
/// # fn main() -> Result<(), hdc::HdcError> {
/// let items = ItemMemory::new(27, 256, 7)?;
/// let a = items.get(0)?;
/// let b = items.get(1)?;
/// assert!(a.similarity(b)?.abs() < 0.25, "distinct symbols are near orthogonal");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemMemory {
    dim: usize,
    seed: u64,
    vectors: Vec<BinaryHypervector>,
}

impl ItemMemory {
    /// Creates an item memory for `alphabet` symbols at dimensionality
    /// `dim`, deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `alphabet` or `dim` is
    /// zero.
    pub fn new(alphabet: usize, dim: usize, seed: u64) -> Result<Self> {
        if alphabet == 0 {
            return Err(HdcError::InvalidArgument("alphabet must be non-zero".into()));
        }
        if dim == 0 {
            return Err(HdcError::InvalidArgument("dim must be non-zero".into()));
        }
        let vectors = (0..alphabet)
            .map(|s| {
                // A fresh parent per symbol makes vector `s` a pure
                // function of `(seed, s)` — index-stable under alphabet
                // growth.
                let mut stream = HdcRng::seed_from(seed).child(s as u64);
                BinaryHypervector::random(dim, &mut stream)
            })
            .collect();
        Ok(Self { dim, seed, vectors })
    }

    /// Dimensionality of the item vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of symbols in the alphabet.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Returns `true` if the memory holds no symbols (never true for a
    /// constructed memory; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The seed the memory was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The item vector of symbol `symbol`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] if `symbol` is outside the
    /// alphabet.
    pub fn get(&self, symbol: usize) -> Result<&BinaryHypervector> {
        self.vectors
            .get(symbol)
            .ok_or(HdcError::IndexOutOfRange { index: symbol, bound: self.vectors.len() })
    }

    /// All item vectors, in symbol order.
    pub fn vectors(&self) -> &[BinaryHypervector] {
        &self.vectors
    }

    /// Persists the memory through the artifact codec.  The packed words
    /// are written explicitly (not regenerated from the seed on load), so
    /// artifacts remain bit-exact even if the RNG ever changes.
    pub fn write_to(&self, w: &mut Writer) {
        w.usize(self.dim);
        w.u64(self.seed);
        w.usize(self.vectors.len());
        for v in &self.vectors {
            w.u64_slice(v.as_words());
        }
    }

    /// Reads a memory persisted by [`ItemMemory::write_to`], bit-exact.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a truncated stream, degenerate sizes,
    /// word vectors of the wrong length, or set bits beyond `dim` in a
    /// tail word.
    pub fn read_from(r: &mut Reader<'_>) -> CodecResult<Self> {
        let dim = r.usize()?;
        let seed = r.u64()?;
        let alphabet = r.usize()?;
        if dim == 0 || alphabet == 0 {
            return Err(CodecError::Invalid("item memory with degenerate sizes".into()));
        }
        let expected_words = words_for_dim(dim);
        let mut vectors = Vec::with_capacity(alphabet.min(r.remaining()));
        for s in 0..alphabet {
            let words = r.u64_vec()?;
            if words.len() != expected_words {
                return Err(CodecError::Invalid(format!(
                    "item {s} has {} words, dim {dim} needs {expected_words}",
                    words.len()
                )));
            }
            let mut v = BinaryHypervector::zeros(dim);
            v.as_mut_words().copy_from_slice(&words);
            let mut masked = v.clone();
            masked.mask_tail();
            if masked != v {
                return Err(CodecError::Invalid(format!("item {s} has set bits beyond dim {dim}")));
            }
            vectors.push(v);
        }
        Ok(Self { dim, seed, vectors })
    }
}

/// Bind-permute-bundle n-gram sequence encoder.
///
/// A sequence of `sequence_len` symbol indices is encoded as the bundle of
/// its `sequence_len - order + 1` n-grams; each n-gram binds the item
/// vectors of its symbols after permuting symbol `p` (0-based within the
/// window) by `order - 1 - p` rotations, so symbol *position* is encoded
/// by rotation and symbol *identity* by the item vector.  The output is
/// the f32 bipolar count profile (see the module docs); its sign threshold
/// is the classic majority-bundled binary profile.
///
/// The permuted item vectors are precomputed per window position at
/// construction — the hot encode loop is pure XOR over packed words.
///
/// # Example
///
/// ```
/// use hdc::encoder::Encoder;
/// use hdc::NGramEncoder;
///
/// # fn main() -> Result<(), hdc::HdcError> {
/// // Trigrams over an 8-symbol alphabet, sequences of 16 symbols.
/// let encoder = NGramEncoder::new(16, 8, 3, 512, 42)?;
/// let sequence: Vec<f32> = (0..16).map(|i| (i % 8) as f32).collect();
/// let profile = encoder.encode(&sequence)?;
/// assert_eq!(profile.dim(), 512);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NGramEncoder {
    items: ItemMemory,
    order: usize,
    sequence_len: usize,
    words_per_item: usize,
    /// Precomputed `ρ^{order-1-p}(V_s)` words, laid out as
    /// `[p][symbol][word]` with stride `words_per_item`.
    permuted: Vec<u64>,
}

impl NGramEncoder {
    /// Creates an n-gram encoder over sequences of `sequence_len` symbols
    /// from an `alphabet`-symbol vocabulary, bundling `order`-grams into
    /// `dim`-dimensional profiles, deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `order` is zero, `alphabet`
    /// is smaller than 2, `dim` is zero, or `sequence_len < order`.
    pub fn new(
        sequence_len: usize,
        alphabet: usize,
        order: usize,
        dim: usize,
        seed: u64,
    ) -> Result<Self> {
        if order == 0 {
            return Err(HdcError::InvalidArgument("n-gram order must be non-zero".into()));
        }
        if alphabet < 2 {
            return Err(HdcError::InvalidArgument(format!(
                "n-gram alphabet must have at least 2 symbols, got {alphabet}"
            )));
        }
        if sequence_len < order {
            return Err(HdcError::InvalidArgument(format!(
                "sequence length {sequence_len} is shorter than the n-gram order {order}"
            )));
        }
        let items = ItemMemory::new(alphabet, dim, seed)?;
        Ok(Self::from_items(items, order, sequence_len))
    }

    /// Assembles the encoder from a validated item memory, precomputing
    /// the permuted item table.
    fn from_items(items: ItemMemory, order: usize, sequence_len: usize) -> Self {
        let dim = items.dim();
        let alphabet = items.len();
        let words_per_item = words_for_dim(dim);
        let mut permuted = Vec::with_capacity(order * alphabet * words_per_item);
        for p in 0..order {
            let shift = (order - 1 - p) as isize;
            for v in items.vectors() {
                permuted.extend_from_slice(v.permute(shift).as_words());
            }
        }
        Self { items, order, sequence_len, words_per_item, permuted }
    }

    /// The n-gram order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The symbol alphabet size.
    pub fn alphabet(&self) -> usize {
        self.items.len()
    }

    /// The underlying item memory.
    pub fn items(&self) -> &ItemMemory {
        &self.items
    }

    /// Persists the encoder through the artifact codec.  Only the item
    /// memory travels; the permuted table is rebuilt bit-exactly on load
    /// (rotation is deterministic).
    pub fn write_to(&self, w: &mut Writer) {
        w.usize(self.order);
        w.usize(self.sequence_len);
        self.items.write_to(w);
    }

    /// Reads an encoder persisted by [`NGramEncoder::write_to`],
    /// bit-exact.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a truncated stream or degenerate /
    /// inconsistent sizes.
    pub fn read_from(r: &mut Reader<'_>) -> CodecResult<Self> {
        let order = r.usize()?;
        let sequence_len = r.usize()?;
        let items = ItemMemory::read_from(r)?;
        if order == 0 || sequence_len < order || items.len() < 2 {
            return Err(CodecError::Invalid(format!(
                "n-gram encoder with degenerate shape: order {order}, sequence {sequence_len}, \
                 alphabet {}",
                items.len()
            )));
        }
        Ok(Self::from_items(items, order, sequence_len))
    }
}

impl Encoder for NGramEncoder {
    fn input_features(&self) -> usize {
        self.sequence_len
    }

    fn output_dim(&self) -> usize {
        self.items.dim()
    }

    fn encode_into(&self, features: &[f32], out: &mut [f32]) -> Result<()> {
        if features.len() != self.sequence_len {
            return Err(HdcError::FeatureMismatch {
                expected: self.sequence_len,
                actual: features.len(),
            });
        }
        let dim = self.items.dim();
        if out.len() != dim {
            return Err(HdcError::DimensionMismatch { expected: dim, actual: out.len() });
        }
        let alphabet = self.items.len();
        for &v in features {
            symbol_index(v, alphabet, "sequence")?;
        }
        out.fill(0.0);
        let wpi = self.words_per_item;
        for window in 0..=(self.sequence_len - self.order) {
            for w in 0..wpi {
                let mut word = 0u64;
                for p in 0..self.order {
                    let s = features[window + p] as usize;
                    word ^= self.permuted[(p * alphabet + s) * wpi + w];
                }
                let base = w * WORD_BITS;
                let end = (base + WORD_BITS).min(dim);
                for d in base..end {
                    out[d] += ((word >> (d - base)) & 1) as f32 * 2.0 - 1.0;
                }
            }
        }
        Ok(())
    }
}

/// One column of a [`SymbolRecordEncoder`]: the pre-bound `ID ⊕ value`
/// vectors, one per category symbol (categorical) or quantization level
/// (numeric).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ColumnCoder {
    /// `0` marks a numeric column (whose vectors are the `num_levels`
    /// locality-preserving level vectors); a positive value is the
    /// categorical alphabet size.
    alphabet: usize,
    bound: Vec<BinaryHypervector>,
}

/// Record encoder for mixed categorical / numeric tabular rows.
///
/// Every column `j` gets an independent random ID vector.  Categorical
/// columns (declared with a positive alphabet size) pair it with one
/// random item vector per category; numeric columns (alphabet `0`, values
/// expected in `[0, 1]` — e.g. min-max scaled) pair it with a chain of
/// `num_levels` level vectors built by progressive bit flips, so adjacent
/// levels stay similar.  A row encodes as the bipolar count profile of
/// `{ID_j ⊕ V_{value_j}}` over its columns; the binding is precomputed at
/// construction.
///
/// # Example
///
/// ```
/// use hdc::encoder::Encoder;
/// use hdc::SymbolRecordEncoder;
///
/// # fn main() -> Result<(), hdc::HdcError> {
/// // Two categorical columns (3 and 5 symbols) and one numeric column.
/// let encoder = SymbolRecordEncoder::new(&[3, 5, 0], 256, 16, 9)?;
/// let row = encoder.encode(&[2.0, 0.0, 0.75])?;
/// assert_eq!(row.dim(), 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SymbolRecordEncoder {
    dim: usize,
    num_levels: usize,
    columns: Vec<ColumnCoder>,
}

impl SymbolRecordEncoder {
    /// Creates a record encoder for rows whose column `j` is categorical
    /// with `alphabets[j]` symbols when positive, or numeric (quantized to
    /// `num_levels` levels over `[0, 1]`, clamping) when zero.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `alphabets` is empty,
    /// `dim` is zero, or `num_levels < 2`.
    pub fn new(alphabets: &[usize], dim: usize, num_levels: usize, seed: u64) -> Result<Self> {
        if alphabets.is_empty() {
            return Err(HdcError::InvalidArgument("record needs at least one column".into()));
        }
        if dim == 0 {
            return Err(HdcError::InvalidArgument("dim must be non-zero".into()));
        }
        if num_levels < 2 {
            return Err(HdcError::InvalidArgument("num_levels must be at least 2".into()));
        }
        let columns = alphabets
            .iter()
            .enumerate()
            .map(|(j, &alphabet)| {
                // One decorrelated stream per column, pure in (seed, j).
                let mut rng = HdcRng::seed_from(seed ^ COLUMN_STREAM_SALT).child(j as u64);
                let id = BinaryHypervector::random(dim, &mut rng);
                let values: Vec<BinaryHypervector> = if alphabet > 0 {
                    (0..alphabet).map(|_| BinaryHypervector::random(dim, &mut rng)).collect()
                } else {
                    // Locality-preserving level chain: flip a disjoint
                    // random slice of positions per step, as in the dense
                    // ID-level encoder.
                    let mut current = BinaryHypervector::random(dim, &mut rng);
                    let flip_order = rng.permutation(dim);
                    let flips_per_level = dim / (num_levels - 1).max(1);
                    let mut chain = Vec::with_capacity(num_levels);
                    chain.push(current.clone());
                    for level in 1..num_levels {
                        let start = (level - 1) * flips_per_level;
                        let end = (start + flips_per_level).min(dim);
                        for &pos in &flip_order[start..end] {
                            current.flip(pos);
                        }
                        chain.push(current.clone());
                    }
                    chain
                };
                let bound = values
                    .iter()
                    .map(|v| id.bind(v).expect("id and value vectors share dim"))
                    .collect();
                ColumnCoder { alphabet, bound }
            })
            .collect();
        Ok(Self { dim, num_levels, columns })
    }

    /// Number of quantization levels used by numeric columns.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Per-column alphabet sizes (`0` = numeric column).
    pub fn alphabets(&self) -> Vec<usize> {
        self.columns.iter().map(|c| c.alphabet).collect()
    }

    /// Maps a numeric value in `[0, 1]` (clamping) onto a level index.
    fn level_of(&self, value: f32) -> usize {
        let t = value.clamp(0.0, 1.0);
        ((t * (self.num_levels - 1) as f32).round() as usize).min(self.num_levels - 1)
    }

    /// Persists the encoder through the artifact codec.
    pub fn write_to(&self, w: &mut Writer) {
        w.usize(self.dim);
        w.usize(self.num_levels);
        w.usize(self.columns.len());
        for column in &self.columns {
            w.usize(column.alphabet);
            for v in &column.bound {
                w.u64_slice(v.as_words());
            }
        }
    }

    /// Reads an encoder persisted by [`SymbolRecordEncoder::write_to`],
    /// bit-exact.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a truncated stream, degenerate sizes,
    /// word vectors of the wrong length, or set bits beyond `dim`.
    pub fn read_from(r: &mut Reader<'_>) -> CodecResult<Self> {
        let dim = r.usize()?;
        let num_levels = r.usize()?;
        let num_columns = r.usize()?;
        if dim == 0 || num_levels < 2 || num_columns == 0 {
            return Err(CodecError::Invalid("record encoder with degenerate sizes".into()));
        }
        let expected_words = words_for_dim(dim);
        let mut columns = Vec::with_capacity(num_columns.min(r.remaining()));
        for j in 0..num_columns {
            let alphabet = r.usize()?;
            let vector_count = if alphabet > 0 { alphabet } else { num_levels };
            let mut bound = Vec::with_capacity(vector_count.min(r.remaining()));
            for i in 0..vector_count {
                let words = r.u64_vec()?;
                if words.len() != expected_words {
                    return Err(CodecError::Invalid(format!(
                        "column {j} vector {i} has {} words, dim {dim} needs {expected_words}",
                        words.len()
                    )));
                }
                let mut v = BinaryHypervector::zeros(dim);
                v.as_mut_words().copy_from_slice(&words);
                let mut masked = v.clone();
                masked.mask_tail();
                if masked != v {
                    return Err(CodecError::Invalid(format!(
                        "column {j} vector {i} has set bits beyond dim {dim}"
                    )));
                }
                bound.push(v);
            }
            columns.push(ColumnCoder { alphabet, bound });
        }
        Ok(Self { dim, num_levels, columns })
    }
}

impl Encoder for SymbolRecordEncoder {
    fn input_features(&self) -> usize {
        self.columns.len()
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn encode_into(&self, features: &[f32], out: &mut [f32]) -> Result<()> {
        if features.len() != self.columns.len() {
            return Err(HdcError::FeatureMismatch {
                expected: self.columns.len(),
                actual: features.len(),
            });
        }
        if out.len() != self.dim {
            return Err(HdcError::DimensionMismatch { expected: self.dim, actual: out.len() });
        }
        out.fill(0.0);
        for (column, &value) in self.columns.iter().zip(features) {
            let index = if column.alphabet > 0 {
                symbol_index(value, column.alphabet, "categorical")?
            } else {
                self.level_of(value)
            };
            accumulate_bipolar(column.bound[index].as_words(), self.dim, out);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchView;

    #[test]
    fn item_memory_is_deterministic_and_index_stable() {
        let a = ItemMemory::new(12, 200, 5).unwrap();
        let b = ItemMemory::new(12, 200, 5).unwrap();
        assert_eq!(a, b, "same (alphabet, dim, seed) must reproduce the same vectors");
        // Growing the alphabet does not re-key existing symbols.
        let bigger = ItemMemory::new(30, 200, 5).unwrap();
        assert_eq!(&bigger.vectors()[..12], a.vectors());
        // A different seed changes everything.
        let other = ItemMemory::new(12, 200, 6).unwrap();
        assert_ne!(a, other);
        assert_eq!(a.dim(), 200);
        assert_eq!(a.len(), 12);
        assert_eq!(a.seed(), 5);
        assert!(!a.is_empty());
    }

    #[test]
    fn item_memory_vectors_are_nearly_orthogonal() {
        let items = ItemMemory::new(8, 8192, 11).unwrap();
        for i in 0..8 {
            for j in (i + 1)..8 {
                let s = items.get(i).unwrap().similarity(items.get(j).unwrap()).unwrap();
                assert!(s.abs() < 0.08, "symbols {i}/{j} similarity {s}");
            }
        }
        assert!(matches!(items.get(8), Err(HdcError::IndexOutOfRange { index: 8, bound: 8 })));
    }

    #[test]
    fn item_memory_constructor_validates() {
        assert!(ItemMemory::new(0, 64, 0).is_err());
        assert!(ItemMemory::new(4, 0, 0).is_err());
    }

    #[test]
    fn item_memory_persistence_round_trips_bit_exactly() {
        let items = ItemMemory::new(9, 130, 77).unwrap();
        let mut w = Writer::new();
        items.write_to(&mut w);
        let bytes = w.into_bytes();
        let back = ItemMemory::read_from(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back, items);
        let mut again = Writer::new();
        back.write_to(&mut again);
        assert_eq!(again.into_bytes(), bytes, "reserialization must be byte-identical");
        assert!(ItemMemory::read_from(&mut Reader::new(&bytes[..bytes.len() / 2])).is_err());
        // Set bits beyond dim are rejected, not silently masked.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] |= 0x80;
        assert!(ItemMemory::read_from(&mut Reader::new(&corrupt)).is_err());
    }

    /// Reference n-gram encoding straight from the algebra: bind permuted
    /// item vectors per window, accumulate the bipolar expansions.
    fn naive_ngram(encoder: &NGramEncoder, sequence: &[f32]) -> Vec<f32> {
        let items = encoder.items();
        let dim = items.dim();
        let n = encoder.order();
        let mut out = vec![0.0f32; dim];
        for window in 0..=(sequence.len() - n) {
            let mut bound: Option<BinaryHypervector> = None;
            for p in 0..n {
                let v = items.get(sequence[window + p] as usize).unwrap();
                let rotated = v.permute((n - 1 - p) as isize);
                bound = Some(match bound {
                    None => rotated,
                    Some(acc) => acc.bind(&rotated).unwrap(),
                });
            }
            for (d, value) in bound.unwrap().to_dense().iter().enumerate() {
                out[d] += value;
            }
        }
        out
    }

    #[test]
    fn ngram_profile_matches_the_bind_permute_bundle_reference() {
        for (len, alphabet, order, dim) in [(10, 4, 3, 100), (6, 8, 1, 64), (5, 3, 5, 130)] {
            let e = NGramEncoder::new(len, alphabet, order, dim, 21).unwrap();
            let sequence: Vec<f32> = (0..len).map(|i| ((i * 7 + 3) % alphabet) as f32).collect();
            let got = e.encode(&sequence).unwrap();
            let want = naive_ngram(&e, &sequence);
            assert_eq!(got.as_slice(), want.as_slice(), "len {len} order {order} dim {dim}");
        }
    }

    #[test]
    fn ngram_constructor_validates() {
        assert!(NGramEncoder::new(8, 4, 0, 64, 0).is_err(), "zero order");
        assert!(NGramEncoder::new(8, 1, 3, 64, 0).is_err(), "degenerate alphabet");
        assert!(NGramEncoder::new(2, 4, 3, 64, 0).is_err(), "sequence shorter than order");
        assert!(NGramEncoder::new(8, 4, 3, 0, 0).is_err(), "zero dim");
        let e = NGramEncoder::new(8, 4, 3, 64, 0).unwrap();
        assert_eq!(e.input_features(), 8);
        assert_eq!(e.output_dim(), 64);
        assert_eq!(e.order(), 3);
        assert_eq!(e.alphabet(), 4);
    }

    #[test]
    fn ngram_rejects_invalid_symbols_and_shapes() {
        let e = NGramEncoder::new(4, 5, 2, 64, 3).unwrap();
        let mut out = vec![0.0f32; 64];
        assert!(matches!(
            e.encode_into(&[0.0, 1.0, 2.0], &mut out),
            Err(HdcError::FeatureMismatch { expected: 4, actual: 3 })
        ));
        let mut short = vec![0.0f32; 63];
        assert!(matches!(
            e.encode_into(&[0.0, 1.0, 2.0, 3.0], &mut short),
            Err(HdcError::DimensionMismatch { .. })
        ));
        assert!(e.encode_into(&[0.0, 1.0, 2.5, 3.0], &mut out).is_err(), "fractional symbol");
        assert!(e.encode_into(&[0.0, 1.0, 5.0, 3.0], &mut out).is_err(), "symbol out of range");
        assert!(e.encode_into(&[0.0, 1.0, -1.0, 3.0], &mut out).is_err(), "negative symbol");
    }

    #[test]
    fn ngram_separates_sequence_statistics() {
        // Sequences drawn from the same bigram structure profile closer
        // than sequences from a different structure.
        let e = NGramEncoder::new(64, 6, 2, 4096, 13).unwrap();
        let pattern_a = |offset: usize| -> Vec<f32> {
            (0..64).map(|i| ((i + offset) % 3) as f32).collect() // cycles 0,1,2
        };
        let pattern_b: Vec<f32> = (0..64).map(|i| (3 + (i % 3)) as f32).collect(); // cycles 3,4,5
        let ha = e.encode(&pattern_a(0)).unwrap();
        let ha2 = e.encode(&pattern_a(1)).unwrap();
        let hb = e.encode(&pattern_b).unwrap();
        let same = ha.cosine(&ha2).unwrap();
        let different = ha.cosine(&hb).unwrap();
        assert!(
            same > different + 0.3,
            "same-structure {same} should beat different-structure {different}"
        );
    }

    #[test]
    fn ngram_order_matters() {
        // With order >= 2, symbol order changes the profile; a reversed
        // sequence with the same unigram counts encodes differently.
        let e = NGramEncoder::new(6, 4, 2, 2048, 17).unwrap();
        let forward = [0.0f32, 1.0, 2.0, 3.0, 0.0, 1.0];
        let mut backward = forward;
        backward.reverse();
        let hf = e.encode(&forward).unwrap();
        let hb = e.encode(&backward).unwrap();
        assert!(hf.cosine(&hb).unwrap() < 0.8, "order-2 profiles must be order sensitive");
        // With order = 1 the profile is a bag of symbols: permutation
        // invariant by construction.
        let bag = NGramEncoder::new(6, 4, 1, 2048, 17).unwrap();
        assert_eq!(bag.encode(&forward).unwrap(), bag.encode(&backward).unwrap());
    }

    #[test]
    fn ngram_persistence_round_trips_bit_exactly() {
        let e = NGramEncoder::new(12, 7, 3, 130, 29).unwrap();
        let mut w = Writer::new();
        e.write_to(&mut w);
        let bytes = w.into_bytes();
        let back = NGramEncoder::read_from(&mut Reader::new(&bytes)).unwrap();
        let sequence: Vec<f32> = (0..12).map(|i| (i % 7) as f32).collect();
        assert_eq!(back.encode(&sequence).unwrap(), e.encode(&sequence).unwrap());
        let mut again = Writer::new();
        back.write_to(&mut again);
        assert_eq!(again.into_bytes(), bytes, "reserialization must be byte-identical");
        assert!(NGramEncoder::read_from(&mut Reader::new(&bytes[..20])).is_err());
    }

    #[test]
    fn ngram_sign_path_matches_encode_then_threshold() {
        let e = NGramEncoder::new(10, 5, 3, 150, 31).unwrap();
        let data: Vec<f32> = (0..30).map(|i| ((i * 11 + 2) % 5) as f32).collect();
        let batch = BatchView::new(&data, 10).unwrap();
        let words_per_row = words_for_dim(150);
        let mut words = vec![0u64; 3 * words_per_row];
        let mut zero_rows = vec![false; 3];
        e.encode_signs_into(batch, &mut words, &mut zero_rows).unwrap();
        let mut matrix = vec![0.0f32; 3 * 150];
        e.encode_batch_into(batch, &mut matrix).unwrap();
        for (i, row) in matrix.chunks_exact(150).enumerate() {
            let mut expected = vec![0u64; words_per_row];
            let all_zero = crate::binary::pack_f32_signs_checked(row, &mut expected);
            assert_eq!(
                &words[i * words_per_row..(i + 1) * words_per_row],
                expected.as_slice(),
                "row {i}"
            );
            assert_eq!(zero_rows[i], all_zero, "row {i}");
        }
    }

    #[test]
    fn record_constructor_validates() {
        assert!(SymbolRecordEncoder::new(&[], 64, 8, 0).is_err());
        assert!(SymbolRecordEncoder::new(&[3], 0, 8, 0).is_err());
        assert!(SymbolRecordEncoder::new(&[3], 64, 1, 0).is_err());
        let e = SymbolRecordEncoder::new(&[3, 0, 5], 64, 8, 0).unwrap();
        assert_eq!(e.input_features(), 3);
        assert_eq!(e.output_dim(), 64);
        assert_eq!(e.num_levels(), 8);
        assert_eq!(e.alphabets(), vec![3, 0, 5]);
    }

    #[test]
    fn record_encoding_is_deterministic_and_column_sensitive() {
        let e = SymbolRecordEncoder::new(&[4, 4, 0], 4096, 16, 23).unwrap();
        let row = [1.0f32, 2.0, 0.5];
        assert_eq!(e.encode(&row).unwrap(), e.encode(&row).unwrap());
        // Changing one column moves the profile less than changing all.
        let h = e.encode(&row).unwrap();
        let one_change = e.encode(&[3.0, 2.0, 0.5]).unwrap();
        let all_change = e.encode(&[3.0, 0.0, 0.95]).unwrap();
        let near = h.cosine(&one_change).unwrap();
        let far = h.cosine(&all_change).unwrap();
        assert!(near > far, "near {near} vs far {far}");
        // The same symbol in different columns encodes differently
        // (column IDs bind in).
        let e2 = SymbolRecordEncoder::new(&[4, 4], 4096, 16, 23).unwrap();
        let swapped = e2.encode(&[2.0, 1.0]).unwrap();
        let straight = e2.encode(&[1.0, 2.0]).unwrap();
        assert!(swapped.cosine(&straight).unwrap() < 0.9);
    }

    #[test]
    fn record_numeric_columns_preserve_value_locality() {
        let e = SymbolRecordEncoder::new(&[0], 8192, 32, 3).unwrap();
        let low = e.encode(&[0.0]).unwrap();
        let near = e.encode(&[0.05]).unwrap();
        let high = e.encode(&[1.0]).unwrap();
        let s_near = low.cosine(&near).unwrap();
        let s_far = low.cosine(&high).unwrap();
        assert!(s_near > s_far + 0.3, "near {s_near} vs far {s_far}");
        // Out-of-range numeric values clamp rather than error.
        assert_eq!(e.encode(&[-0.5]).unwrap(), low);
        assert_eq!(e.encode(&[7.0]).unwrap(), high);
    }

    #[test]
    fn record_rejects_invalid_categories_and_shapes() {
        let e = SymbolRecordEncoder::new(&[3, 0], 64, 8, 1).unwrap();
        assert!(matches!(
            e.encode(&[1.0]),
            Err(HdcError::FeatureMismatch { expected: 2, actual: 1 })
        ));
        assert!(e.encode(&[3.0, 0.5]).is_err(), "category index out of range");
        assert!(e.encode(&[0.5, 0.5]).is_err(), "fractional category index");
        assert!(e.encode(&[-1.0, 0.5]).is_err(), "negative category index");
        let mut short = vec![0.0f32; 63];
        assert!(matches!(
            e.encode_into(&[1.0, 0.5], &mut short),
            Err(HdcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn record_persistence_round_trips_bit_exactly() {
        let e = SymbolRecordEncoder::new(&[3, 0, 7], 130, 6, 41).unwrap();
        let mut w = Writer::new();
        e.write_to(&mut w);
        let bytes = w.into_bytes();
        let back = SymbolRecordEncoder::read_from(&mut Reader::new(&bytes)).unwrap();
        let row = [2.0f32, 0.33, 6.0];
        assert_eq!(back.encode(&row).unwrap(), e.encode(&row).unwrap());
        assert_eq!(back.alphabets(), e.alphabets());
        let mut again = Writer::new();
        back.write_to(&mut again);
        assert_eq!(again.into_bytes(), bytes, "reserialization must be byte-identical");
        assert!(SymbolRecordEncoder::read_from(&mut Reader::new(&bytes[..25])).is_err());
    }
}

//! ID–level encoding.
//!
//! The classic static HDC encoder for tabular data: every feature position
//! gets a random *ID hypervector*, every quantized feature value gets a
//! *level hypervector*, and a sample is encoded as
//!
//! ```text
//! H(x) = Σ_f  ID_f ⊙ L_{level(x_f)}
//! ```
//!
//! Level hypervectors are built by progressively flipping elements of a base
//! random vector so neighbouring levels stay similar (value locality), while
//! ID hypervectors are independent random bipolar vectors (position
//! orthogonality).  This encoder has no regeneration capability — it is one
//! of the "pre-generated, static" encoders the paper contrasts CyberHD with.

use crate::codec::{CodecError, CodecResult, Reader, Writer};
use crate::encoder::Encoder;
use crate::rng::HdcRng;
use crate::{HdcError, Result};
use serde::{Deserialize, Serialize};

/// Static ID–level encoder over bipolar hypervectors.
///
/// # Example
///
/// ```
/// use hdc::encoder::{Encoder, IdLevelEncoder};
///
/// # fn main() -> Result<(), hdc::HdcError> {
/// let encoder = IdLevelEncoder::new(4, 256, 16, 5)?;
/// let h = encoder.encode(&[0.0, 0.25, 0.5, 1.0])?;
/// assert_eq!(h.dim(), 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IdLevelEncoder {
    /// One bipolar ID hypervector per feature, row-major.
    ids: Vec<f32>,
    /// One bipolar level hypervector per quantization level, row-major.
    levels: Vec<f32>,
    features: usize,
    dim: usize,
    num_levels: usize,
    /// Lower bound of the expected feature range.
    min_value: f32,
    /// Upper bound of the expected feature range.
    max_value: f32,
}

impl IdLevelEncoder {
    /// Creates an encoder for features expected to lie in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `features`, `dim` or
    /// `num_levels` is zero (or `num_levels` is one, which would collapse all
    /// values onto a single level).
    pub fn new(features: usize, dim: usize, num_levels: usize, seed: u64) -> Result<Self> {
        Self::with_range(features, dim, num_levels, 0.0, 1.0, seed)
    }

    /// Creates an encoder for features expected to lie in
    /// `[min_value, max_value]`; values outside the range are clamped.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] on zero sizes, `num_levels < 2`,
    /// or a non-increasing / non-finite value range.
    pub fn with_range(
        features: usize,
        dim: usize,
        num_levels: usize,
        min_value: f32,
        max_value: f32,
        seed: u64,
    ) -> Result<Self> {
        if features == 0 {
            return Err(HdcError::InvalidArgument("features must be non-zero".into()));
        }
        if dim == 0 {
            return Err(HdcError::InvalidArgument("dim must be non-zero".into()));
        }
        if num_levels < 2 {
            return Err(HdcError::InvalidArgument("num_levels must be at least 2".into()));
        }
        if !(min_value.is_finite() && max_value.is_finite() && min_value < max_value) {
            return Err(HdcError::InvalidArgument(format!(
                "invalid value range [{min_value}, {max_value}]"
            )));
        }
        let mut rng = HdcRng::seed_from(seed);

        // Independent bipolar ID hypervectors.
        let mut ids = vec![0.0f32; features * dim];
        for v in ids.iter_mut() {
            *v = rng.sign() as f32;
        }

        // Level hypervectors: start from a random bipolar vector and flip a
        // disjoint slice of ~dim/(num_levels-1) positions per step, so that
        // level 0 and level num_levels-1 are (nearly) uncorrelated while
        // adjacent levels are highly similar.
        let mut levels = vec![0.0f32; num_levels * dim];
        let mut current: Vec<f32> = (0..dim).map(|_| rng.sign() as f32).collect();
        let flip_order = rng.permutation(dim);
        let flips_per_level = dim / (num_levels - 1).max(1);
        levels[..dim].copy_from_slice(&current);
        for level in 1..num_levels {
            let start = (level - 1) * flips_per_level;
            let end = (start + flips_per_level).min(dim);
            for &pos in &flip_order[start..end] {
                current[pos] = -current[pos];
            }
            levels[level * dim..(level + 1) * dim].copy_from_slice(&current);
        }

        Ok(Self { ids, levels, features, dim, num_levels, min_value, max_value })
    }

    /// Number of quantization levels.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Maps a raw feature value onto a level index, clamping to the
    /// configured range.
    pub fn level_of(&self, value: f32) -> usize {
        let clamped = value.clamp(self.min_value, self.max_value);
        let t = (clamped - self.min_value) / (self.max_value - self.min_value);
        ((t * (self.num_levels - 1) as f32).round() as usize).min(self.num_levels - 1)
    }

    fn id_row(&self, f: usize) -> &[f32] {
        &self.ids[f * self.dim..(f + 1) * self.dim]
    }

    fn level_row(&self, l: usize) -> &[f32] {
        &self.levels[l * self.dim..(l + 1) * self.dim]
    }

    /// Persists the encoder through the artifact codec.
    pub fn write_to(&self, w: &mut Writer) {
        w.usize(self.features);
        w.usize(self.dim);
        w.usize(self.num_levels);
        w.f32(self.min_value);
        w.f32(self.max_value);
        w.f32_slice(&self.ids);
        w.f32_slice(&self.levels);
    }

    /// Reads an encoder persisted by [`IdLevelEncoder::write_to`],
    /// bit-exact.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a truncated stream or inconsistent shapes.
    pub fn read_from(r: &mut Reader<'_>) -> CodecResult<Self> {
        let features = r.usize()?;
        let dim = r.usize()?;
        let num_levels = r.usize()?;
        let min_value = r.f32()?;
        let max_value = r.f32()?;
        let ids = r.f32_vec()?;
        let levels = r.f32_vec()?;
        if features == 0 || dim == 0 || num_levels < 2 {
            return Err(CodecError::Invalid("ID-level encoder with degenerate sizes".into()));
        }
        if !(min_value.is_finite() && max_value.is_finite() && min_value < max_value) {
            return Err(CodecError::Invalid(format!(
                "ID-level value range [{min_value}, {max_value}]"
            )));
        }
        if ids.len() != features * dim || levels.len() != num_levels * dim {
            return Err(CodecError::Invalid(format!(
                "ID-level encoder shape mismatch: {} ids / {} levels for features {features} x \
                 dim {dim} x num_levels {num_levels}",
                ids.len(),
                levels.len()
            )));
        }
        Ok(Self { ids, levels, features, dim, num_levels, min_value, max_value })
    }
}

impl Encoder for IdLevelEncoder {
    fn input_features(&self) -> usize {
        self.features
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn encode_into(&self, features: &[f32], out: &mut [f32]) -> Result<()> {
        if features.len() != self.features {
            return Err(HdcError::FeatureMismatch {
                expected: self.features,
                actual: features.len(),
            });
        }
        if out.len() != self.dim {
            return Err(HdcError::DimensionMismatch { expected: self.dim, actual: out.len() });
        }
        out.fill(0.0);
        for (f, &value) in features.iter().enumerate() {
            let level = self.level_of(value);
            let id = self.id_row(f);
            let lvl = self.level_row(level);
            for d in 0..self.dim {
                out[d] += id[d] * lvl[d];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_arguments() {
        assert!(IdLevelEncoder::new(0, 8, 4, 0).is_err());
        assert!(IdLevelEncoder::new(4, 0, 4, 0).is_err());
        assert!(IdLevelEncoder::new(4, 8, 1, 0).is_err());
        assert!(IdLevelEncoder::with_range(4, 8, 4, 1.0, 1.0, 0).is_err());
        assert!(IdLevelEncoder::new(4, 8, 4, 0).is_ok());
    }

    #[test]
    fn level_mapping_clamps_and_covers_range() {
        let e = IdLevelEncoder::with_range(1, 64, 8, -1.0, 1.0, 0).unwrap();
        assert_eq!(e.level_of(-5.0), 0);
        assert_eq!(e.level_of(-1.0), 0);
        assert_eq!(e.level_of(1.0), 7);
        assert_eq!(e.level_of(5.0), 7);
        assert_eq!(e.level_of(0.0), 4, "midpoint rounds to the middle level");
        assert_eq!(e.num_levels(), 8);
    }

    #[test]
    fn encoding_is_deterministic() {
        let e = IdLevelEncoder::new(5, 128, 16, 3).unwrap();
        let x = [0.1, 0.9, 0.4, 0.6, 0.2];
        assert_eq!(e.encode(&x).unwrap(), e.encode(&x).unwrap());
    }

    #[test]
    fn feature_mismatch_is_reported() {
        let e = IdLevelEncoder::new(3, 32, 4, 0).unwrap();
        assert!(matches!(
            e.encode(&[0.5]),
            Err(HdcError::FeatureMismatch { expected: 3, actual: 1 })
        ));
    }

    #[test]
    fn adjacent_levels_are_more_similar_than_distant_levels() {
        let e = IdLevelEncoder::new(1, 4096, 32, 5).unwrap();
        let h_low = e.encode(&[0.0]).unwrap();
        let h_mid = e.encode(&[0.05]).unwrap();
        let h_high = e.encode(&[1.0]).unwrap();
        let near = h_low.cosine(&h_mid).unwrap();
        let far = h_low.cosine(&h_high).unwrap();
        assert!(near > far + 0.3, "near {near} vs far {far}");
    }

    #[test]
    fn different_features_use_nearly_orthogonal_ids() {
        let e = IdLevelEncoder::new(2, 8192, 8, 7).unwrap();
        // Same value in feature 0 vs feature 1 should produce dissimilar encodings.
        let h_a = e.encode(&[1.0, 0.0]).unwrap();
        let h_b = e.encode(&[0.0, 1.0]).unwrap();
        let sim = h_a.cosine(&h_b).unwrap();
        assert!(sim < 0.5, "feature identity should matter, sim = {sim}");
    }

    #[test]
    fn similar_samples_encode_similarly() {
        let e = IdLevelEncoder::new(8, 2048, 32, 9).unwrap();
        let x: Vec<f32> = (0..8).map(|i| i as f32 / 8.0).collect();
        let mut near = x.clone();
        near[3] += 0.03;
        let mut far = x.clone();
        for v in &mut far {
            *v = 1.0 - *v;
        }
        let hx = e.encode(&x).unwrap();
        let sim_near = hx.cosine(&e.encode(&near).unwrap()).unwrap();
        let sim_far = hx.cosine(&e.encode(&far).unwrap()).unwrap();
        assert!(sim_near > sim_far, "near {sim_near} vs far {sim_far}");
    }

    #[test]
    fn persistence_round_trips_bit_exactly() {
        let e = IdLevelEncoder::with_range(4, 64, 8, -2.0, 2.0, 13).unwrap();
        let mut w = Writer::new();
        e.write_to(&mut w);
        let bytes = w.into_bytes();
        let back = IdLevelEncoder::read_from(&mut Reader::new(&bytes)).unwrap();
        let x = [-1.5f32, 0.0, 0.7, 1.9];
        assert_eq!(back.encode(&x).unwrap(), e.encode(&x).unwrap());
        assert_eq!(back.num_levels(), 8);
        assert!(IdLevelEncoder::read_from(&mut Reader::new(&bytes[..12])).is_err());
    }
}

//! RBF (random-Fourier-feature) encoder with per-dimension regeneration.
//!
//! The CyberHD paper uses an encoder "inspired by the Radial Basis Function"
//! (Rahimi & Recht, random features for kernel machines): each hypervector
//! dimension `d` is produced by projecting the feature vector `x` onto a
//! Gaussian base vector `b_d` (plus a uniform phase `φ_d`) and passing the
//! result through a cosine:
//!
//! ```text
//! h_d = cos(b_d · x + φ_d)
//! ```
//!
//! Because each output dimension depends on exactly one base vector, a
//! dimension that turns out to be non-discriminative can be *regenerated* by
//! replacing its `(b_d, φ_d)` pair with a fresh Gaussian/uniform draw — which
//! is precisely step (H) of CyberHD.

use crate::dense::Hypervector;
use crate::encoder::Encoder;
use crate::rng::HdcRng;
use crate::{HdcError, Result};
use serde::{Deserialize, Serialize};

/// Nonlinear random-projection encoder (random Fourier features).
///
/// # Example
///
/// ```
/// use hdc::encoder::{Encoder, RbfEncoder};
///
/// # fn main() -> Result<(), hdc::HdcError> {
/// let mut encoder = RbfEncoder::new(3, 64, 42)?;
/// let before = encoder.encode(&[0.1, 0.5, -0.3])?;
///
/// // Regenerating a dimension changes (only) that output coordinate.
/// encoder.regenerate_dimension(7)?;
/// let after = encoder.encode(&[0.1, 0.5, -0.3])?;
/// assert_eq!(before.dim(), after.dim());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RbfEncoder {
    /// Row-major base matrix: `dim` rows of `features` Gaussian entries.
    bases: Vec<f32>,
    /// Per-dimension phase offsets, uniform in `[0, 2π)`.
    phases: Vec<f32>,
    features: usize,
    dim: usize,
    /// Standard deviation of the Gaussian base entries (kernel bandwidth).
    sigma: f32,
    /// Construction seed; regeneration draws are derived from it together
    /// with the running regeneration counter, so the whole encoder history is
    /// reproducible and serializable.
    seed: u64,
    /// Total number of regeneration draws performed so far.
    regenerated: usize,
}

impl RbfEncoder {
    /// Creates an encoder for `features`-dimensional inputs producing
    /// `dim`-dimensional hypervectors, with unit kernel bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `features` or `dim` is zero.
    pub fn new(features: usize, dim: usize, seed: u64) -> Result<Self> {
        Self::with_sigma(features, dim, 1.0, seed)
    }

    /// Creates an encoder with an explicit Gaussian bandwidth `sigma`.
    ///
    /// Larger `sigma` makes the random projections more sensitive to small
    /// feature differences (narrower effective kernel).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `features` or `dim` is zero,
    /// or if `sigma` is not strictly positive and finite.
    pub fn with_sigma(features: usize, dim: usize, sigma: f32, seed: u64) -> Result<Self> {
        if features == 0 {
            return Err(HdcError::InvalidArgument("features must be non-zero".into()));
        }
        if dim == 0 {
            return Err(HdcError::InvalidArgument("dim must be non-zero".into()));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(HdcError::InvalidArgument(format!(
                "sigma must be positive and finite, got {sigma}"
            )));
        }
        let mut rng = HdcRng::seed_from(seed);
        let mut bases = vec![0.0f32; dim * features];
        for b in bases.iter_mut() {
            *b = rng.normal(0.0, sigma as f64) as f32;
        }
        let mut phases = vec![0.0f32; dim];
        rng.fill_uniform(&mut phases, 0.0, std::f64::consts::TAU);
        Ok(Self { bases, phases, features, dim, sigma, seed, regenerated: 0 })
    }

    /// Kernel bandwidth used for the Gaussian base entries.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// Number of base-vector regenerations performed since construction.
    ///
    /// CyberHD's *effective dimensionality* is
    /// `physical dim + regeneration_count()`.
    pub fn regeneration_count(&self) -> usize {
        self.regenerated
    }

    /// Borrows the base-vector row for output dimension `d`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] if `d >= output_dim()`.
    pub fn base_row(&self, d: usize) -> Result<&[f32]> {
        if d >= self.dim {
            return Err(HdcError::IndexOutOfRange { index: d, bound: self.dim });
        }
        Ok(&self.bases[d * self.features..(d + 1) * self.features])
    }

    /// Computes a single output coordinate `h_d = cos(b_d · x + φ_d)` without
    /// encoding the whole hypervector.
    ///
    /// The CyberHD trainer uses this to re-encode only the regenerated
    /// dimensions of its cached training matrix instead of re-running the
    /// full encoder after every regeneration round.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] if `d >= output_dim()` and
    /// [`HdcError::FeatureMismatch`] if `features` has the wrong length.
    pub fn encode_dimension(&self, features: &[f32], d: usize) -> Result<f32> {
        if d >= self.dim {
            return Err(HdcError::IndexOutOfRange { index: d, bound: self.dim });
        }
        if features.len() != self.features {
            return Err(HdcError::FeatureMismatch {
                expected: self.features,
                actual: features.len(),
            });
        }
        let row = &self.bases[d * self.features..(d + 1) * self.features];
        Ok((crate::similarity::dot(row, features) + self.phases[d]).cos())
    }

    /// Replaces the base vector and phase of dimension `d` with a fresh
    /// Gaussian/uniform draw (step (H) of CyberHD).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] if `d >= output_dim()`.
    pub fn regenerate_dimension(&mut self, d: usize) -> Result<()> {
        if d >= self.dim {
            return Err(HdcError::IndexOutOfRange { index: d, bound: self.dim });
        }
        // Derive an independent stream from (construction seed, draw index,
        // dimension): deterministic, and it keeps the encoder serializable.
        let stream = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((self.regenerated as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add(d as u64);
        let mut rng = HdcRng::seed_from(stream);
        let sigma = self.sigma as f64;
        for b in &mut self.bases[d * self.features..(d + 1) * self.features] {
            *b = rng.normal(0.0, sigma) as f32;
        }
        self.phases[d] = rng.uniform(0.0, std::f64::consts::TAU) as f32;
        self.regenerated += 1;
        Ok(())
    }

    /// Regenerates every dimension in `dims` (duplicates are regenerated
    /// multiple times, matching a caller that passes an explicit drop list).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] on the first out-of-range index;
    /// dimensions before it will already have been regenerated.
    pub fn regenerate_dimensions(&mut self, dims: &[usize]) -> Result<()> {
        for &d in dims {
            self.regenerate_dimension(d)?;
        }
        Ok(())
    }
}

impl Encoder for RbfEncoder {
    fn input_features(&self) -> usize {
        self.features
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn encode(&self, features: &[f32]) -> Result<Hypervector> {
        if features.len() != self.features {
            return Err(HdcError::FeatureMismatch {
                expected: self.features,
                actual: features.len(),
            });
        }
        let mut out = Vec::with_capacity(self.dim);
        for d in 0..self.dim {
            let row = &self.bases[d * self.features..(d + 1) * self.features];
            let projection = crate::similarity::dot(row, features) + self.phases[d];
            out.push(projection.cos());
        }
        Ok(Hypervector::from_vec(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_arguments() {
        assert!(RbfEncoder::new(0, 8, 0).is_err());
        assert!(RbfEncoder::new(4, 0, 0).is_err());
        assert!(RbfEncoder::with_sigma(4, 8, 0.0, 0).is_err());
        assert!(RbfEncoder::with_sigma(4, 8, f32::NAN, 0).is_err());
        assert!(RbfEncoder::new(4, 8, 0).is_ok());
    }

    #[test]
    fn encoding_is_deterministic_and_bounded() {
        let e = RbfEncoder::new(5, 128, 3).unwrap();
        let x = [0.1, -0.2, 0.3, 0.4, -0.5];
        let a = e.encode(&x).unwrap();
        let b = e.encode(&x).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)), "cosine outputs stay in [-1, 1]");
    }

    #[test]
    fn feature_mismatch_is_reported() {
        let e = RbfEncoder::new(5, 16, 0).unwrap();
        assert!(matches!(
            e.encode(&[1.0, 2.0]),
            Err(HdcError::FeatureMismatch { expected: 5, actual: 2 })
        ));
    }

    #[test]
    fn nearby_inputs_encode_to_similar_hypervectors() {
        let e = RbfEncoder::with_sigma(8, 2048, 0.5, 7).unwrap();
        let x: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let mut x_near = x.clone();
        x_near[0] += 0.01;
        let mut x_far = x.clone();
        for v in &mut x_far {
            *v += 2.0;
        }
        let hx = e.encode(&x).unwrap();
        let hnear = e.encode(&x_near).unwrap();
        let hfar = e.encode(&x_far).unwrap();
        let sim_near = hx.cosine(&hnear).unwrap();
        let sim_far = hx.cosine(&hfar).unwrap();
        assert!(
            sim_near > sim_far + 0.1,
            "locality: near {sim_near} should exceed far {sim_far}"
        );
    }

    #[test]
    fn different_seeds_produce_different_encoders() {
        let a = RbfEncoder::new(4, 256, 1).unwrap();
        let b = RbfEncoder::new(4, 256, 2).unwrap();
        let x = [0.3, 0.1, -0.7, 0.9];
        let ha = a.encode(&x).unwrap();
        let hb = b.encode(&x).unwrap();
        assert!(ha.cosine(&hb).unwrap() < 0.9);
    }

    #[test]
    fn regeneration_changes_only_the_targeted_dimension() {
        let mut e = RbfEncoder::new(6, 64, 9).unwrap();
        let x = [0.2, -0.1, 0.5, 0.7, -0.3, 0.0];
        let before = e.encode(&x).unwrap();
        e.regenerate_dimension(10).unwrap();
        let after = e.encode(&x).unwrap();
        for d in 0..64 {
            if d == 10 {
                continue;
            }
            assert_eq!(before[d], after[d], "dimension {d} should be unchanged");
        }
        assert_eq!(e.regeneration_count(), 1);
    }

    #[test]
    fn regenerate_dimensions_counts_every_draw() {
        let mut e = RbfEncoder::new(3, 32, 11).unwrap();
        e.regenerate_dimensions(&[0, 5, 5, 31]).unwrap();
        assert_eq!(e.regeneration_count(), 4);
        assert!(e.regenerate_dimensions(&[32]).is_err());
    }

    #[test]
    fn encode_dimension_matches_full_encoding() {
        let e = RbfEncoder::new(4, 32, 13).unwrap();
        let x = [0.4, -0.6, 0.2, 0.8];
        let full = e.encode(&x).unwrap();
        for d in 0..32 {
            assert_eq!(e.encode_dimension(&x, d).unwrap(), full[d]);
        }
        assert!(e.encode_dimension(&x, 32).is_err());
        assert!(e.encode_dimension(&[0.0], 0).is_err());
    }

    #[test]
    fn base_row_access_is_bounds_checked() {
        let e = RbfEncoder::new(3, 4, 0).unwrap();
        assert_eq!(e.base_row(0).unwrap().len(), 3);
        assert!(e.base_row(4).is_err());
    }

    #[test]
    fn base_entries_follow_requested_sigma() {
        let e = RbfEncoder::with_sigma(64, 512, 2.0, 21).unwrap();
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let n = (512 * 64) as f64;
        for d in 0..512 {
            for &b in e.base_row(d).unwrap() {
                sum += b as f64;
                sum_sq += (b as f64) * (b as f64);
            }
        }
        let mean = sum / n;
        let var = sum_sq / n - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "variance {var} should be close to sigma^2 = 4");
    }
}

//! RBF (random-Fourier-feature) encoder with per-dimension regeneration.
//!
//! The CyberHD paper uses an encoder "inspired by the Radial Basis Function"
//! (Rahimi & Recht, random features for kernel machines): each hypervector
//! dimension `d` is produced by projecting the feature vector `x` onto a
//! Gaussian base vector `b_d` (plus a uniform phase `φ_d`) and passing the
//! result through a cosine:
//!
//! ```text
//! h_d = cos(b_d · x + φ_d)
//! ```
//!
//! Because each output dimension depends on exactly one base vector, a
//! dimension that turns out to be non-discriminative can be *regenerated* by
//! replacing its `(b_d, φ_d)` pair with a fresh Gaussian/uniform draw — which
//! is precisely step (H) of CyberHD.

use crate::batch::BatchView;
use crate::codec::{CodecError, CodecResult, Reader, Writer};
use crate::encoder::Encoder;
use crate::rng::HdcRng;
use crate::{HdcError, Result};
use serde::{Deserialize, Serialize};

/// Nonlinear random-projection encoder (random Fourier features).
///
/// # Example
///
/// ```
/// use hdc::encoder::{Encoder, RbfEncoder};
///
/// # fn main() -> Result<(), hdc::HdcError> {
/// let mut encoder = RbfEncoder::new(3, 64, 42)?;
/// let before = encoder.encode(&[0.1, 0.5, -0.3])?;
///
/// // Regenerating a dimension changes (only) that output coordinate.
/// encoder.regenerate_dimension(7)?;
/// let after = encoder.encode(&[0.1, 0.5, -0.3])?;
/// assert_eq!(before.dim(), after.dim());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RbfEncoder {
    /// Row-major base matrix: `dim` rows of `features` Gaussian entries.
    bases: Vec<f32>,
    /// Feature-major transpose of `bases` (`features` rows of `dim`
    /// entries), kept in sync on regeneration.  The batched kernel
    /// accumulates projections *vertically* across output dimensions, which
    /// turns the inner loop into a pure element-wise FMA the
    /// auto-vectorizer handles far better than the horizontal dot
    /// reductions of the per-sample path.
    bases_t: Vec<f32>,
    /// Per-dimension phase offsets, uniform in `[0, 2π)`.
    phases: Vec<f32>,
    features: usize,
    dim: usize,
    /// Standard deviation of the Gaussian base entries (kernel bandwidth).
    sigma: f32,
    /// Construction seed; regeneration draws are derived from it together
    /// with the running regeneration counter, so the whole encoder history is
    /// reproducible and serializable.
    seed: u64,
    /// Total number of regeneration draws performed so far.
    regenerated: usize,
}

impl RbfEncoder {
    /// Creates an encoder for `features`-dimensional inputs producing
    /// `dim`-dimensional hypervectors, with unit kernel bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `features` or `dim` is zero.
    pub fn new(features: usize, dim: usize, seed: u64) -> Result<Self> {
        Self::with_sigma(features, dim, 1.0, seed)
    }

    /// Creates an encoder with an explicit Gaussian bandwidth `sigma`.
    ///
    /// Larger `sigma` makes the random projections more sensitive to small
    /// feature differences (narrower effective kernel).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `features` or `dim` is zero,
    /// or if `sigma` is not strictly positive and finite.
    pub fn with_sigma(features: usize, dim: usize, sigma: f32, seed: u64) -> Result<Self> {
        if features == 0 {
            return Err(HdcError::InvalidArgument("features must be non-zero".into()));
        }
        if dim == 0 {
            return Err(HdcError::InvalidArgument("dim must be non-zero".into()));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(HdcError::InvalidArgument(format!(
                "sigma must be positive and finite, got {sigma}"
            )));
        }
        let mut rng = HdcRng::seed_from(seed);
        let mut bases = vec![0.0f32; dim * features];
        for b in bases.iter_mut() {
            *b = rng.normal(0.0, sigma as f64) as f32;
        }
        let mut phases = vec![0.0f32; dim];
        rng.fill_uniform(&mut phases, 0.0, std::f64::consts::TAU);
        let bases_t = transpose(&bases, dim, features);
        Ok(Self { bases, bases_t, phases, features, dim, sigma, seed, regenerated: 0 })
    }

    /// Kernel bandwidth used for the Gaussian base entries.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// Number of base-vector regenerations performed since construction.
    ///
    /// CyberHD's *effective dimensionality* is
    /// `physical dim + regeneration_count()`.
    pub fn regeneration_count(&self) -> usize {
        self.regenerated
    }

    /// Borrows the base-vector row for output dimension `d`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] if `d >= output_dim()`.
    pub fn base_row(&self, d: usize) -> Result<&[f32]> {
        if d >= self.dim {
            return Err(HdcError::IndexOutOfRange { index: d, bound: self.dim });
        }
        Ok(&self.bases[d * self.features..(d + 1) * self.features])
    }

    /// Computes a single output coordinate `h_d = cos(b_d · x + φ_d)` without
    /// encoding the whole hypervector.
    ///
    /// The CyberHD trainer uses this to re-encode only the regenerated
    /// dimensions of its cached training matrix instead of re-running the
    /// full encoder after every regeneration round.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] if `d >= output_dim()` and
    /// [`HdcError::FeatureMismatch`] if `features` has the wrong length.
    pub fn encode_dimension(&self, features: &[f32], d: usize) -> Result<f32> {
        if d >= self.dim {
            return Err(HdcError::IndexOutOfRange { index: d, bound: self.dim });
        }
        if features.len() != self.features {
            return Err(HdcError::FeatureMismatch {
                expected: self.features,
                actual: features.len(),
            });
        }
        let row = &self.bases[d * self.features..(d + 1) * self.features];
        Ok((crate::similarity::dot(row, features) + self.phases[d]).cos())
    }

    /// Replaces the base vector and phase of dimension `d` with a fresh
    /// Gaussian/uniform draw (step (H) of CyberHD).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] if `d >= output_dim()`.
    pub fn regenerate_dimension(&mut self, d: usize) -> Result<()> {
        if d >= self.dim {
            return Err(HdcError::IndexOutOfRange { index: d, bound: self.dim });
        }
        // Derive an independent stream from (construction seed, draw index,
        // dimension): deterministic, and it keeps the encoder serializable.
        let stream = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((self.regenerated as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add(d as u64);
        let mut rng = HdcRng::seed_from(stream);
        let sigma = self.sigma as f64;
        for b in &mut self.bases[d * self.features..(d + 1) * self.features] {
            *b = rng.normal(0.0, sigma) as f32;
        }
        for f in 0..self.features {
            self.bases_t[f * self.dim + d] = self.bases[d * self.features + f];
        }
        self.phases[d] = rng.uniform(0.0, std::f64::consts::TAU) as f32;
        self.regenerated += 1;
        Ok(())
    }

    /// Regenerates every dimension in `dims` (duplicates are regenerated
    /// multiple times, matching a caller that passes an explicit drop list).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] on the first out-of-range index;
    /// dimensions before it will already have been regenerated.
    pub fn regenerate_dimensions(&mut self, dims: &[usize]) -> Result<()> {
        for &d in dims {
            self.regenerate_dimension(d)?;
        }
        Ok(())
    }

    /// Persists the encoder through the artifact codec: sizes, `sigma`,
    /// `seed`, regeneration count, the base matrix and the phases (the
    /// feature-major transpose is rebuilt on load).
    pub fn write_to(&self, w: &mut Writer) {
        w.usize(self.features);
        w.usize(self.dim);
        w.f32(self.sigma);
        w.u64(self.seed);
        w.usize(self.regenerated);
        w.f32_slice(&self.bases);
        w.f32_slice(&self.phases);
    }

    /// Reads an encoder persisted by [`RbfEncoder::write_to`], bit-exact.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a truncated stream or inconsistent shapes.
    pub fn read_from(r: &mut Reader<'_>) -> CodecResult<Self> {
        let features = r.usize()?;
        let dim = r.usize()?;
        let sigma = r.f32()?;
        let seed = r.u64()?;
        let regenerated = r.usize()?;
        let bases = r.f32_vec()?;
        let phases = r.f32_vec()?;
        if features == 0 || dim == 0 {
            return Err(CodecError::Invalid("RBF encoder with zero features or dim".into()));
        }
        if bases.len() != dim * features || phases.len() != dim {
            return Err(CodecError::Invalid(format!(
                "RBF encoder shape mismatch: {} bases / {} phases for dim {dim} x features \
                 {features}",
                bases.len(),
                phases.len()
            )));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(CodecError::Invalid(format!("RBF sigma {sigma}")));
        }
        let bases_t = transpose(&bases, dim, features);
        Ok(Self { bases, bases_t, phases, features, dim, sigma, seed, regenerated })
    }
}

/// Number of samples each pass over the base matrix serves in the blocked
/// batch kernel: every transposed base row loaded into cache is reused for
/// the whole block instead of a single sample.
const RBF_SAMPLE_BLOCK: usize = 16;

/// Output-dimension tile width of the blocked batch kernel.  One tile row
/// (`RBF_DIM_TILE` f32 = 8 KiB) stays L1-resident while it is applied to
/// every sample of the block, and the block's output tiles
/// (`RBF_SAMPLE_BLOCK × 8 KiB`) stay L2-resident across the feature loop.
const RBF_DIM_TILE: usize = 2048;

/// Samples per block of the fused sign-encode kernel.
const SIGN_SAMPLE_BLOCK: usize = 8;

/// Output-dimension tile width of the fused sign-encode kernel.  Must be a
/// multiple of 64 so tiles pack into whole `u64` words; the block's
/// projection accumulators (`SIGN_SAMPLE_BLOCK × SIGN_DIM_TILE` f32 =
/// 16 KiB) plus one 2 KiB base tile stay L1-resident across the feature
/// loop, instead of streaming `RBF_SAMPLE_BLOCK × 8 KiB` of partial sums
/// through L2 like the full-precision kernel.
const SIGN_DIM_TILE: usize = 512;

/// Builds the feature-major transpose of a row-major `dim × features`
/// matrix.
fn transpose(bases: &[f32], dim: usize, features: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; bases.len()];
    for d in 0..dim {
        for f in 0..features {
            out[f * dim + d] = bases[d * features + f];
        }
    }
    out
}

// Two-step Cody–Waite range reduction of `x` to `r ∈ [-π, π]` (modulo 2π),
// shared by `fast_cos` and the fused sign kernel so both see bit-identical
// reduced arguments.  It lives in `crate::kernel` so the SIMD quadrant
// kernels perform the identical IEEE operation sequence (including
// ties-to-even wrap-count rounding) and stay bit-exact against the scalar
// path.
use crate::kernel::reduce_to_pi;

/// Even Taylor polynomial for `cos(r)` evaluated on `r²`, through `r¹⁶/16!`
/// (max error ~2e-9 at π, below the f32 evaluation noise).
#[inline]
fn cos_poly(r2: f32) -> f32 {
    let mut p = 4.779_477_3e-14f32; // 1/16!
    p = p * r2 - 1.147_074_6e-11; // -1/14!
    p = p * r2 + 2.087_676_e-9; // 1/12!
    p = p * r2 - 2.755_732e-7; // -1/10!
    p = p * r2 + 2.480_158_7e-5; // 1/8!
    p = p * r2 - 1.388_888_9e-3; // -1/6!
    p = p * r2 + 4.166_666_7e-2; // 1/4!
    p = p * r2 - 0.5; // -1/2!
    p * r2 + 1.0
}

/// Branch-free cosine for the batched kernel: [`reduce_to_pi`] followed by
/// `cos_poly`.
///
/// Every operation (`round`, multiplies, adds) lowers to straight-line SIMD,
/// so the final `cos` pass over an encode tile auto-vectorizes — `libm`'s
/// scalar `cosf` call is the single largest cost of the batched encode
/// otherwise.  Absolute error stays below ~1e-6 for the |x| ≲ 100 range RBF
/// projections occupy (‖x‖₂·σ·√features plus a phase), which is inside the
/// engine's documented 1e-6 score-parity budget.
#[inline]
fn fast_cos(x: f32) -> f32 {
    let r = reduce_to_pi(x);
    cos_poly(r * r)
}

/// Half-width of the guard band around the quadrant boundary `|r| = π/2`
/// inside which the sign kernel falls back to the exact `cos_poly`
/// evaluation.
///
/// Outside the band `|cos r| ≥ sin(1e-3) ≈ 1e-3`, three orders of magnitude
/// above `cos_poly`'s error, so the plain quadrant test `|r| ≤ π/2` is
/// guaranteed to agree with the polynomial's sign — which is what makes the
/// fused kernel's predictions bit-exact against encode-then-quantize.
const QUADRANT_GUARD: f32 = 1e-3;

impl Encoder for RbfEncoder {
    fn input_features(&self) -> usize {
        self.features
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn encode_into(&self, features: &[f32], out: &mut [f32]) -> Result<()> {
        if features.len() != self.features {
            return Err(HdcError::FeatureMismatch {
                expected: self.features,
                actual: features.len(),
            });
        }
        if out.len() != self.dim {
            return Err(HdcError::DimensionMismatch { expected: self.dim, actual: out.len() });
        }
        for (d, slot) in out.iter_mut().enumerate() {
            let row = &self.bases[d * self.features..(d + 1) * self.features];
            *slot = (crate::similarity::dot(row, features) + self.phases[d]).cos();
        }
        Ok(())
    }

    /// Tiled, transposed batch kernel (GEMM-style): projections are
    /// accumulated *vertically* over `RBF_DIM_TILE`-wide output tiles
    /// using the feature-major transpose of the base matrix, so
    ///
    /// * the inner loop is a pure element-wise FMA with unit stride (the
    ///   auto-vectorizer's best case, no horizontal reductions),
    /// * each transposed base row is loaded into cache once per
    ///   `RBF_SAMPLE_BLOCK`-sample block instead of once per sample.
    ///
    /// The projection of each output element sums the same `x_f · b_{d,f}`
    /// terms as [`Encoder::encode_into`] in a different association order,
    /// so batched scores agree with the per-sample path to float rounding
    /// (~1e-7) rather than bit-for-bit; the parity suite pins this bound.
    ///
    /// Exactly-zero features are skipped, like in the fused sign kernel:
    /// their products are ±0.0 and the accumulators are never −0.0 (they
    /// start at non-negative phases and IEEE round-to-nearest cancellation
    /// yields +0.0), so the skip is bit-exact — and one-hot-expanded NIDS
    /// features are mostly zeros.
    fn encode_batch_into(&self, batch: BatchView<'_>, out: &mut [f32]) -> Result<()> {
        crate::encoder::check_batch_shape(self.features, self.dim, batch, out)?;
        let dim = self.dim;
        let kernels = crate::kernel::active();
        for (block, tile) in
            batch.chunk_rows(RBF_SAMPLE_BLOCK).zip(out.chunks_mut(RBF_SAMPLE_BLOCK * dim))
        {
            // proj[s][d] starts at the phase and accumulates the projection.
            for row in tile.chunks_exact_mut(dim) {
                row.copy_from_slice(&self.phases);
            }
            for d0 in (0..dim).step_by(RBF_DIM_TILE) {
                let d1 = (d0 + RBF_DIM_TILE).min(dim);
                for (f, base_row) in self.bases_t.chunks_exact(dim).enumerate() {
                    let base_tile = &base_row[d0..d1];
                    for (s, sample) in block.iter_rows().enumerate() {
                        let value = sample[f];
                        if value == 0.0 {
                            continue;
                        }
                        // Kernel axpy (`out += value * base`): element-wise
                        // mul + add, bit-exact on every dispatch path.
                        kernels.axpy(&mut tile[s * dim + d0..s * dim + d1], value, base_tile);
                    }
                }
            }
            for v in tile.iter_mut() {
                *v = fast_cos(*v);
            }
        }
        Ok(())
    }

    /// Fused 1-bit sign-encode kernel: accumulates the projections in
    /// L1-resident `SIGN_SAMPLE_BLOCK``×``SIGN_DIM_TILE` register tiles
    /// and reduces each phase straight to its quadrant — for `B1` only the
    /// *sign* of `cos(b_d·x + φ_d)` survives quantization, and
    /// `cos(r) ≥ 0 ⇔ |r| ≤ π/2` after range reduction — packing bits
    /// directly into `u64` words.  The `samples × dim` f32 matrix, the
    /// cosine polynomial and the separate quantize/pack passes of the
    /// encode-then-quantize path are all skipped.
    ///
    /// Projections accumulate features in the same order as
    /// [`Encoder::encode_batch_into`], and elements inside the narrow
    /// `QUADRANT_GUARD` band fall back to the exact `cos_poly` sign, so
    /// the packed bits are **bit-identical** to sign-thresholding the
    /// batched f32 encoding.
    fn encode_signs_into(
        &self,
        batch: BatchView<'_>,
        words: &mut [u64],
        zero_rows: &mut [bool],
    ) -> Result<()> {
        crate::encoder::check_sign_batch_shape(self.features, self.dim, batch, words, zero_rows)?;
        const WORD_BITS: usize = 64;
        let dim = self.dim;
        let kernels = crate::kernel::active();
        let words_per_row = crate::binary::words_for_dim(dim);
        zero_rows.fill(true);
        let mut acc = [0.0f32; SIGN_SAMPLE_BLOCK * SIGN_DIM_TILE];
        for (block_index, block) in batch.chunk_rows(SIGN_SAMPLE_BLOCK).enumerate() {
            let row0 = block_index * SIGN_SAMPLE_BLOCK;
            for d0 in (0..dim).step_by(SIGN_DIM_TILE) {
                let d1 = (d0 + SIGN_DIM_TILE).min(dim);
                let tile_width = d1 - d0;
                // Projections start at the phases and accumulate features in
                // ascending order — the association order of the batched f32
                // kernel, so the sums are bit-identical to it.
                for s in 0..block.rows() {
                    acc[s * SIGN_DIM_TILE..s * SIGN_DIM_TILE + tile_width]
                        .copy_from_slice(&self.phases[d0..d1]);
                }
                for (f, base_row) in self.bases_t.chunks_exact(dim).enumerate() {
                    let base_tile = &base_row[d0..d1];
                    for (s, sample) in block.iter_rows().enumerate() {
                        let value = sample[f];
                        // Zero features contribute exactly nothing: the
                        // products are ±0.0 and the accumulators are never
                        // -0.0 (they start at non-negative phases, and IEEE
                        // round-to-nearest cancellation yields +0.0), so
                        // skipping them is bit-exact — and one-hot-expanded
                        // NIDS features are mostly zeros.
                        if value == 0.0 {
                            continue;
                        }
                        // Kernel axpy, bit-exact with the batched f32 path.
                        kernels.axpy(
                            &mut acc[s * SIGN_DIM_TILE..s * SIGN_DIM_TILE + tile_width],
                            value,
                            base_tile,
                        );
                    }
                }
                // Quadrant test + pack.  SIGN_DIM_TILE is a multiple of 64,
                // so every tile starts on a word boundary and only the final
                // ragged tile can end mid-word (its high bits stay zero, the
                // packing convention).
                let word0 = d0 / WORD_BITS;
                for s in 0..block.rows() {
                    let row_words =
                        &mut words[(row0 + s) * words_per_row..(row0 + s + 1) * words_per_row];
                    let mut row_zero = zero_rows[row0 + s];
                    let tile = &acc[s * SIGN_DIM_TILE..s * SIGN_DIM_TILE + tile_width];
                    for (w, chunk) in tile.chunks(WORD_BITS).enumerate() {
                        // Fused quadrant test via the active kernel path:
                        // bit-exact across paths (identical IEEE range
                        // reduction, ordered compares).
                        let (mut word, band) = kernels.sign_quadrant_word(chunk, QUADRANT_GUARD);
                        // Rare fixup: elements within the guard band of the
                        // quadrant boundary get the exact polynomial sign.
                        let mut band_nonzero_value = false;
                        let mut pending = band;
                        while pending != 0 {
                            let bit = pending.trailing_zeros() as usize;
                            pending &= pending - 1;
                            let r = reduce_to_pi(chunk[bit]);
                            let c = cos_poly(r * r);
                            if c >= 0.0 {
                                word |= 1u64 << bit;
                            } else {
                                word &= !(1u64 << bit);
                            }
                            band_nonzero_value |= c != 0.0;
                        }
                        // Outside the band `fast_cos` is bounded away from
                        // zero, so a row can only be all-`0.0` if every
                        // element sat in the band and evaluated to exactly
                        // zero.
                        let full = if chunk.len() == WORD_BITS {
                            u64::MAX
                        } else {
                            (1u64 << chunk.len()) - 1
                        };
                        if band != full || band_nonzero_value {
                            row_zero = false;
                        }
                        row_words[word0 + w] = word;
                    }
                    zero_rows[row0 + s] = row_zero;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_arguments() {
        assert!(RbfEncoder::new(0, 8, 0).is_err());
        assert!(RbfEncoder::new(4, 0, 0).is_err());
        assert!(RbfEncoder::with_sigma(4, 8, 0.0, 0).is_err());
        assert!(RbfEncoder::with_sigma(4, 8, f32::NAN, 0).is_err());
        assert!(RbfEncoder::new(4, 8, 0).is_ok());
    }

    #[test]
    fn encoding_is_deterministic_and_bounded() {
        let e = RbfEncoder::new(5, 128, 3).unwrap();
        let x = [0.1, -0.2, 0.3, 0.4, -0.5];
        let a = e.encode(&x).unwrap();
        let b = e.encode(&x).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)), "cosine outputs stay in [-1, 1]");
    }

    #[test]
    fn feature_mismatch_is_reported() {
        let e = RbfEncoder::new(5, 16, 0).unwrap();
        assert!(matches!(
            e.encode(&[1.0, 2.0]),
            Err(HdcError::FeatureMismatch { expected: 5, actual: 2 })
        ));
    }

    #[test]
    fn nearby_inputs_encode_to_similar_hypervectors() {
        let e = RbfEncoder::with_sigma(8, 2048, 0.5, 7).unwrap();
        let x: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let mut x_near = x.clone();
        x_near[0] += 0.01;
        let mut x_far = x.clone();
        for v in &mut x_far {
            *v += 2.0;
        }
        let hx = e.encode(&x).unwrap();
        let hnear = e.encode(&x_near).unwrap();
        let hfar = e.encode(&x_far).unwrap();
        let sim_near = hx.cosine(&hnear).unwrap();
        let sim_far = hx.cosine(&hfar).unwrap();
        assert!(sim_near > sim_far + 0.1, "locality: near {sim_near} should exceed far {sim_far}");
    }

    #[test]
    fn different_seeds_produce_different_encoders() {
        let a = RbfEncoder::new(4, 256, 1).unwrap();
        let b = RbfEncoder::new(4, 256, 2).unwrap();
        let x = [0.3, 0.1, -0.7, 0.9];
        let ha = a.encode(&x).unwrap();
        let hb = b.encode(&x).unwrap();
        assert!(ha.cosine(&hb).unwrap() < 0.9);
    }

    #[test]
    fn regeneration_changes_only_the_targeted_dimension() {
        let mut e = RbfEncoder::new(6, 64, 9).unwrap();
        let x = [0.2, -0.1, 0.5, 0.7, -0.3, 0.0];
        let before = e.encode(&x).unwrap();
        e.regenerate_dimension(10).unwrap();
        let after = e.encode(&x).unwrap();
        for d in 0..64 {
            if d == 10 {
                continue;
            }
            assert_eq!(before[d], after[d], "dimension {d} should be unchanged");
        }
        assert_eq!(e.regeneration_count(), 1);
    }

    #[test]
    fn regenerate_dimensions_counts_every_draw() {
        let mut e = RbfEncoder::new(3, 32, 11).unwrap();
        e.regenerate_dimensions(&[0, 5, 5, 31]).unwrap();
        assert_eq!(e.regeneration_count(), 4);
        assert!(e.regenerate_dimensions(&[32]).is_err());
    }

    #[test]
    fn encode_dimension_matches_full_encoding() {
        let e = RbfEncoder::new(4, 32, 13).unwrap();
        let x = [0.4, -0.6, 0.2, 0.8];
        let full = e.encode(&x).unwrap();
        for d in 0..32 {
            assert_eq!(e.encode_dimension(&x, d).unwrap(), full[d]);
        }
        assert!(e.encode_dimension(&x, 32).is_err());
        assert!(e.encode_dimension(&[0.0], 0).is_err());
    }

    #[test]
    fn blocked_batch_kernel_matches_the_serial_path_to_rounding() {
        // A dimensionality above RBF_DIM_TILE plus more samples than one
        // block exercises both tiling axes.
        let dim = RBF_DIM_TILE + 37;
        let e = RbfEncoder::with_sigma(7, dim, 0.8, 17).unwrap();
        let rows = RBF_SAMPLE_BLOCK * 2 + 3;
        // Sprinkle exact zeros between the nonzero values so the dense
        // kernel's zero-feature skip is exercised against the serial path.
        let data: Vec<f32> =
            (0..rows * 7).map(|i| if i % 3 == 0 { 0.0 } else { (i as f32 * 0.37).sin() }).collect();
        let batch = crate::BatchView::new(&data, 7).unwrap();
        let mut matrix = vec![f32::NAN; rows * dim];
        e.encode_batch_into(batch, &mut matrix).unwrap();
        for (i, row) in matrix.chunks_exact(dim).enumerate() {
            let reference = e.encode(batch.row(i)).unwrap();
            for (d, (a, b)) in row.iter().zip(reference.iter()).enumerate() {
                // Association-order rounding plus the ~1e-6 fast_cos error:
                // per-element agreement to 5e-6.  Score-level parity (the
                // engine's contract) is tighter because independent element
                // errors average out in the cosine — tests/batch_parity.rs
                // pins that at 1e-6.
                assert!((a - b).abs() < 5e-6, "sample {i} dim {d}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fused_sign_kernel_matches_encode_then_threshold_bit_for_bit() {
        // Dims straddling tile/word boundaries, blocks beyond one sample
        // block, plus a sigma large enough to push projections through many
        // 2π wraps.
        for (dim, sigma) in [(64usize, 0.8f32), (100, 1.0), (SIGN_DIM_TILE + 96 + 13, 2.5)] {
            let e = RbfEncoder::with_sigma(9, dim, sigma, 29).unwrap();
            // Roughly half the features are exactly zero (one-hot-shaped
            // inputs), exercising the kernel's zero-feature skip.
            let rows = SIGN_SAMPLE_BLOCK * 2 + 5;
            let data: Vec<f32> = (0..rows * 9)
                .map(|i| {
                    let (row, f) = (i / 9, i % 9);
                    if (row + f) % 2 == 0 {
                        0.0
                    } else {
                        ((row * 9 + f) as f32 * 0.61).sin() * 3.0
                    }
                })
                .collect();
            let batch = crate::BatchView::new(&data, 9).unwrap();
            let words_per_row = crate::binary::words_for_dim(dim);
            let mut fused = vec![u64::MAX; rows * words_per_row];
            let mut fused_zero = vec![true; rows];
            e.encode_signs_into(batch, &mut fused, &mut fused_zero).unwrap();

            // Reference: the encode-then-threshold default (batched f32
            // kernel + sign packing).
            let mut matrix = vec![f32::NAN; rows * dim];
            e.encode_batch_into(batch, &mut matrix).unwrap();
            let mut reference = vec![0u64; rows * words_per_row];
            let mut reference_zero = vec![true; rows];
            for (i, row) in matrix.chunks_exact(dim).enumerate() {
                reference_zero[i] = crate::binary::pack_f32_signs_checked(
                    row,
                    &mut reference[i * words_per_row..(i + 1) * words_per_row],
                );
            }
            assert_eq!(fused, reference, "dim {dim}");
            assert_eq!(fused_zero, reference_zero, "dim {dim}");
            assert!(fused_zero.iter().all(|z| !z), "RBF encodings are never all-zero");
        }
    }

    #[test]
    fn fused_sign_kernel_validates_shapes() {
        let e = RbfEncoder::new(3, 70, 1).unwrap();
        let data = [0.1f32, 0.2, 0.3];
        let batch = crate::BatchView::new(&data, 3).unwrap();
        let mut words = vec![0u64; 2];
        let mut zero = vec![false; 1];
        assert!(e.encode_signs_into(batch, &mut words, &mut zero).is_ok());
        let mut short_words = vec![0u64; 1];
        assert!(e.encode_signs_into(batch, &mut short_words, &mut zero).is_err());
        let mut short_zero = vec![];
        assert!(e.encode_signs_into(batch, &mut words, &mut short_zero).is_err());
        let narrow = crate::BatchView::new(&data[..1], 1).unwrap();
        let mut one_word = vec![0u64; 2];
        let mut one_zero = vec![false; 1];
        assert!(e.encode_signs_into(narrow, &mut one_word, &mut one_zero).is_err());
    }

    #[test]
    fn encoder_persistence_round_trips_bit_exactly() {
        let mut e = RbfEncoder::with_sigma(6, 96, 1.7, 99).unwrap();
        e.regenerate_dimensions(&[3, 40, 95]).unwrap();
        let mut w = crate::codec::Writer::new();
        e.write_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::codec::Reader::new(&bytes);
        let back = RbfEncoder::read_from(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.sigma(), e.sigma());
        assert_eq!(back.regeneration_count(), 3);
        let x = [0.2f32, -0.4, 0.0, 0.9, 0.5, -0.1];
        assert_eq!(back.encode(&x).unwrap(), e.encode(&x).unwrap());
        // Regeneration continues from the same reproducible stream.
        let mut a = e.clone();
        let mut b = back;
        a.regenerate_dimension(10).unwrap();
        b.regenerate_dimension(10).unwrap();
        assert_eq!(a.encode(&x).unwrap(), b.encode(&x).unwrap());
        // Corrupted shape metadata is rejected.
        let mut w = crate::codec::Writer::new();
        e.write_to(&mut w);
        let mut bad = w.into_bytes();
        bad[0] = 0; // features -> 0
        assert!(RbfEncoder::read_from(&mut crate::codec::Reader::new(&bad)).is_err());
    }

    #[test]
    fn quadrant_guard_band_is_wide_enough_for_the_polynomial_error() {
        // Outside the guard band the quadrant test must agree with the
        // polynomial's sign; sweep densely around the boundary.
        let mut x = std::f32::consts::FRAC_PI_2 - 2.0 * QUADRANT_GUARD;
        while x <= std::f32::consts::FRAC_PI_2 + 2.0 * QUADRANT_GUARD {
            let a = reduce_to_pi(x).abs();
            if (a - std::f32::consts::FRAC_PI_2).abs() >= QUADRANT_GUARD {
                let quadrant = a <= std::f32::consts::FRAC_PI_2;
                let poly = fast_cos(x) >= 0.0;
                assert_eq!(quadrant, poly, "sign mismatch outside the guard band at x = {x}");
            }
            x += 1e-6;
        }
    }

    #[test]
    fn fast_cos_tracks_libm_over_the_projection_range() {
        // Sweep the range RBF projections occupy (|x| up to ~100) plus the
        // reduction boundaries around multiples of TAU.
        let mut worst = 0.0f32;
        let mut x = -100.0f32;
        while x <= 100.0 {
            let err = (fast_cos(x) - (x as f64).cos() as f32).abs();
            worst = worst.max(err);
            x += 0.001;
        }
        assert!(worst < 1e-6, "worst fast_cos error {worst}");
    }

    #[test]
    fn transpose_stays_in_sync_after_regeneration() {
        let mut e = RbfEncoder::new(5, 48, 23).unwrap();
        e.regenerate_dimensions(&[0, 7, 47, 7]).unwrap();
        for d in 0..48 {
            for f in 0..5 {
                assert_eq!(e.bases_t[f * 48 + d], e.bases[d * 5 + f], "d={d} f={f}");
            }
        }
    }

    #[test]
    fn base_row_access_is_bounds_checked() {
        let e = RbfEncoder::new(3, 4, 0).unwrap();
        assert_eq!(e.base_row(0).unwrap().len(), 3);
        assert!(e.base_row(4).is_err());
    }

    #[test]
    fn base_entries_follow_requested_sigma() {
        let e = RbfEncoder::with_sigma(64, 512, 2.0, 21).unwrap();
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let n = (512 * 64) as f64;
        for d in 0..512 {
            for &b in e.base_row(d).unwrap() {
                sum += b as f64;
                sum_sq += (b as f64) * (b as f64);
            }
        }
        let mean = sum / n;
        let var = sum_sq / n - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "variance {var} should be close to sigma^2 = 4");
    }
}

//! RBF (random-Fourier-feature) encoder with per-dimension regeneration.
//!
//! The CyberHD paper uses an encoder "inspired by the Radial Basis Function"
//! (Rahimi & Recht, random features for kernel machines): each hypervector
//! dimension `d` is produced by projecting the feature vector `x` onto a
//! Gaussian base vector `b_d` (plus a uniform phase `φ_d`) and passing the
//! result through a cosine:
//!
//! ```text
//! h_d = cos(b_d · x + φ_d)
//! ```
//!
//! Because each output dimension depends on exactly one base vector, a
//! dimension that turns out to be non-discriminative can be *regenerated* by
//! replacing its `(b_d, φ_d)` pair with a fresh Gaussian/uniform draw — which
//! is precisely step (H) of CyberHD.

use crate::encoder::Encoder;
use crate::rng::HdcRng;
use crate::{HdcError, Result};
use serde::{Deserialize, Serialize};

/// Nonlinear random-projection encoder (random Fourier features).
///
/// # Example
///
/// ```
/// use hdc::encoder::{Encoder, RbfEncoder};
///
/// # fn main() -> Result<(), hdc::HdcError> {
/// let mut encoder = RbfEncoder::new(3, 64, 42)?;
/// let before = encoder.encode(&[0.1, 0.5, -0.3])?;
///
/// // Regenerating a dimension changes (only) that output coordinate.
/// encoder.regenerate_dimension(7)?;
/// let after = encoder.encode(&[0.1, 0.5, -0.3])?;
/// assert_eq!(before.dim(), after.dim());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RbfEncoder {
    /// Row-major base matrix: `dim` rows of `features` Gaussian entries.
    bases: Vec<f32>,
    /// Feature-major transpose of `bases` (`features` rows of `dim`
    /// entries), kept in sync on regeneration.  The batched kernel
    /// accumulates projections *vertically* across output dimensions, which
    /// turns the inner loop into a pure element-wise FMA the
    /// auto-vectorizer handles far better than the horizontal dot
    /// reductions of the per-sample path.
    bases_t: Vec<f32>,
    /// Per-dimension phase offsets, uniform in `[0, 2π)`.
    phases: Vec<f32>,
    features: usize,
    dim: usize,
    /// Standard deviation of the Gaussian base entries (kernel bandwidth).
    sigma: f32,
    /// Construction seed; regeneration draws are derived from it together
    /// with the running regeneration counter, so the whole encoder history is
    /// reproducible and serializable.
    seed: u64,
    /// Total number of regeneration draws performed so far.
    regenerated: usize,
}

impl RbfEncoder {
    /// Creates an encoder for `features`-dimensional inputs producing
    /// `dim`-dimensional hypervectors, with unit kernel bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `features` or `dim` is zero.
    pub fn new(features: usize, dim: usize, seed: u64) -> Result<Self> {
        Self::with_sigma(features, dim, 1.0, seed)
    }

    /// Creates an encoder with an explicit Gaussian bandwidth `sigma`.
    ///
    /// Larger `sigma` makes the random projections more sensitive to small
    /// feature differences (narrower effective kernel).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `features` or `dim` is zero,
    /// or if `sigma` is not strictly positive and finite.
    pub fn with_sigma(features: usize, dim: usize, sigma: f32, seed: u64) -> Result<Self> {
        if features == 0 {
            return Err(HdcError::InvalidArgument("features must be non-zero".into()));
        }
        if dim == 0 {
            return Err(HdcError::InvalidArgument("dim must be non-zero".into()));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(HdcError::InvalidArgument(format!(
                "sigma must be positive and finite, got {sigma}"
            )));
        }
        let mut rng = HdcRng::seed_from(seed);
        let mut bases = vec![0.0f32; dim * features];
        for b in bases.iter_mut() {
            *b = rng.normal(0.0, sigma as f64) as f32;
        }
        let mut phases = vec![0.0f32; dim];
        rng.fill_uniform(&mut phases, 0.0, std::f64::consts::TAU);
        let bases_t = transpose(&bases, dim, features);
        Ok(Self { bases, bases_t, phases, features, dim, sigma, seed, regenerated: 0 })
    }

    /// Kernel bandwidth used for the Gaussian base entries.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// Number of base-vector regenerations performed since construction.
    ///
    /// CyberHD's *effective dimensionality* is
    /// `physical dim + regeneration_count()`.
    pub fn regeneration_count(&self) -> usize {
        self.regenerated
    }

    /// Borrows the base-vector row for output dimension `d`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] if `d >= output_dim()`.
    pub fn base_row(&self, d: usize) -> Result<&[f32]> {
        if d >= self.dim {
            return Err(HdcError::IndexOutOfRange { index: d, bound: self.dim });
        }
        Ok(&self.bases[d * self.features..(d + 1) * self.features])
    }

    /// Computes a single output coordinate `h_d = cos(b_d · x + φ_d)` without
    /// encoding the whole hypervector.
    ///
    /// The CyberHD trainer uses this to re-encode only the regenerated
    /// dimensions of its cached training matrix instead of re-running the
    /// full encoder after every regeneration round.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] if `d >= output_dim()` and
    /// [`HdcError::FeatureMismatch`] if `features` has the wrong length.
    pub fn encode_dimension(&self, features: &[f32], d: usize) -> Result<f32> {
        if d >= self.dim {
            return Err(HdcError::IndexOutOfRange { index: d, bound: self.dim });
        }
        if features.len() != self.features {
            return Err(HdcError::FeatureMismatch {
                expected: self.features,
                actual: features.len(),
            });
        }
        let row = &self.bases[d * self.features..(d + 1) * self.features];
        Ok((crate::similarity::dot(row, features) + self.phases[d]).cos())
    }

    /// Replaces the base vector and phase of dimension `d` with a fresh
    /// Gaussian/uniform draw (step (H) of CyberHD).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] if `d >= output_dim()`.
    pub fn regenerate_dimension(&mut self, d: usize) -> Result<()> {
        if d >= self.dim {
            return Err(HdcError::IndexOutOfRange { index: d, bound: self.dim });
        }
        // Derive an independent stream from (construction seed, draw index,
        // dimension): deterministic, and it keeps the encoder serializable.
        let stream = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((self.regenerated as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add(d as u64);
        let mut rng = HdcRng::seed_from(stream);
        let sigma = self.sigma as f64;
        for b in &mut self.bases[d * self.features..(d + 1) * self.features] {
            *b = rng.normal(0.0, sigma) as f32;
        }
        for f in 0..self.features {
            self.bases_t[f * self.dim + d] = self.bases[d * self.features + f];
        }
        self.phases[d] = rng.uniform(0.0, std::f64::consts::TAU) as f32;
        self.regenerated += 1;
        Ok(())
    }

    /// Regenerates every dimension in `dims` (duplicates are regenerated
    /// multiple times, matching a caller that passes an explicit drop list).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] on the first out-of-range index;
    /// dimensions before it will already have been regenerated.
    pub fn regenerate_dimensions(&mut self, dims: &[usize]) -> Result<()> {
        for &d in dims {
            self.regenerate_dimension(d)?;
        }
        Ok(())
    }
}

/// Number of samples each pass over the base matrix serves in the blocked
/// batch kernel: every transposed base row loaded into cache is reused for
/// the whole block instead of a single sample.
const RBF_SAMPLE_BLOCK: usize = 16;

/// Output-dimension tile width of the blocked batch kernel.  One tile row
/// (`RBF_DIM_TILE` f32 = 8 KiB) stays L1-resident while it is applied to
/// every sample of the block, and the block's output tiles
/// (`RBF_SAMPLE_BLOCK × 8 KiB`) stay L2-resident across the feature loop.
const RBF_DIM_TILE: usize = 2048;

/// Builds the feature-major transpose of a row-major `dim × features`
/// matrix.
fn transpose(bases: &[f32], dim: usize, features: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; bases.len()];
    for d in 0..dim {
        for f in 0..features {
            out[f * dim + d] = bases[d * features + f];
        }
    }
    out
}

/// Branch-free cosine for the batched kernel: two-step Cody–Waite range
/// reduction to `[-π, π]` followed by an even Taylor polynomial through
/// `r¹⁶/16!`.
///
/// Every operation (`round`, multiplies, adds) lowers to straight-line SIMD,
/// so the final `cos` pass over an encode tile auto-vectorizes — `libm`'s
/// scalar `cosf` call is the single largest cost of the batched encode
/// otherwise.  Absolute error stays below ~1e-6 for the |x| ≲ 100 range RBF
/// projections occupy (‖x‖₂·σ·√features plus a phase), which is inside the
/// engine's documented 1e-6 score-parity budget.
#[inline]
fn fast_cos(x: f32) -> f32 {
    const INV_TAU: f32 = 1.0 / std::f32::consts::TAU;
    // TAU split into an exactly representable head and a tail, so `k * C1`
    // is exact for the small wrap counts that occur and the reduction error
    // stays at f32 rounding level instead of growing with |x|.
    const C1: f32 = 6.281_25;
    const C2: f32 = 1.935_307_2e-3;
    let k = (x * INV_TAU).round();
    let r = (x - k * C1) - k * C2;
    let r2 = r * r;
    // cos(r) = Σ (-1)^n r^(2n) / (2n)!  up to n = 8 (max error ~2e-9 at π,
    // below the f32 evaluation noise).
    let mut p = 4.779_477_3e-14f32; // 1/16!
    p = p * r2 - 1.147_074_6e-11; // -1/14!
    p = p * r2 + 2.087_676_e-9; // 1/12!
    p = p * r2 - 2.755_732e-7; // -1/10!
    p = p * r2 + 2.480_158_7e-5; // 1/8!
    p = p * r2 - 1.388_888_9e-3; // -1/6!
    p = p * r2 + 4.166_666_7e-2; // 1/4!
    p = p * r2 - 0.5; // -1/2!
    p * r2 + 1.0
}

impl Encoder for RbfEncoder {
    fn input_features(&self) -> usize {
        self.features
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn encode_into(&self, features: &[f32], out: &mut [f32]) -> Result<()> {
        if features.len() != self.features {
            return Err(HdcError::FeatureMismatch {
                expected: self.features,
                actual: features.len(),
            });
        }
        if out.len() != self.dim {
            return Err(HdcError::DimensionMismatch { expected: self.dim, actual: out.len() });
        }
        for (d, slot) in out.iter_mut().enumerate() {
            let row = &self.bases[d * self.features..(d + 1) * self.features];
            *slot = (crate::similarity::dot(row, features) + self.phases[d]).cos();
        }
        Ok(())
    }

    /// Tiled, transposed batch kernel (GEMM-style): projections are
    /// accumulated *vertically* over [`RBF_DIM_TILE`]-wide output tiles
    /// using the feature-major transpose of the base matrix, so
    ///
    /// * the inner loop is a pure element-wise FMA with unit stride (the
    ///   auto-vectorizer's best case, no horizontal reductions),
    /// * each transposed base row is loaded into cache once per
    ///   [`RBF_SAMPLE_BLOCK`]-sample block instead of once per sample.
    ///
    /// The projection of each output element sums the same `x_f · b_{d,f}`
    /// terms as [`Encoder::encode_into`] in a different association order,
    /// so batched scores agree with the per-sample path to float rounding
    /// (~1e-7) rather than bit-for-bit; the parity suite pins this bound.
    fn encode_batch_into(&self, batch: &[Vec<f32>], out: &mut [f32]) -> Result<()> {
        crate::encoder::check_batch_shape(self.features, self.dim, batch, out)?;
        let dim = self.dim;
        for (block, tile) in
            batch.chunks(RBF_SAMPLE_BLOCK).zip(out.chunks_mut(RBF_SAMPLE_BLOCK * dim))
        {
            // proj[s][d] starts at the phase and accumulates the projection.
            for row in tile.chunks_exact_mut(dim) {
                row.copy_from_slice(&self.phases);
            }
            for d0 in (0..dim).step_by(RBF_DIM_TILE) {
                let d1 = (d0 + RBF_DIM_TILE).min(dim);
                for (f, base_row) in self.bases_t.chunks_exact(dim).enumerate() {
                    let base_tile = &base_row[d0..d1];
                    for (s, sample) in block.iter().enumerate() {
                        let value = sample[f];
                        let out_tile = &mut tile[s * dim + d0..s * dim + d1];
                        for (o, &b) in out_tile.iter_mut().zip(base_tile) {
                            *o += value * b;
                        }
                    }
                }
            }
            for v in tile.iter_mut() {
                *v = fast_cos(*v);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_arguments() {
        assert!(RbfEncoder::new(0, 8, 0).is_err());
        assert!(RbfEncoder::new(4, 0, 0).is_err());
        assert!(RbfEncoder::with_sigma(4, 8, 0.0, 0).is_err());
        assert!(RbfEncoder::with_sigma(4, 8, f32::NAN, 0).is_err());
        assert!(RbfEncoder::new(4, 8, 0).is_ok());
    }

    #[test]
    fn encoding_is_deterministic_and_bounded() {
        let e = RbfEncoder::new(5, 128, 3).unwrap();
        let x = [0.1, -0.2, 0.3, 0.4, -0.5];
        let a = e.encode(&x).unwrap();
        let b = e.encode(&x).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)), "cosine outputs stay in [-1, 1]");
    }

    #[test]
    fn feature_mismatch_is_reported() {
        let e = RbfEncoder::new(5, 16, 0).unwrap();
        assert!(matches!(
            e.encode(&[1.0, 2.0]),
            Err(HdcError::FeatureMismatch { expected: 5, actual: 2 })
        ));
    }

    #[test]
    fn nearby_inputs_encode_to_similar_hypervectors() {
        let e = RbfEncoder::with_sigma(8, 2048, 0.5, 7).unwrap();
        let x: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let mut x_near = x.clone();
        x_near[0] += 0.01;
        let mut x_far = x.clone();
        for v in &mut x_far {
            *v += 2.0;
        }
        let hx = e.encode(&x).unwrap();
        let hnear = e.encode(&x_near).unwrap();
        let hfar = e.encode(&x_far).unwrap();
        let sim_near = hx.cosine(&hnear).unwrap();
        let sim_far = hx.cosine(&hfar).unwrap();
        assert!(sim_near > sim_far + 0.1, "locality: near {sim_near} should exceed far {sim_far}");
    }

    #[test]
    fn different_seeds_produce_different_encoders() {
        let a = RbfEncoder::new(4, 256, 1).unwrap();
        let b = RbfEncoder::new(4, 256, 2).unwrap();
        let x = [0.3, 0.1, -0.7, 0.9];
        let ha = a.encode(&x).unwrap();
        let hb = b.encode(&x).unwrap();
        assert!(ha.cosine(&hb).unwrap() < 0.9);
    }

    #[test]
    fn regeneration_changes_only_the_targeted_dimension() {
        let mut e = RbfEncoder::new(6, 64, 9).unwrap();
        let x = [0.2, -0.1, 0.5, 0.7, -0.3, 0.0];
        let before = e.encode(&x).unwrap();
        e.regenerate_dimension(10).unwrap();
        let after = e.encode(&x).unwrap();
        for d in 0..64 {
            if d == 10 {
                continue;
            }
            assert_eq!(before[d], after[d], "dimension {d} should be unchanged");
        }
        assert_eq!(e.regeneration_count(), 1);
    }

    #[test]
    fn regenerate_dimensions_counts_every_draw() {
        let mut e = RbfEncoder::new(3, 32, 11).unwrap();
        e.regenerate_dimensions(&[0, 5, 5, 31]).unwrap();
        assert_eq!(e.regeneration_count(), 4);
        assert!(e.regenerate_dimensions(&[32]).is_err());
    }

    #[test]
    fn encode_dimension_matches_full_encoding() {
        let e = RbfEncoder::new(4, 32, 13).unwrap();
        let x = [0.4, -0.6, 0.2, 0.8];
        let full = e.encode(&x).unwrap();
        for d in 0..32 {
            assert_eq!(e.encode_dimension(&x, d).unwrap(), full[d]);
        }
        assert!(e.encode_dimension(&x, 32).is_err());
        assert!(e.encode_dimension(&[0.0], 0).is_err());
    }

    #[test]
    fn blocked_batch_kernel_matches_the_serial_path_to_rounding() {
        // A dimensionality above RBF_DIM_TILE plus more samples than one
        // block exercises both tiling axes.
        let dim = RBF_DIM_TILE + 37;
        let e = RbfEncoder::with_sigma(7, dim, 0.8, 17).unwrap();
        let batch: Vec<Vec<f32>> = (0..RBF_SAMPLE_BLOCK * 2 + 3)
            .map(|i| (0..7).map(|f| ((i * 7 + f) as f32 * 0.37).sin()).collect())
            .collect();
        let mut matrix = vec![f32::NAN; batch.len() * dim];
        e.encode_batch_into(&batch, &mut matrix).unwrap();
        for (i, row) in matrix.chunks_exact(dim).enumerate() {
            let reference = e.encode(&batch[i]).unwrap();
            for (d, (a, b)) in row.iter().zip(reference.iter()).enumerate() {
                // Association-order rounding plus the ~1e-6 fast_cos error:
                // per-element agreement to 5e-6.  Score-level parity (the
                // engine's contract) is tighter because independent element
                // errors average out in the cosine — tests/batch_parity.rs
                // pins that at 1e-6.
                assert!((a - b).abs() < 5e-6, "sample {i} dim {d}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fast_cos_tracks_libm_over_the_projection_range() {
        // Sweep the range RBF projections occupy (|x| up to ~100) plus the
        // reduction boundaries around multiples of TAU.
        let mut worst = 0.0f32;
        let mut x = -100.0f32;
        while x <= 100.0 {
            let err = (fast_cos(x) - (x as f64).cos() as f32).abs();
            worst = worst.max(err);
            x += 0.001;
        }
        assert!(worst < 1e-6, "worst fast_cos error {worst}");
    }

    #[test]
    fn transpose_stays_in_sync_after_regeneration() {
        let mut e = RbfEncoder::new(5, 48, 23).unwrap();
        e.regenerate_dimensions(&[0, 7, 47, 7]).unwrap();
        for d in 0..48 {
            for f in 0..5 {
                assert_eq!(e.bases_t[f * 48 + d], e.bases[d * 5 + f], "d={d} f={f}");
            }
        }
    }

    #[test]
    fn base_row_access_is_bounds_checked() {
        let e = RbfEncoder::new(3, 4, 0).unwrap();
        assert_eq!(e.base_row(0).unwrap().len(), 3);
        assert!(e.base_row(4).is_err());
    }

    #[test]
    fn base_entries_follow_requested_sigma() {
        let e = RbfEncoder::with_sigma(64, 512, 2.0, 21).unwrap();
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let n = (512 * 64) as f64;
        for d in 0..512 {
            for &b in e.base_row(d).unwrap() {
                sum += b as f64;
                sum_sq += (b as f64) * (b as f64);
            }
        }
        let mean = sum / n;
        let var = sum_sq / n - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "variance {var} should be close to sigma^2 = 4");
    }
}

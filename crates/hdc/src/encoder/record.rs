//! Record-based encoding.
//!
//! A second widespread static HDC encoder: every feature is represented by a
//! random *projection hypervector*, scaled by the (normalized) feature value,
//! and the per-feature contributions are bundled:
//!
//! ```text
//! H(x) = Σ_f  x_f · P_f
//! ```
//!
//! This is a linear random projection (a Johnson–Lindenstrauss style sketch)
//! — cheap and fully parallel, but unable to capture nonlinear feature
//! interactions, which is why the paper prefers the RBF encoder for
//! cyber-security data.  It is included as a static baseline and as the
//! linear counterpart for ablation studies.

use crate::batch::BatchView;
use crate::codec::{CodecError, CodecResult, Reader, Writer};
use crate::encoder::Encoder;
use crate::rng::HdcRng;
use crate::{HdcError, Result};
use serde::{Deserialize, Serialize};

/// Static record-based (linear random projection) encoder.
///
/// # Example
///
/// ```
/// use hdc::encoder::{Encoder, RecordEncoder};
///
/// # fn main() -> Result<(), hdc::HdcError> {
/// let encoder = RecordEncoder::new(3, 128, 1)?;
/// let h = encoder.encode(&[0.5, -0.5, 1.0])?;
/// assert_eq!(h.dim(), 128);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecordEncoder {
    /// Row-major projection matrix: `features` rows of `dim` bipolar entries.
    projections: Vec<f32>,
    features: usize,
    dim: usize,
}

impl RecordEncoder {
    /// Creates a record encoder with bipolar (±1) projection hypervectors.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `features` or `dim` is zero.
    pub fn new(features: usize, dim: usize, seed: u64) -> Result<Self> {
        if features == 0 {
            return Err(HdcError::InvalidArgument("features must be non-zero".into()));
        }
        if dim == 0 {
            return Err(HdcError::InvalidArgument("dim must be non-zero".into()));
        }
        let mut rng = HdcRng::seed_from(seed);
        let mut projections = vec![0.0f32; features * dim];
        for v in projections.iter_mut() {
            *v = rng.sign() as f32;
        }
        Ok(Self { projections, features, dim })
    }

    fn projection_row(&self, f: usize) -> &[f32] {
        &self.projections[f * self.dim..(f + 1) * self.dim]
    }

    /// Persists the encoder through the artifact codec.
    pub fn write_to(&self, w: &mut Writer) {
        w.usize(self.features);
        w.usize(self.dim);
        w.f32_slice(&self.projections);
    }

    /// Reads an encoder persisted by [`RecordEncoder::write_to`], bit-exact.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a truncated stream or inconsistent shapes.
    pub fn read_from(r: &mut Reader<'_>) -> CodecResult<Self> {
        let features = r.usize()?;
        let dim = r.usize()?;
        let projections = r.f32_vec()?;
        if features == 0 || dim == 0 || projections.len() != features * dim {
            return Err(CodecError::Invalid(format!(
                "record encoder shape mismatch: {} projections for features {features} x dim \
                 {dim}",
                projections.len()
            )));
        }
        Ok(Self { projections, features, dim })
    }
}

impl Encoder for RecordEncoder {
    fn input_features(&self) -> usize {
        self.features
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn encode_into(&self, features: &[f32], out: &mut [f32]) -> Result<()> {
        if features.len() != self.features {
            return Err(HdcError::FeatureMismatch {
                expected: self.features,
                actual: features.len(),
            });
        }
        if out.len() != self.dim {
            return Err(HdcError::DimensionMismatch { expected: self.dim, actual: out.len() });
        }
        out.fill(0.0);
        for (f, &value) in features.iter().enumerate() {
            if value == 0.0 {
                continue;
            }
            let row = self.projection_row(f);
            for d in 0..self.dim {
                out[d] += value * row[d];
            }
        }
        Ok(())
    }

    /// Blocked batch kernel: each projection row is streamed once per block
    /// of `RECORD_SAMPLE_BLOCK` samples instead of once per sample.  The
    /// accumulation order per output element (feature-major) matches
    /// [`Encoder::encode_into`] exactly, so results are bit-identical.
    fn encode_batch_into(&self, batch: BatchView<'_>, out: &mut [f32]) -> Result<()> {
        crate::encoder::check_batch_shape(self.features, self.dim, batch, out)?;
        for (block, tile) in batch
            .chunk_rows(RECORD_SAMPLE_BLOCK)
            .zip(out.chunks_mut(RECORD_SAMPLE_BLOCK * self.dim))
        {
            tile.fill(0.0);
            for f in 0..self.features {
                let row = self.projection_row(f);
                for (s, features) in block.iter_rows().enumerate() {
                    let value = features[f];
                    if value == 0.0 {
                        continue;
                    }
                    let out_row = &mut tile[s * self.dim..(s + 1) * self.dim];
                    for d in 0..self.dim {
                        out_row[d] += value * row[d];
                    }
                }
            }
        }
        Ok(())
    }
}

/// Samples per pass over the projection matrix in the blocked batch kernel
/// (see the sibling constant in `rbf.rs` for the rationale).
const RECORD_SAMPLE_BLOCK: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_arguments() {
        assert!(RecordEncoder::new(0, 8, 0).is_err());
        assert!(RecordEncoder::new(4, 0, 0).is_err());
        assert!(RecordEncoder::new(4, 8, 0).is_ok());
    }

    #[test]
    fn encoding_is_linear_in_the_input() {
        let e = RecordEncoder::new(3, 64, 2).unwrap();
        let a = e.encode(&[1.0, 0.0, 0.0]).unwrap();
        let b = e.encode(&[0.0, 2.0, 0.0]).unwrap();
        let combined = e.encode(&[1.0, 2.0, 0.0]).unwrap();
        let manual = a.bundle(&b).unwrap();
        for d in 0..64 {
            assert!((combined[d] - manual[d]).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_input_encodes_to_zero_vector() {
        let e = RecordEncoder::new(4, 32, 3).unwrap();
        let h = e.encode(&[0.0; 4]).unwrap();
        assert_eq!(h.norm(), 0.0);
    }

    #[test]
    fn feature_mismatch_is_reported() {
        let e = RecordEncoder::new(4, 32, 3).unwrap();
        assert!(matches!(
            e.encode(&[1.0, 2.0]),
            Err(HdcError::FeatureMismatch { expected: 4, actual: 2 })
        ));
    }

    #[test]
    fn random_projection_approximately_preserves_angles() {
        let e = RecordEncoder::new(16, 8192, 5).unwrap();
        let x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin()).collect();
        let y: Vec<f32> = (0..16).map(|i| (i as f32 * 0.11).cos()).collect();
        let input_cos = crate::similarity::cosine(&x, &y);
        let hx = e.encode(&x).unwrap();
        let hy = e.encode(&y).unwrap();
        let output_cos = hx.cosine(&hy).unwrap();
        assert!(
            (input_cos - output_cos).abs() < 0.1,
            "JL property: input {input_cos} vs output {output_cos}"
        );
    }

    #[test]
    fn encoding_is_deterministic_across_identical_seeds() {
        let a = RecordEncoder::new(6, 256, 9).unwrap();
        let b = RecordEncoder::new(6, 256, 9).unwrap();
        let x = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
        assert_eq!(a.encode(&x).unwrap(), b.encode(&x).unwrap());
    }

    #[test]
    fn persistence_round_trips_bit_exactly() {
        let e = RecordEncoder::new(5, 48, 77).unwrap();
        let mut w = Writer::new();
        e.write_to(&mut w);
        let bytes = w.into_bytes();
        let back = RecordEncoder::read_from(&mut Reader::new(&bytes)).unwrap();
        let x = [0.3f32, -0.2, 0.0, 1.5, 0.7];
        assert_eq!(back.encode(&x).unwrap(), e.encode(&x).unwrap());
        assert!(RecordEncoder::read_from(&mut Reader::new(&bytes[..8])).is_err());
    }
}

//! Encoders from low-dimensional feature vectors into hyperspace.
//!
//! Step (A) of the CyberHD workflow maps every pre-processed network-flow
//! feature vector (41–78 real-valued features after one-hot expansion and
//! normalization) into a `D`-dimensional hypervector.  Three encoders are
//! provided:
//!
//! * [`RbfEncoder`] — the nonlinear random-Fourier-feature encoder the paper
//!   uses for cyber-security data.  Its per-dimension Gaussian base vectors
//!   are what CyberHD *regenerates* when a dimension is found insignificant.
//! * [`IdLevelEncoder`] — the classic ID–level (position × quantized value)
//!   encoder used by many earlier HDC systems; provided as a static-encoder
//!   baseline and for completeness.
//! * [`RecordEncoder`] — record-based encoding (bind feature-ID hypervectors
//!   with level hypervectors, then bundle), the other widespread static
//!   scheme.
//!
//! All encoders implement the object-safe [`Encoder`] trait so the trainer
//! can be written once and parameterized by encoder.

mod id_level;
mod rbf;
mod record;
mod symbolic;

pub use id_level::IdLevelEncoder;
pub use rbf::RbfEncoder;
pub use record::RecordEncoder;
pub use symbolic::{ItemMemory, NGramEncoder, SymbolRecordEncoder};

use crate::batch::BatchView;
use crate::dense::Hypervector;
use crate::{HdcError, Result};

/// A mapping from feature vectors to hypervectors.
///
/// Implementations must be deterministic: encoding the same features twice
/// (without regeneration in between) yields the same hypervector.
///
/// The primitive operation is [`Encoder::encode_into`], which writes into a
/// caller-provided buffer; [`Encoder::encode`] and the batch entry points
/// are layered on top of it, so the hot batched path performs **zero
/// per-sample allocations**.
pub trait Encoder: Send + Sync {
    /// Number of input features expected by [`Encoder::encode`].
    fn input_features(&self) -> usize;

    /// Dimensionality of the produced hypervectors.
    fn output_dim(&self) -> usize;

    /// Encodes one feature vector into the caller-provided buffer `out`
    /// (length [`Encoder::output_dim`]), allocating nothing.
    ///
    /// # Errors
    ///
    /// Returns [`crate::HdcError::FeatureMismatch`] if `features.len()` does
    /// not match [`Encoder::input_features`] and
    /// [`crate::HdcError::DimensionMismatch`] if `out.len()` does not match
    /// [`Encoder::output_dim`].
    fn encode_into(&self, features: &[f32], out: &mut [f32]) -> Result<()>;

    /// Encodes one feature vector into a freshly allocated hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`crate::HdcError::FeatureMismatch`] if `features.len()` does
    /// not match [`Encoder::input_features`].
    fn encode(&self, features: &[f32]) -> Result<Hypervector> {
        let mut out = vec![0.0f32; self.output_dim()];
        self.encode_into(features, &mut out)?;
        Ok(Hypervector::from_vec(out))
    }

    /// Encodes a row-major batch view into a row-major `rows × dim` matrix
    /// (`out.len() == batch.rows() * output_dim()`), with zero per-sample
    /// allocation.
    ///
    /// The default implementation maps [`Encoder::encode_into`] over the
    /// rows; encoders with a cache-blocked batched kernel override it (the
    /// overrides must produce bit-identical outputs).
    ///
    /// # Errors
    ///
    /// Returns [`crate::HdcError::DimensionMismatch`] if `out` has the wrong
    /// length and [`crate::HdcError::FeatureMismatch`] if the view's row
    /// width is not [`Encoder::input_features`].
    fn encode_batch_into(&self, batch: BatchView<'_>, out: &mut [f32]) -> Result<()> {
        let dim = self.output_dim();
        check_batch_shape(self.input_features(), dim, batch, out)?;
        for (features, row) in batch.iter_rows().zip(out.chunks_exact_mut(dim)) {
            self.encode_into(features, row)?;
        }
        Ok(())
    }

    /// Encodes a batch view.
    ///
    /// One allocation for the whole batch; see [`Encoder::encode_batch_into`]
    /// for the allocation-free form.
    ///
    /// # Errors
    ///
    /// Returns the first encoding error encountered.
    fn encode_batch(&self, batch: BatchView<'_>) -> Result<Vec<Hypervector>> {
        let dim = self.output_dim();
        let mut matrix = vec![0.0f32; batch.rows() * dim];
        self.encode_batch_into(batch, &mut matrix)?;
        Ok(matrix.chunks_exact(dim).map(|row| Hypervector::from_vec(row.to_vec())).collect())
    }

    /// Encodes a batch straight to packed **1-bit sign vectors**: bit `d` of
    /// row `i` is set iff the encoded value `h_d(x_i) >= 0` — exactly the
    /// level signs of a `BitWidth::B1` quantization of the encoding.
    ///
    /// `words` is a row-major matrix of
    /// `batch.rows() × `[`crate::binary::words_for_dim`]`(output_dim())`
    /// words; `zero_rows[i]` is set iff every encoded value of row `i` was
    /// exactly `0.0` (the serial 1-bit path quantizes such a row to all-zero
    /// levels rather than all-plus signs, and scoring needs to know).
    ///
    /// The default implementation encodes through
    /// [`Encoder::encode_batch_into`] and thresholds, so it is bit-exact
    /// with encode-then-quantize by construction; encoders with a fused
    /// kernel (the RBF encoder reduces the cosine to a quadrant test and
    /// never materializes the f32 row) override it and must preserve that
    /// bit-exactness.
    ///
    /// # Errors
    ///
    /// Returns [`crate::HdcError::DimensionMismatch`] if `words` or
    /// `zero_rows` has the wrong length and
    /// [`crate::HdcError::FeatureMismatch`] if the view's row width is not
    /// [`Encoder::input_features`].
    fn encode_signs_into(
        &self,
        batch: BatchView<'_>,
        words: &mut [u64],
        zero_rows: &mut [bool],
    ) -> Result<()> {
        let dim = self.output_dim();
        check_sign_batch_shape(self.input_features(), dim, batch, words, zero_rows)?;
        let mut matrix = vec![0.0f32; batch.rows() * dim];
        self.encode_batch_into(batch, &mut matrix)?;
        let words_per_row = crate::binary::words_for_dim(dim);
        for ((row, word_row), zero) in matrix
            .chunks_exact(dim)
            .zip(words.chunks_exact_mut(words_per_row))
            .zip(zero_rows.iter_mut())
        {
            *zero = crate::binary::pack_f32_signs_checked(row, word_row);
        }
        Ok(())
    }
}

/// Validates the shapes of a sign-encoding call: the view's row width is
/// `features`, `words` holds `batch.rows() * words_for_dim(dim)` words and
/// `zero_rows` has one flag per row.
///
/// # Errors
///
/// Returns [`HdcError::DimensionMismatch`] / [`HdcError::FeatureMismatch`]
/// accordingly.
pub(crate) fn check_sign_batch_shape(
    features: usize,
    dim: usize,
    batch: BatchView<'_>,
    words: &[u64],
    zero_rows: &[bool],
) -> Result<()> {
    let expected_words = batch.rows() * crate::binary::words_for_dim(dim);
    if words.len() != expected_words {
        return Err(HdcError::DimensionMismatch { expected: expected_words, actual: words.len() });
    }
    if zero_rows.len() != batch.rows() {
        return Err(HdcError::DimensionMismatch {
            expected: batch.rows(),
            actual: zero_rows.len(),
        });
    }
    if batch.width() != features {
        return Err(HdcError::FeatureMismatch { expected: features, actual: batch.width() });
    }
    Ok(())
}

/// Validates the shapes of a batch-encoding call: the view's row width is
/// `features` and `out` holds exactly `batch.rows() * dim` elements.
///
/// # Errors
///
/// Returns [`HdcError::DimensionMismatch`] / [`HdcError::FeatureMismatch`]
/// accordingly; encoders call this before entering their (infallible)
/// batched kernels.
pub(crate) fn check_batch_shape(
    features: usize,
    dim: usize,
    batch: BatchView<'_>,
    out: &[f32],
) -> Result<()> {
    if out.len() != batch.rows() * dim {
        return Err(HdcError::DimensionMismatch {
            expected: batch.rows() * dim,
            actual: out.len(),
        });
    }
    if batch.width() != features {
        return Err(HdcError::FeatureMismatch { expected: features, actual: batch.width() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_trait_is_object_safe() {
        fn takes_dyn(_e: &dyn Encoder) {}
        let e = RbfEncoder::new(3, 16, 0).unwrap();
        takes_dyn(&e);
    }

    #[test]
    fn default_batch_encoding_matches_single_encoding() {
        // IdLevel uses the default row-by-row batch path: exact equality.
        let e = IdLevelEncoder::new(2, 32, 8, 1).unwrap();
        let data = [0.1f32, 0.2, 0.5, 0.9];
        let batch = BatchView::new(&data, 2).unwrap();
        let encoded = e.encode_batch(batch).unwrap();
        assert_eq!(encoded.len(), 2);
        assert_eq!(encoded[0], e.encode(batch.row(0)).unwrap());
        assert_eq!(encoded[1], e.encode(batch.row(1)).unwrap());

        // The RBF override trades bit-identity for the tiled kernel:
        // agreement to float rounding.
        let e = RbfEncoder::new(2, 32, 1).unwrap();
        let data = [0.1f32, 0.2, -0.5, 0.9];
        let batch = BatchView::new(&data, 2).unwrap();
        let encoded = e.encode_batch(batch).unwrap();
        for (row, features) in encoded.iter().zip(batch.iter_rows()) {
            let reference = e.encode(features).unwrap();
            for (a, b) in row.iter().zip(reference.iter()) {
                assert!((a - b).abs() < 5e-6);
            }
        }
    }

    #[test]
    fn encode_into_matches_encode_for_every_encoder() {
        let encoders: Vec<Box<dyn Encoder>> = vec![
            Box::new(RbfEncoder::new(3, 64, 2).unwrap()),
            Box::new(IdLevelEncoder::new(3, 64, 8, 2).unwrap()),
            Box::new(RecordEncoder::new(3, 64, 2).unwrap()),
        ];
        let x = [0.25, -0.5, 0.75];
        for e in &encoders {
            let fresh = e.encode(&x).unwrap();
            let mut buf = vec![f32::NAN; 64];
            e.encode_into(&x, &mut buf).unwrap();
            assert_eq!(buf.as_slice(), fresh.as_slice());
        }
    }

    #[test]
    fn encode_into_validates_both_shapes() {
        let e = RbfEncoder::new(3, 16, 0).unwrap();
        let mut buf = vec![0.0f32; 16];
        assert!(matches!(
            e.encode_into(&[1.0], &mut buf),
            Err(crate::HdcError::FeatureMismatch { .. })
        ));
        let mut short = vec![0.0f32; 15];
        assert!(matches!(
            e.encode_into(&[1.0, 2.0, 3.0], &mut short),
            Err(crate::HdcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn encode_batch_into_writes_the_row_major_matrix() {
        let e = RecordEncoder::new(2, 8, 5).unwrap();
        let data = [0.5f32, -1.0, 1.0, 0.0, 0.0, 2.0];
        let batch = BatchView::new(&data, 2).unwrap();
        let mut matrix = vec![f32::NAN; 3 * 8];
        e.encode_batch_into(batch, &mut matrix).unwrap();
        for (i, row) in matrix.chunks_exact(8).enumerate() {
            assert_eq!(row, e.encode(batch.row(i)).unwrap().as_slice());
        }
        // Shape validation happens before any work.
        let mut wrong = vec![0.0f32; 5];
        assert!(e.encode_batch_into(batch, &mut wrong).is_err());
        // A view whose row width is not the encoder arity is rejected.
        let narrow = BatchView::new(&data, 3).unwrap();
        let mut buf = vec![0.0f32; 2 * 8];
        assert!(matches!(
            e.encode_batch_into(narrow, &mut buf),
            Err(crate::HdcError::FeatureMismatch { expected: 2, actual: 3 })
        ));
    }
}

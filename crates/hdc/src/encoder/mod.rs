//! Encoders from low-dimensional feature vectors into hyperspace.
//!
//! Step (A) of the CyberHD workflow maps every pre-processed network-flow
//! feature vector (41–78 real-valued features after one-hot expansion and
//! normalization) into a `D`-dimensional hypervector.  Three encoders are
//! provided:
//!
//! * [`RbfEncoder`] — the nonlinear random-Fourier-feature encoder the paper
//!   uses for cyber-security data.  Its per-dimension Gaussian base vectors
//!   are what CyberHD *regenerates* when a dimension is found insignificant.
//! * [`IdLevelEncoder`] — the classic ID–level (position × quantized value)
//!   encoder used by many earlier HDC systems; provided as a static-encoder
//!   baseline and for completeness.
//! * [`RecordEncoder`] — record-based encoding (bind feature-ID hypervectors
//!   with level hypervectors, then bundle), the other widespread static
//!   scheme.
//!
//! All encoders implement the object-safe [`Encoder`] trait so the trainer
//! can be written once and parameterized by encoder.

mod id_level;
mod rbf;
mod record;

pub use id_level::IdLevelEncoder;
pub use rbf::RbfEncoder;
pub use record::RecordEncoder;

use crate::dense::Hypervector;
use crate::Result;

/// A mapping from feature vectors to hypervectors.
///
/// Implementations must be deterministic: encoding the same features twice
/// (without regeneration in between) yields the same hypervector.
pub trait Encoder: Send + Sync {
    /// Number of input features expected by [`Encoder::encode`].
    fn input_features(&self) -> usize;

    /// Dimensionality of the produced hypervectors.
    fn output_dim(&self) -> usize;

    /// Encodes one feature vector into a hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`crate::HdcError::FeatureMismatch`] if `features.len()` does
    /// not match [`Encoder::input_features`].
    fn encode(&self, features: &[f32]) -> Result<Hypervector>;

    /// Encodes a batch of feature vectors.
    ///
    /// The default implementation simply maps [`Encoder::encode`] over the
    /// batch; encoders with a cheaper batched path may override it.
    ///
    /// # Errors
    ///
    /// Returns the first encoding error encountered.
    fn encode_batch(&self, batch: &[Vec<f32>]) -> Result<Vec<Hypervector>> {
        batch.iter().map(|f| self.encode(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_trait_is_object_safe() {
        fn takes_dyn(_e: &dyn Encoder) {}
        let e = RbfEncoder::new(3, 16, 0).unwrap();
        takes_dyn(&e);
    }

    #[test]
    fn default_batch_encoding_matches_single_encoding() {
        let e = RbfEncoder::new(2, 32, 1).unwrap();
        let batch = vec![vec![0.1, 0.2], vec![-0.5, 0.9]];
        let encoded = e.encode_batch(&batch).unwrap();
        assert_eq!(encoded.len(), 2);
        assert_eq!(encoded[0], e.encode(&batch[0]).unwrap());
        assert_eq!(encoded[1], e.encode(&batch[1]).unwrap());
    }
}

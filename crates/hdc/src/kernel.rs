//! Runtime-dispatched SIMD kernels.
//!
//! Every hot loop in the crate funnels through one of the four kernel
//! families in this module:
//!
//! 1. **XOR + popcount Hamming** over packed `u64` words (and its
//!    `count_ones` sibling) — the 1-bit scoring path,
//! 2. the **tiled dot-product** (`dot_accumulate`/`dot_reduce`/[`Kernels::dot`])
//!    behind cosine scoring and the interleaved multi-class kernel of
//!    [`crate::memory::AssociativeMemory`],
//! 3. the element-wise **axpy** (`out[i] += scale * x[i]`) at the heart of
//!    the tiled RBF batch encode and bundling,
//! 4. the fused **sign quadrant test** that packs RBF projections straight
//!    to 1-bit words ([`crate::encoder::Encoder::encode_signs_into`]).
//!
//! # Dispatch
//!
//! [`Kernels::active`] probes the CPU **once per process** (cached in a
//! `OnceLock`): on x86_64 it prefers AVX-512 (F + BW) over AVX2 + FMA, on
//! aarch64 it uses NEON, and every other machine — or any process started
//! with `CYBERHD_FORCE_SCALAR=1` — runs the portable scalar path, which is
//! bit-for-bit the code the crate shipped before this module existed.
//! [`Kernels::scalar`] pins the fallback explicitly and
//! [`Kernels::available`] enumerates every path the host can run, which is
//! what the parity suite iterates over.
//!
//! # Determinism contract
//!
//! * **Integer kernels** ([`Kernels::hamming_distance`],
//!   [`Kernels::count_ones`], [`Kernels::sign_pack_word`],
//!   [`Kernels::sign_quadrant_word`]) are **bit-exact across every dispatch
//!   path** — they compute exact integer/bit results.
//! * **Element-wise f32 kernels** ([`Kernels::axpy`]) perform the same
//!   multiply and add per element on every path (no FMA contraction), so
//!   they are also bit-exact across paths.
//! * **Reduction kernels** ([`Kernels::dot`] and the
//!   `dot_accumulate`/`dot_reduce` pair) fix the accumulation order *per
//!   path*: results are deterministic for a given path but may differ
//!   between paths at float-rounding level, because wider lanes
//!   reassociate the sum.  The scalar path keeps the crate's historical
//!   four-accumulator order.
//!
//! `tests/kernel_parity.rs` pins both halves of the contract on every path
//! the host exposes.

use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86;

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon;

/// Number of scalar `f32` lanes in a [`DotBank`].
///
/// Sized for the widest path (AVX-512 uses two 16-lane vector accumulators);
/// narrower paths use a prefix of the bank and leave the rest at zero.
pub const DOT_BANK_LANES: usize = 32;

/// Partial-sum bank for the tiled dot kernels.
///
/// A bank carries the running vector accumulators of one dot product across
/// tile boundaries: callers zero-initialize it (via [`DotBank::new`]), feed
/// whole tiles through [`Kernels::dot_accumulate`] and collapse it with
/// [`Kernels::dot_reduce`].  Accumulating a stream tile-by-tile is
/// bit-identical to accumulating it in one call, because tile boundaries
/// are required to be multiples of [`Kernels::dot_step`].
#[derive(Clone, Copy, Debug)]
pub struct DotBank {
    lanes: [f32; DOT_BANK_LANES],
}

impl DotBank {
    /// A zeroed bank, ready to accumulate.
    pub fn new() -> Self {
        Self { lanes: [0.0; DOT_BANK_LANES] }
    }
}

impl Default for DotBank {
    fn default() -> Self {
        Self::new()
    }
}

/// A dispatch table of SIMD kernel implementations for one ISA path.
///
/// Obtained via [`Kernels::active`] (runtime-detected best path),
/// [`Kernels::scalar`] (portable fallback) or [`Kernels::available`]
/// (every path this host can run).  All methods validate their shape
/// preconditions with real assertions, so the table is safe to use with
/// arbitrary slice lengths.
pub struct Kernels {
    isa: &'static str,
    dot_step: usize,
    dot_accumulate: fn(&mut [f32; DOT_BANK_LANES], &[f32], &[f32]),
    dot_reduce: fn(&[f32; DOT_BANK_LANES]) -> f32,
    axpy: fn(&mut [f32], f32, &[f32]),
    hamming: fn(&[u64], &[u64]) -> usize,
    count_ones: fn(&[u64]) -> usize,
    sign_quadrant_word: fn(&[f32], f32) -> (u64, u64),
    sign_pack_word: fn(&[f32]) -> u64,
}

static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();

static SCALAR: Kernels = Kernels {
    isa: "scalar",
    dot_step: 4,
    dot_accumulate: dot_accumulate_scalar,
    dot_reduce: dot_reduce_scalar,
    axpy: axpy_scalar,
    hamming: hamming_scalar,
    count_ones: count_ones_scalar,
    sign_quadrant_word: sign_quadrant_word_scalar,
    sign_pack_word: sign_pack_word_scalar,
};

impl Kernels {
    /// The dispatch table selected for this process.
    ///
    /// Detection runs once and is cached; every call returns the same
    /// table, so all kernel users inside one process share one path (which
    /// is what keeps in-process bit-identity contracts — interleaved vs
    /// serial dots, fused vs two-pass sign encode — intact).  Setting
    /// `CYBERHD_FORCE_SCALAR` to anything non-empty other than `0` before
    /// first use pins the scalar fallback.
    pub fn active() -> &'static Kernels {
        ACTIVE.get_or_init(|| {
            if force_scalar(std::env::var("CYBERHD_FORCE_SCALAR").ok().as_deref()) {
                return &SCALAR;
            }
            detect()
        })
    }

    /// The portable scalar table — the exact pre-SIMD code of this crate.
    pub fn scalar() -> &'static Kernels {
        &SCALAR
    }

    /// Every dispatch table the current host can execute, scalar first.
    ///
    /// The parity suite iterates this to compare each SIMD path against
    /// scalar on the same machine.
    pub fn available() -> Vec<&'static Kernels> {
        #[allow(unused_mut)]
        let mut paths = vec![&SCALAR];
        #[cfg(target_arch = "x86_64")]
        {
            if x86::avx2_supported() {
                paths.push(&x86::AVX2);
            }
            if x86::avx512_supported() {
                paths.push(&x86::AVX512);
            }
            if x86::avx512_vpopcnt_supported() {
                paths.push(&x86::AVX512_VPOPCNT);
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if neon::supported() {
                paths.push(&neon::NEON);
            }
        }
        paths
    }

    /// Name of this table's ISA path: `"scalar"`, `"avx2"`, `"avx512"`,
    /// `"avx512vpopcnt"` (AVX-512 with native 64-bit lane popcount for the
    /// Hamming/count kernels) or `"neon"`.
    pub fn isa(&self) -> &'static str {
        self.isa
    }

    /// Accumulation granularity of the dot kernels, in `f32` elements.
    ///
    /// [`Kernels::dot_accumulate`] only accepts slice lengths that are
    /// multiples of this step; [`Kernels::dot`] handles ragged tails
    /// itself.  Tiled callers must align tile boundaries to it so split
    /// accumulation stays bit-identical to one pass.
    pub fn dot_step(&self) -> usize {
        self.dot_step
    }

    /// Accumulates `a[i] * b[i]` partial sums into `bank`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or the length is not a
    /// multiple of [`Kernels::dot_step`].
    pub fn dot_accumulate(&self, bank: &mut DotBank, a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len(), "dot_accumulate of slices of different length");
        assert_eq!(
            a.len() % self.dot_step,
            0,
            "dot_accumulate length must be a multiple of dot_step ({})",
            self.dot_step
        );
        (self.dot_accumulate)(&mut bank.lanes, a, b);
    }

    /// Collapses a bank of partial sums in this path's fixed order.
    pub fn dot_reduce(&self, bank: &DotBank) -> f32 {
        (self.dot_reduce)(&bank.lanes)
    }

    /// Dot product of two equally sized slices: whole-`dot_step` prefix via
    /// the vector accumulators, then a serial scalar tail.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot product of slices of different length");
        let main = (a.len() / self.dot_step) * self.dot_step;
        let mut bank = DotBank::new();
        (self.dot_accumulate)(&mut bank.lanes, &a[..main], &b[..main]);
        let mut acc = (self.dot_reduce)(&bank.lanes);
        for i in main..a.len() {
            acc += a[i] * b[i];
        }
        acc
    }

    /// Element-wise `out[i] += scale * x[i]`.
    ///
    /// Every path performs exactly one multiply and one add per element (no
    /// FMA contraction), so the result is bit-exact across paths.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn axpy(&self, out: &mut [f32], scale: f32, x: &[f32]) {
        assert_eq!(out.len(), x.len(), "axpy of slices of different length");
        (self.axpy)(out, scale, x);
    }

    /// Hamming distance between two equally sized `u64` word slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn hamming_distance(&self, a: &[u64], b: &[u64]) -> usize {
        assert_eq!(a.len(), b.len(), "hamming distance of slices of different length");
        (self.hamming)(a, b)
    }

    /// Total set bits across a `u64` word slice.
    pub fn count_ones(&self, words: &[u64]) -> usize {
        (self.count_ones)(words)
    }

    /// Fused quadrant test for one output word of the 1-bit sign encode.
    ///
    /// For each element `v` of `chunk` (up to 64 of them), computes
    /// `a = |reduce_to_pi(v)|` and returns two packed words: bit `i` of the
    /// first is `a <= π/2` (the sign of `cos v` outside the guard band) and
    /// bit `i` of the second flags `| a − π/2 | < guard` (callers re-check
    /// those rare boundary elements with the exact polynomial).  Bits at and
    /// above `chunk.len()` are zero.  Bit-exact across paths: the scalar
    /// and SIMD range reductions perform identical IEEE operations,
    /// including ties-to-even rounding.
    ///
    /// # Panics
    ///
    /// Panics if `chunk.len() > 64`.
    pub fn sign_quadrant_word(&self, chunk: &[f32], guard: f32) -> (u64, u64) {
        assert!(chunk.len() <= 64, "sign_quadrant_word chunk wider than one u64");
        (self.sign_quadrant_word)(chunk, guard)
    }

    /// Packs `chunk[i] >= 0.0` into bit `i` of one `u64` (up to 64
    /// elements; higher bits stay zero).  Bit-exact across paths.
    ///
    /// # Panics
    ///
    /// Panics if `chunk.len() > 64`.
    pub fn sign_pack_word(&self, chunk: &[f32]) -> u64 {
        assert!(chunk.len() <= 64, "sign_pack_word chunk wider than one u64");
        (self.sign_pack_word)(chunk)
    }
}

/// Convenience alias for [`Kernels::active`].
pub fn active() -> &'static Kernels {
    Kernels::active()
}

fn detect() -> &'static Kernels {
    #[cfg(target_arch = "x86_64")]
    {
        if x86::avx512_vpopcnt_supported() {
            return &x86::AVX512_VPOPCNT;
        }
        if x86::avx512_supported() {
            return &x86::AVX512;
        }
        if x86::avx2_supported() {
            return &x86::AVX2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if neon::supported() {
            return &neon::NEON;
        }
    }
    &SCALAR
}

fn force_scalar(value: Option<&str>) -> bool {
    matches!(value, Some(v) if !v.is_empty() && v != "0")
}

// ---------------------------------------------------------------------------
// Range reduction shared by the scalar and SIMD sign kernels (and fast_cos).
// ---------------------------------------------------------------------------

const INV_TAU: f32 = 1.0 / std::f32::consts::TAU;
// TAU split into an exactly representable head and a tail, so `k * C1` is
// exact for the small wrap counts that occur and the reduction error stays
// at f32 rounding level instead of growing with |x|.
const REDUCE_C1: f32 = 6.281_25;
const REDUCE_C2: f32 = 1.935_307_2e-3;

/// Two-step Cody–Waite range reduction of `x` to `r ∈ [-π, π]` (modulo 2π).
///
/// Shared by the RBF encoder's `fast_cos` and the fused sign kernels so
/// both see bit-identical reduced arguments.  The wrap count rounds
/// **ties-to-even** — the mode hardware SIMD round instructions implement —
/// which is what keeps the SIMD quadrant test bit-exact against this
/// scalar form.
#[inline]
pub fn reduce_to_pi(x: f32) -> f32 {
    let k = (x * INV_TAU).round_ties_even();
    (x - k * REDUCE_C1) - k * REDUCE_C2
}

// ---------------------------------------------------------------------------
// Scalar path: bit-for-bit the loops the crate shipped before this module.
// ---------------------------------------------------------------------------

fn dot_accumulate_scalar(lanes: &mut [f32; DOT_BANK_LANES], a: &[f32], b: &[f32]) {
    debug_assert_eq!(a.len() % 4, 0);
    // Four-way unrolled accumulation: the historical `similarity::dot`
    // shape — keeps dependent additions short and gives the
    // auto-vectorizer an easy pattern.
    let [mut a0, mut a1, mut a2, mut a3] = [lanes[0], lanes[1], lanes[2], lanes[3]];
    for (q, c) in a.chunks_exact(4).zip(b.chunks_exact(4)) {
        a0 += q[0] * c[0];
        a1 += q[1] * c[1];
        a2 += q[2] * c[2];
        a3 += q[3] * c[3];
    }
    lanes[0] = a0;
    lanes[1] = a1;
    lanes[2] = a2;
    lanes[3] = a3;
}

fn dot_reduce_scalar(lanes: &[f32; DOT_BANK_LANES]) -> f32 {
    lanes[0] + lanes[1] + lanes[2] + lanes[3]
}

fn axpy_scalar(out: &mut [f32], scale: f32, x: &[f32]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o += scale * v;
    }
}

fn hamming_scalar(a: &[u64], b: &[u64]) -> usize {
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones() as usize).sum()
}

fn count_ones_scalar(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

fn sign_quadrant_word_scalar(chunk: &[f32], guard: f32) -> (u64, u64) {
    let mut word = 0u64;
    let mut band = 0u64;
    for (bit, &v) in chunk.iter().enumerate() {
        let a = reduce_to_pi(v).abs();
        word |= ((a <= std::f32::consts::FRAC_PI_2) as u64) << bit;
        band |= (((a - std::f32::consts::FRAC_PI_2).abs() < guard) as u64) << bit;
    }
    (word, band)
}

fn sign_pack_word_scalar(chunk: &[f32]) -> u64 {
    let mut word = 0u64;
    for (bit, &v) in chunk.iter().enumerate() {
        word |= ((v >= 0.0) as u64) << bit;
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_parses_common_truthy_values() {
        assert!(!force_scalar(None));
        assert!(!force_scalar(Some("")));
        assert!(!force_scalar(Some("0")));
        assert!(force_scalar(Some("1")));
        assert!(force_scalar(Some("true")));
        assert!(force_scalar(Some("yes")));
    }

    #[test]
    fn active_is_cached_and_listed_as_available() {
        let active = Kernels::active();
        assert!(std::ptr::eq(active, Kernels::active()));
        assert!(
            Kernels::available().iter().any(|k| std::ptr::eq(*k, active)),
            "the active path {} must be among the available ones",
            active.isa()
        );
    }

    #[test]
    fn available_starts_with_scalar_and_steps_divide_evenly() {
        let paths = Kernels::available();
        assert!(std::ptr::eq(paths[0], Kernels::scalar()));
        for k in paths {
            // Tiled callers rely on their tile sizes (512 in memory.rs)
            // being multiples of every path's step.
            assert_eq!(512 % k.dot_step(), 0, "{} step {}", k.isa(), k.dot_step());
        }
    }

    #[test]
    fn scalar_dot_keeps_the_historical_accumulation_order() {
        // Reference: the pre-kernel `similarity::dot` loop, verbatim.
        fn seed_dot(a: &[f32], b: &[f32]) -> f32 {
            let (mut acc0, mut acc1, mut acc2, mut acc3) = (0.0f32, 0.0, 0.0, 0.0);
            let chunks = a.len() / 4;
            for i in 0..chunks {
                let base = i * 4;
                acc0 += a[base] * b[base];
                acc1 += a[base + 1] * b[base + 1];
                acc2 += a[base + 2] * b[base + 2];
                acc3 += a[base + 3] * b[base + 3];
            }
            let mut acc = acc0 + acc1 + acc2 + acc3;
            for i in chunks * 4..a.len() {
                acc += a[i] * b[i];
            }
            acc
        }
        let a: Vec<f32> = (0..137).map(|i| ((i * 37) as f32 * 0.313).sin() * 3.0).collect();
        let b: Vec<f32> = (0..137).map(|i| ((i * 61) as f32 * 0.173).cos() * 2.0).collect();
        for len in [0usize, 1, 3, 4, 5, 47, 48, 64, 137] {
            let k = Kernels::scalar();
            assert_eq!(
                k.dot(&a[..len], &b[..len]).to_bits(),
                seed_dot(&a[..len], &b[..len]).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn split_accumulation_is_bit_identical_to_one_pass() {
        let a: Vec<f32> = (0..1024).map(|i| ((i * 13) as f32 * 0.11).sin()).collect();
        let b: Vec<f32> = (0..1024).map(|i| ((i * 7) as f32 * 0.29).cos()).collect();
        for k in Kernels::available() {
            let step = k.dot_step();
            let mut one = DotBank::new();
            k.dot_accumulate(&mut one, &a, &b);
            let mut split = DotBank::new();
            // Tile at a few step-aligned boundaries.
            let cuts = [0, 2 * step, 512, 512 + step, 1024];
            for w in cuts.windows(2) {
                k.dot_accumulate(&mut split, &a[w[0]..w[1]], &b[w[0]..w[1]]);
            }
            assert_eq!(
                k.dot_reduce(&one).to_bits(),
                k.dot_reduce(&split).to_bits(),
                "{} split accumulation must match one pass",
                k.isa()
            );
        }
    }

    #[test]
    fn dot_accumulate_rejects_ragged_lengths() {
        for k in Kernels::available() {
            if k.dot_step() == 1 {
                continue;
            }
            let a = vec![1.0f32; k.dot_step() + 1];
            let result = std::panic::catch_unwind(|| {
                let mut bank = DotBank::new();
                k.dot_accumulate(&mut bank, &a, &a);
            });
            assert!(result.is_err(), "{} must reject ragged accumulate lengths", k.isa());
        }
    }

    #[test]
    fn reduce_to_pi_stays_in_range_and_preserves_cos() {
        let mut x = -50.0f32;
        while x <= 50.0 {
            let r = reduce_to_pi(x);
            assert!(r.abs() <= std::f32::consts::PI + 1e-3, "reduce({x}) = {r}");
            let err = ((r as f64).cos() - (x as f64).cos()).abs();
            assert!(err < 1e-5, "cos mismatch at {x}: {err}");
            x += 0.0173;
        }
    }
}

//! NEON dispatch table (aarch64).
//!
//! Safety model mirrors the x86 module: the `unsafe` `#[target_feature]`
//! bodies are reachable only through the table below, which
//! [`super::Kernels::active`] / [`super::Kernels::available`] hand out
//! strictly after `is_aarch64_feature_detected!("neon")` succeeds.
//!
//! The sign kernels stay on the (integer-bit-exact) scalar word builders:
//! their cost is dominated by the packed-bit assembly, and keeping the
//! table small limits the surface that cannot be compile-checked on x86
//! development hosts.

use super::{Kernels, DOT_BANK_LANES};
use std::arch::aarch64::*;

pub(super) fn supported() -> bool {
    std::arch::is_aarch64_feature_detected!("neon")
}

pub(super) static NEON: Kernels = Kernels {
    isa: "neon",
    dot_step: 16,
    dot_accumulate: dot_accumulate_neon,
    dot_reduce: dot_reduce_4x4,
    axpy: axpy_neon,
    hamming: hamming_neon,
    count_ones: count_ones_neon,
    sign_quadrant_word: super::sign_quadrant_word_scalar,
    sign_pack_word: super::sign_pack_word_scalar,
};

fn dot_accumulate_neon(lanes: &mut [f32; DOT_BANK_LANES], a: &[f32], b: &[f32]) {
    // SAFETY: the NEON table is only reachable after runtime detection.
    unsafe { dot_accumulate_neon_impl(lanes, a, b) }
}

/// Four 4-lane FMA accumulators, 16 elements per iteration.
#[target_feature(enable = "neon")]
unsafe fn dot_accumulate_neon_impl(lanes: &mut [f32; DOT_BANK_LANES], a: &[f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len() % 16, 0);
    let mut acc0 = vld1q_f32(lanes.as_ptr());
    let mut acc1 = vld1q_f32(lanes.as_ptr().add(4));
    let mut acc2 = vld1q_f32(lanes.as_ptr().add(8));
    let mut acc3 = vld1q_f32(lanes.as_ptr().add(12));
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    for i in 0..a.len() / 16 {
        let qa = pa.add(i * 16);
        let qb = pb.add(i * 16);
        acc0 = vfmaq_f32(acc0, vld1q_f32(qa), vld1q_f32(qb));
        acc1 = vfmaq_f32(acc1, vld1q_f32(qa.add(4)), vld1q_f32(qb.add(4)));
        acc2 = vfmaq_f32(acc2, vld1q_f32(qa.add(8)), vld1q_f32(qb.add(8)));
        acc3 = vfmaq_f32(acc3, vld1q_f32(qa.add(12)), vld1q_f32(qb.add(12)));
    }
    vst1q_f32(lanes.as_mut_ptr(), acc0);
    vst1q_f32(lanes.as_mut_ptr().add(4), acc1);
    vst1q_f32(lanes.as_mut_ptr().add(8), acc2);
    vst1q_f32(lanes.as_mut_ptr().add(12), acc3);
}

/// Fixed reduction order for the NEON bank: lane-wise combine of the four
/// vector accumulators, then a left-to-right sum of the 4 combined lanes.
fn dot_reduce_4x4(lanes: &[f32; DOT_BANK_LANES]) -> f32 {
    let mut acc = 0.0f32;
    for l in 0..4 {
        acc += (lanes[l] + lanes[4 + l]) + (lanes[8 + l] + lanes[12 + l]);
    }
    acc
}

fn axpy_neon(out: &mut [f32], scale: f32, x: &[f32]) {
    // SAFETY: the NEON table is only reachable after runtime detection.
    unsafe { axpy_neon_impl(out, scale, x) }
}

/// Element-wise mul + add (deliberately not `vfmaq`, so the result is
/// bit-exact against the scalar path).
#[target_feature(enable = "neon")]
unsafe fn axpy_neon_impl(out: &mut [f32], scale: f32, x: &[f32]) {
    debug_assert_eq!(out.len(), x.len());
    let s = vdupq_n_f32(scale);
    let n = out.len();
    let main = n - n % 4;
    let po = out.as_mut_ptr();
    let px = x.as_ptr();
    let mut i = 0usize;
    while i < main {
        let v = vaddq_f32(vld1q_f32(po.add(i)), vmulq_f32(s, vld1q_f32(px.add(i))));
        vst1q_f32(po.add(i), v);
        i += 4;
    }
    for j in main..n {
        out[j] += scale * x[j];
    }
}

fn hamming_neon(a: &[u64], b: &[u64]) -> usize {
    // SAFETY: the NEON table is only reachable after runtime detection.
    unsafe { hamming_neon_impl(a, b) }
}

#[target_feature(enable = "neon")]
unsafe fn hamming_neon_impl(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = vdupq_n_u64(0);
    let chunks = a.len() / 2;
    for i in 0..chunks {
        let va = vld1q_u64(a.as_ptr().add(i * 2));
        let vb = vld1q_u64(b.as_ptr().add(i * 2));
        let x = veorq_u64(va, vb);
        let cnt = vcntq_u8(vreinterpretq_u8_u64(x));
        acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt))));
    }
    let mut sum = (vgetq_lane_u64::<0>(acc) + vgetq_lane_u64::<1>(acc)) as usize;
    for i in chunks * 2..a.len() {
        sum += (a[i] ^ b[i]).count_ones() as usize;
    }
    sum
}

fn count_ones_neon(words: &[u64]) -> usize {
    // SAFETY: the NEON table is only reachable after runtime detection.
    unsafe { count_ones_neon_impl(words) }
}

#[target_feature(enable = "neon")]
unsafe fn count_ones_neon_impl(words: &[u64]) -> usize {
    let mut acc = vdupq_n_u64(0);
    let chunks = words.len() / 2;
    for i in 0..chunks {
        let v = vld1q_u64(words.as_ptr().add(i * 2));
        let cnt = vcntq_u8(vreinterpretq_u8_u64(v));
        acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt))));
    }
    let mut sum = (vgetq_lane_u64::<0>(acc) + vgetq_lane_u64::<1>(acc)) as usize;
    for w in &words[chunks * 2..] {
        sum += w.count_ones() as usize;
    }
    sum
}

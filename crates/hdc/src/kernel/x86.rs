//! AVX2 and AVX-512 dispatch tables (x86_64).
//!
//! Safety model: the `unsafe` `#[target_feature]` bodies in this file are
//! reachable only through the tables below, and those tables are handed
//! out exclusively by [`super::Kernels::active`] / [`super::Kernels::available`]
//! after `is_x86_feature_detected!` has confirmed the required features at
//! runtime.  The safe shims encapsulate that invariant; slice-shape
//! preconditions are enforced by the public `Kernels` methods before any
//! table function runs.

use super::{Kernels, DOT_BANK_LANES};
use std::arch::x86_64::*;

pub(super) fn avx2_supported() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

pub(super) fn avx512_supported() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512bw")
}

pub(super) fn avx512_vpopcnt_supported() -> bool {
    avx512_supported() && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
}

pub(super) static AVX2: Kernels = Kernels {
    isa: "avx2",
    dot_step: 32,
    dot_accumulate: dot_accumulate_avx2,
    dot_reduce: dot_reduce_8x4,
    axpy: axpy_avx2,
    hamming: hamming_avx2,
    count_ones: count_ones_avx2,
    sign_quadrant_word: sign_quadrant_word_avx2,
    sign_pack_word: sign_pack_word_avx2,
};

pub(super) static AVX512: Kernels = Kernels {
    isa: "avx512",
    dot_step: 32,
    dot_accumulate: dot_accumulate_avx512,
    dot_reduce: dot_reduce_16x2,
    axpy: axpy_avx512,
    hamming: hamming_avx512,
    count_ones: count_ones_avx512,
    sign_quadrant_word: sign_quadrant_word_avx512,
    sign_pack_word: sign_pack_word_avx512,
};

/// The AVX-512 table with the Hamming/count kernels upgraded to native
/// 64-bit-lane popcount (`vpopcntq`).  The byte-LUT form above stays
/// available for AVX-512 hosts without `avx512vpopcntdq`; both count set
/// bits exactly, so the upgrade is invisible to the bit-exactness
/// contract.
pub(super) static AVX512_VPOPCNT: Kernels = Kernels {
    isa: "avx512vpopcnt",
    dot_step: 32,
    dot_accumulate: dot_accumulate_avx512,
    dot_reduce: dot_reduce_16x2,
    axpy: axpy_avx512,
    hamming: hamming_avx512_vpopcnt,
    count_ones: count_ones_avx512_vpopcnt,
    sign_quadrant_word: sign_quadrant_word_avx512,
    sign_pack_word: sign_pack_word_avx512,
};

// ---------------------------------------------------------------------------
// Dot accumulate/reduce
// ---------------------------------------------------------------------------

fn dot_accumulate_avx2(lanes: &mut [f32; DOT_BANK_LANES], a: &[f32], b: &[f32]) {
    // SAFETY: the AVX2 table is only reachable after runtime detection.
    unsafe { dot_accumulate_avx2_impl(lanes, a, b) }
}

/// Four 8-lane FMA accumulators, 32 elements per iteration.  The bank
/// layout is `lanes[j*8 + l]` = vector accumulator `j`, lane `l`.
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_accumulate_avx2_impl(lanes: &mut [f32; DOT_BANK_LANES], a: &[f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len() % 32, 0);
    let mut acc0 = _mm256_loadu_ps(lanes.as_ptr());
    let mut acc1 = _mm256_loadu_ps(lanes.as_ptr().add(8));
    let mut acc2 = _mm256_loadu_ps(lanes.as_ptr().add(16));
    let mut acc3 = _mm256_loadu_ps(lanes.as_ptr().add(24));
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    for i in 0..a.len() / 32 {
        let qa = pa.add(i * 32);
        let qb = pb.add(i * 32);
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(qa), _mm256_loadu_ps(qb), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(qa.add(8)), _mm256_loadu_ps(qb.add(8)), acc1);
        acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(qa.add(16)), _mm256_loadu_ps(qb.add(16)), acc2);
        acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(qa.add(24)), _mm256_loadu_ps(qb.add(24)), acc3);
    }
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc0);
    _mm256_storeu_ps(lanes.as_mut_ptr().add(8), acc1);
    _mm256_storeu_ps(lanes.as_mut_ptr().add(16), acc2);
    _mm256_storeu_ps(lanes.as_mut_ptr().add(24), acc3);
}

/// Fixed reduction order for the AVX2 bank: lane-wise combine of the four
/// vector accumulators, then a left-to-right sum of the 8 combined lanes.
/// Plain scalar arithmetic — deterministic by construction.
fn dot_reduce_8x4(lanes: &[f32; DOT_BANK_LANES]) -> f32 {
    let mut acc = 0.0f32;
    for l in 0..8 {
        acc += (lanes[l] + lanes[8 + l]) + (lanes[16 + l] + lanes[24 + l]);
    }
    acc
}

fn dot_accumulate_avx512(lanes: &mut [f32; DOT_BANK_LANES], a: &[f32], b: &[f32]) {
    // SAFETY: the AVX-512 table is only reachable after runtime detection.
    unsafe { dot_accumulate_avx512_impl(lanes, a, b) }
}

/// Two 16-lane FMA accumulators, 32 elements per iteration.
#[target_feature(enable = "avx512f")]
unsafe fn dot_accumulate_avx512_impl(lanes: &mut [f32; DOT_BANK_LANES], a: &[f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len() % 32, 0);
    let mut acc0 = _mm512_loadu_ps(lanes.as_ptr());
    let mut acc1 = _mm512_loadu_ps(lanes.as_ptr().add(16));
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    for i in 0..a.len() / 32 {
        let qa = pa.add(i * 32);
        let qb = pb.add(i * 32);
        acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(qa), _mm512_loadu_ps(qb), acc0);
        acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(qa.add(16)), _mm512_loadu_ps(qb.add(16)), acc1);
    }
    _mm512_storeu_ps(lanes.as_mut_ptr(), acc0);
    _mm512_storeu_ps(lanes.as_mut_ptr().add(16), acc1);
}

/// Fixed reduction order for the AVX-512 bank: lane-wise combine of the two
/// vector accumulators, then a left-to-right sum of the 16 combined lanes.
fn dot_reduce_16x2(lanes: &[f32; DOT_BANK_LANES]) -> f32 {
    let mut acc = 0.0f32;
    for l in 0..16 {
        acc += lanes[l] + lanes[16 + l];
    }
    acc
}

// ---------------------------------------------------------------------------
// axpy (element-wise, mul + add — deliberately NOT contracted to FMA, so the
// result is bit-exact against the scalar path)
// ---------------------------------------------------------------------------

fn axpy_avx2(out: &mut [f32], scale: f32, x: &[f32]) {
    // SAFETY: the AVX2 table is only reachable after runtime detection.
    unsafe { axpy_avx2_impl(out, scale, x) }
}

#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2_impl(out: &mut [f32], scale: f32, x: &[f32]) {
    debug_assert_eq!(out.len(), x.len());
    let s = _mm256_set1_ps(scale);
    let n = out.len();
    let main = n - n % 8;
    let po = out.as_mut_ptr();
    let px = x.as_ptr();
    let mut i = 0usize;
    while i < main {
        let v =
            _mm256_add_ps(_mm256_loadu_ps(po.add(i)), _mm256_mul_ps(s, _mm256_loadu_ps(px.add(i))));
        _mm256_storeu_ps(po.add(i), v);
        i += 8;
    }
    for j in main..n {
        out[j] += scale * x[j];
    }
}

fn axpy_avx512(out: &mut [f32], scale: f32, x: &[f32]) {
    // SAFETY: the AVX-512 table is only reachable after runtime detection.
    unsafe { axpy_avx512_impl(out, scale, x) }
}

#[target_feature(enable = "avx512f")]
unsafe fn axpy_avx512_impl(out: &mut [f32], scale: f32, x: &[f32]) {
    debug_assert_eq!(out.len(), x.len());
    let s = _mm512_set1_ps(scale);
    let n = out.len();
    let main = n - n % 16;
    let po = out.as_mut_ptr();
    let px = x.as_ptr();
    let mut i = 0usize;
    while i < main {
        let v =
            _mm512_add_ps(_mm512_loadu_ps(po.add(i)), _mm512_mul_ps(s, _mm512_loadu_ps(px.add(i))));
        _mm512_storeu_ps(po.add(i), v);
        i += 16;
    }
    for j in main..n {
        out[j] += scale * x[j];
    }
}

// ---------------------------------------------------------------------------
// Hamming / count_ones (Mula nibble-LUT popcount + psadbw horizontal sums;
// the host baseline is not guaranteed avx512vpopcntdq, so AVX-512 uses the
// same byte-LUT shape over 512-bit lanes)
// ---------------------------------------------------------------------------

fn hamming_avx2(a: &[u64], b: &[u64]) -> usize {
    // SAFETY: the AVX2 table is only reachable after runtime detection.
    unsafe { hamming_avx2_impl(a, b) }
}

#[target_feature(enable = "avx2")]
unsafe fn hamming_avx2_impl(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let lut =
        _mm256_broadcastsi128_si256(_mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
    let low = _mm256_set1_epi8(0x0f);
    let zero = _mm256_setzero_si256();
    let mut total = zero;
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let va = _mm256_loadu_si256(a.as_ptr().add(i * 4) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i * 4) as *const __m256i);
        let v = _mm256_xor_si256(va, vb);
        let lo = _mm256_and_si256(v, low);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        total = _mm256_add_epi64(total, _mm256_sad_epu8(cnt, zero));
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, total);
    let mut sum = (lanes[0] + lanes[1] + lanes[2] + lanes[3]) as usize;
    for i in chunks * 4..a.len() {
        sum += (a[i] ^ b[i]).count_ones() as usize;
    }
    sum
}

fn count_ones_avx2(words: &[u64]) -> usize {
    // SAFETY: the AVX2 table is only reachable after runtime detection.
    unsafe { count_ones_avx2_impl(words) }
}

#[target_feature(enable = "avx2")]
unsafe fn count_ones_avx2_impl(words: &[u64]) -> usize {
    let lut =
        _mm256_broadcastsi128_si256(_mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
    let low = _mm256_set1_epi8(0x0f);
    let zero = _mm256_setzero_si256();
    let mut total = zero;
    let chunks = words.len() / 4;
    for i in 0..chunks {
        let v = _mm256_loadu_si256(words.as_ptr().add(i * 4) as *const __m256i);
        let lo = _mm256_and_si256(v, low);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        total = _mm256_add_epi64(total, _mm256_sad_epu8(cnt, zero));
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, total);
    let mut sum = (lanes[0] + lanes[1] + lanes[2] + lanes[3]) as usize;
    for w in &words[chunks * 4..] {
        sum += w.count_ones() as usize;
    }
    sum
}

fn hamming_avx512(a: &[u64], b: &[u64]) -> usize {
    // SAFETY: the AVX-512 table is only reachable after runtime detection.
    unsafe { hamming_avx512_impl(a, b) }
}

#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn hamming_avx512_impl(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let lut = _mm512_broadcast_i32x4(_mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
    let low = _mm512_set1_epi8(0x0f);
    let zero = _mm512_setzero_si512();
    let mut total = zero;
    let chunks = a.len() / 8;
    for i in 0..chunks {
        let va = _mm512_loadu_epi64(a.as_ptr().add(i * 8) as *const i64);
        let vb = _mm512_loadu_epi64(b.as_ptr().add(i * 8) as *const i64);
        let v = _mm512_xor_si512(va, vb);
        let lo = _mm512_and_si512(v, low);
        let hi = _mm512_and_si512(_mm512_srli_epi16::<4>(v), low);
        let cnt = _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo), _mm512_shuffle_epi8(lut, hi));
        total = _mm512_add_epi64(total, _mm512_sad_epu8(cnt, zero));
    }
    let mut sum = _mm512_reduce_add_epi64(total) as usize;
    for i in chunks * 8..a.len() {
        sum += (a[i] ^ b[i]).count_ones() as usize;
    }
    sum
}

fn count_ones_avx512(words: &[u64]) -> usize {
    // SAFETY: the AVX-512 table is only reachable after runtime detection.
    unsafe { count_ones_avx512_impl(words) }
}

#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn count_ones_avx512_impl(words: &[u64]) -> usize {
    let lut = _mm512_broadcast_i32x4(_mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
    let low = _mm512_set1_epi8(0x0f);
    let zero = _mm512_setzero_si512();
    let mut total = zero;
    let chunks = words.len() / 8;
    for i in 0..chunks {
        let v = _mm512_loadu_epi64(words.as_ptr().add(i * 8) as *const i64);
        let lo = _mm512_and_si512(v, low);
        let hi = _mm512_and_si512(_mm512_srli_epi16::<4>(v), low);
        let cnt = _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo), _mm512_shuffle_epi8(lut, hi));
        total = _mm512_add_epi64(total, _mm512_sad_epu8(cnt, zero));
    }
    let mut sum = _mm512_reduce_add_epi64(total) as usize;
    for w in &words[chunks * 8..] {
        sum += w.count_ones() as usize;
    }
    sum
}

fn hamming_avx512_vpopcnt(a: &[u64], b: &[u64]) -> usize {
    // SAFETY: the AVX-512-vpopcnt table is only reachable after runtime
    // detection.
    unsafe { hamming_avx512_vpopcnt_impl(a, b) }
}

#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn hamming_avx512_vpopcnt_impl(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut total = _mm512_setzero_si512();
    let chunks = a.len() / 8;
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    for i in 0..chunks {
        let va = _mm512_loadu_epi64(pa.add(i * 8) as *const i64);
        let vb = _mm512_loadu_epi64(pb.add(i * 8) as *const i64);
        total = _mm512_add_epi64(total, _mm512_popcnt_epi64(_mm512_xor_si512(va, vb)));
    }
    let mut sum = _mm512_reduce_add_epi64(total) as usize;
    for i in chunks * 8..a.len() {
        sum += (a[i] ^ b[i]).count_ones() as usize;
    }
    sum
}

fn count_ones_avx512_vpopcnt(words: &[u64]) -> usize {
    // SAFETY: the AVX-512-vpopcnt table is only reachable after runtime
    // detection.
    unsafe { count_ones_avx512_vpopcnt_impl(words) }
}

#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn count_ones_avx512_vpopcnt_impl(words: &[u64]) -> usize {
    let mut total = _mm512_setzero_si512();
    let chunks = words.len() / 8;
    let pw = words.as_ptr();
    for i in 0..chunks {
        let v = _mm512_loadu_epi64(pw.add(i * 8) as *const i64);
        total = _mm512_add_epi64(total, _mm512_popcnt_epi64(v));
    }
    let mut sum = _mm512_reduce_add_epi64(total) as usize;
    for w in &words[chunks * 8..] {
        sum += w.count_ones() as usize;
    }
    sum
}

// ---------------------------------------------------------------------------
// Sign kernels.  Bit-exact against the scalar forms: identical IEEE mul/sub
// sequence for the range reduction, ties-to-even rounding (the hardware
// vroundps/vrndscaleps mode, matched by `round_ties_even` on the scalar
// side), and ordered compares that treat NaN as false on both sides.
// ---------------------------------------------------------------------------

fn sign_quadrant_word_avx2(chunk: &[f32], guard: f32) -> (u64, u64) {
    // SAFETY: the AVX2 table is only reachable after runtime detection.
    unsafe { sign_quadrant_word_avx2_impl(chunk, guard) }
}

#[target_feature(enable = "avx2")]
unsafe fn sign_quadrant_word_avx2_impl(chunk: &[f32], guard: f32) -> (u64, u64) {
    debug_assert!(chunk.len() <= 64);
    let inv_tau = _mm256_set1_ps(super::INV_TAU);
    let c1 = _mm256_set1_ps(super::REDUCE_C1);
    let c2 = _mm256_set1_ps(super::REDUCE_C2);
    let pi_2 = _mm256_set1_ps(std::f32::consts::FRAC_PI_2);
    let guard_v = _mm256_set1_ps(guard);
    let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
    let mut word = 0u64;
    let mut band = 0u64;
    let groups = chunk.len() / 8;
    for g in 0..groups {
        let v = _mm256_loadu_ps(chunk.as_ptr().add(g * 8));
        let k = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
            _mm256_mul_ps(v, inv_tau),
        );
        let r = _mm256_sub_ps(_mm256_sub_ps(v, _mm256_mul_ps(k, c1)), _mm256_mul_ps(k, c2));
        let a = _mm256_and_ps(r, abs_mask);
        let quadrant = _mm256_cmp_ps::<_CMP_LE_OQ>(a, pi_2);
        let dist = _mm256_and_ps(_mm256_sub_ps(a, pi_2), abs_mask);
        let in_band = _mm256_cmp_ps::<_CMP_LT_OQ>(dist, guard_v);
        word |= (_mm256_movemask_ps(quadrant) as u32 as u64) << (g * 8);
        band |= (_mm256_movemask_ps(in_band) as u32 as u64) << (g * 8);
    }
    for bit in groups * 8..chunk.len() {
        let a = super::reduce_to_pi(chunk[bit]).abs();
        word |= ((a <= std::f32::consts::FRAC_PI_2) as u64) << bit;
        band |= (((a - std::f32::consts::FRAC_PI_2).abs() < guard) as u64) << bit;
    }
    (word, band)
}

fn sign_quadrant_word_avx512(chunk: &[f32], guard: f32) -> (u64, u64) {
    // SAFETY: the AVX-512 table is only reachable after runtime detection.
    unsafe { sign_quadrant_word_avx512_impl(chunk, guard) }
}

#[target_feature(enable = "avx512f")]
unsafe fn sign_quadrant_word_avx512_impl(chunk: &[f32], guard: f32) -> (u64, u64) {
    debug_assert!(chunk.len() <= 64);
    let inv_tau = _mm512_set1_ps(super::INV_TAU);
    let c1 = _mm512_set1_ps(super::REDUCE_C1);
    let c2 = _mm512_set1_ps(super::REDUCE_C2);
    let pi_2 = _mm512_set1_ps(std::f32::consts::FRAC_PI_2);
    let guard_v = _mm512_set1_ps(guard);
    // 512-bit FP bitwise ops are AVX512DQ; stay on F with integer ands.
    let abs_mask = _mm512_set1_epi32(0x7fff_ffff);
    let mut word = 0u64;
    let mut band = 0u64;
    let groups = chunk.len() / 16;
    for g in 0..groups {
        let v = _mm512_loadu_ps(chunk.as_ptr().add(g * 16));
        // imm8 = 0x08: round to integer (zero fraction bits), ties-to-even,
        // suppress precision exceptions — vrndscaleps.
        let k = _mm512_roundscale_ps::<0x08>(_mm512_mul_ps(v, inv_tau));
        let r = _mm512_sub_ps(_mm512_sub_ps(v, _mm512_mul_ps(k, c1)), _mm512_mul_ps(k, c2));
        let a = _mm512_castsi512_ps(_mm512_and_si512(_mm512_castps_si512(r), abs_mask));
        let quadrant = _mm512_cmp_ps_mask::<_CMP_LE_OQ>(a, pi_2);
        let dist = _mm512_castsi512_ps(_mm512_and_si512(
            _mm512_castps_si512(_mm512_sub_ps(a, pi_2)),
            abs_mask,
        ));
        let in_band = _mm512_cmp_ps_mask::<_CMP_LT_OQ>(dist, guard_v);
        word |= (quadrant as u64) << (g * 16);
        band |= (in_band as u64) << (g * 16);
    }
    for bit in groups * 16..chunk.len() {
        let a = super::reduce_to_pi(chunk[bit]).abs();
        word |= ((a <= std::f32::consts::FRAC_PI_2) as u64) << bit;
        band |= (((a - std::f32::consts::FRAC_PI_2).abs() < guard) as u64) << bit;
    }
    (word, band)
}

fn sign_pack_word_avx2(chunk: &[f32]) -> u64 {
    // SAFETY: the AVX2 table is only reachable after runtime detection.
    unsafe { sign_pack_word_avx2_impl(chunk) }
}

#[target_feature(enable = "avx2")]
unsafe fn sign_pack_word_avx2_impl(chunk: &[f32]) -> u64 {
    debug_assert!(chunk.len() <= 64);
    let zero = _mm256_setzero_ps();
    let mut word = 0u64;
    let groups = chunk.len() / 8;
    for g in 0..groups {
        let v = _mm256_loadu_ps(chunk.as_ptr().add(g * 8));
        let ge = _mm256_cmp_ps::<_CMP_GE_OQ>(v, zero);
        word |= (_mm256_movemask_ps(ge) as u32 as u64) << (g * 8);
    }
    for bit in groups * 8..chunk.len() {
        word |= ((chunk[bit] >= 0.0) as u64) << bit;
    }
    word
}

fn sign_pack_word_avx512(chunk: &[f32]) -> u64 {
    // SAFETY: the AVX-512 table is only reachable after runtime detection.
    unsafe { sign_pack_word_avx512_impl(chunk) }
}

#[target_feature(enable = "avx512f")]
unsafe fn sign_pack_word_avx512_impl(chunk: &[f32]) -> u64 {
    debug_assert!(chunk.len() <= 64);
    let zero = _mm512_setzero_ps();
    let mut word = 0u64;
    let groups = chunk.len() / 16;
    for g in 0..groups {
        let v = _mm512_loadu_ps(chunk.as_ptr().add(g * 16));
        let ge = _mm512_cmp_ps_mask::<_CMP_GE_OQ>(v, zero);
        word |= (ge as u64) << (g * 16);
    }
    for bit in groups * 16..chunk.len() {
        word |= ((chunk[bit] >= 0.0) as u64) << bit;
    }
    word
}

//! Associative memory: the class-hypervector store.
//!
//! An HDC classifier's "model" is one hypervector per class.  Training
//! accumulates (bundles) encoded samples into their class hypervector;
//! inference returns the class whose hypervector is most similar to the
//! encoded query (step (I)/(J) of the CyberHD workflow).
//!
//! [`AssociativeMemory`] owns the class hypervectors and provides the
//! accumulate / nearest / similarity primitives that both the static baseline
//! HDC and the CyberHD trainer build on.

use crate::dense::Hypervector;
use crate::quant::{BitWidth, QuantizedHypervector};
use crate::similarity;
use crate::{HdcError, Result};
use serde::{Deserialize, Serialize};

/// Rows per fan-out chunk in [`AssociativeMemory::similarities_batch`].
///
/// Large enough that thread spawn cost vanishes, small enough that one
/// chunk's queries stay cache-resident alongside the class hypervectors.
const SCORE_CHUNK_ROWS: usize = 256;

/// A store of one dense hypervector per class.
///
/// # Example
///
/// ```
/// use hdc::{AssociativeMemory, Hypervector};
///
/// # fn main() -> Result<(), hdc::HdcError> {
/// let mut memory = AssociativeMemory::new(2, 4)?;
/// memory.accumulate(0, &Hypervector::from_vec(vec![1.0, 0.0, 0.0, 0.0]))?;
/// memory.accumulate(1, &Hypervector::from_vec(vec![0.0, 1.0, 0.0, 0.0]))?;
/// let query = Hypervector::from_vec(vec![0.9, 0.1, 0.0, 0.0]);
/// let (class, similarity) = memory.nearest(&query)?;
/// assert_eq!(class, 0);
/// assert!(similarity > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssociativeMemory {
    classes: Vec<Hypervector>,
    dim: usize,
}

impl AssociativeMemory {
    /// Creates a memory with `num_classes` zero hypervectors of length `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `num_classes` or `dim` is zero.
    pub fn new(num_classes: usize, dim: usize) -> Result<Self> {
        if num_classes == 0 {
            return Err(HdcError::InvalidArgument("num_classes must be non-zero".into()));
        }
        if dim == 0 {
            return Err(HdcError::InvalidArgument("dim must be non-zero".into()));
        }
        Ok(Self { classes: vec![Hypervector::zeros(dim); num_classes], dim })
    }

    /// Builds a memory from pre-existing class hypervectors.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `classes` is empty and
    /// [`HdcError::DimensionMismatch`] if the hypervectors disagree on
    /// dimensionality.
    pub fn from_class_hypervectors(classes: Vec<Hypervector>) -> Result<Self> {
        let dim = classes
            .first()
            .map(Hypervector::dim)
            .ok_or_else(|| HdcError::InvalidArgument("classes must be non-empty".into()))?;
        for c in &classes {
            if c.dim() != dim {
                return Err(HdcError::DimensionMismatch { expected: dim, actual: c.dim() });
            }
        }
        Ok(Self { classes, dim })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows the hypervector of `class`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] for an unknown class.
    pub fn class(&self, class: usize) -> Result<&Hypervector> {
        self.classes
            .get(class)
            .ok_or(HdcError::IndexOutOfRange { index: class, bound: self.classes.len() })
    }

    /// Mutably borrows the hypervector of `class`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] for an unknown class.
    pub fn class_mut(&mut self, class: usize) -> Result<&mut Hypervector> {
        let bound = self.classes.len();
        self.classes.get_mut(class).ok_or(HdcError::IndexOutOfRange { index: class, bound })
    }

    /// Borrows all class hypervectors.
    pub fn classes(&self) -> &[Hypervector] {
        &self.classes
    }

    /// Bundles `sample` into the hypervector of `class` (plain accumulation,
    /// the "single-pass" training of classic HDC).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] for an unknown class or
    /// [`HdcError::DimensionMismatch`] if `sample` has the wrong length.
    pub fn accumulate(&mut self, class: usize, sample: &Hypervector) -> Result<()> {
        self.add_scaled(class, sample, 1.0)
    }

    /// Adds `weight * sample` to the hypervector of `class` — the primitive
    /// behind CyberHD's adaptive update.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] for an unknown class or
    /// [`HdcError::DimensionMismatch`] if `sample` has the wrong length.
    pub fn add_scaled(&mut self, class: usize, sample: &Hypervector, weight: f32) -> Result<()> {
        if sample.dim() != self.dim {
            return Err(HdcError::DimensionMismatch { expected: self.dim, actual: sample.dim() });
        }
        self.class_mut(class)?.bundle_scaled_in_place(sample, weight)
    }

    /// Cosine similarity of `query` to every class, in class order.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `query` has the wrong
    /// length.
    pub fn similarities(&self, query: &Hypervector) -> Result<Vec<f32>> {
        if query.dim() != self.dim {
            return Err(HdcError::DimensionMismatch { expected: self.dim, actual: query.dim() });
        }
        let qn = query.norm();
        Ok(self
            .classes
            .iter()
            .map(|c| similarity::cosine_with_norm(query.as_slice(), qn, c.as_slice(), c.norm()))
            .collect())
    }

    /// Returns the most similar class and its cosine similarity.
    ///
    /// Ties are broken in favour of the lowest class index, which keeps
    /// inference deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `query` has the wrong
    /// length.
    pub fn nearest(&self, query: &Hypervector) -> Result<(usize, f32)> {
        let sims = self.similarities(query)?;
        Ok(similarity::argmax(&sims).expect("memory always has at least one class"))
    }

    /// L2 norm of every class hypervector, in class order.
    ///
    /// The batched inference engine computes these **once per batch** and
    /// reuses them for every query, instead of the per-query recomputation
    /// of the serial [`AssociativeMemory::similarities`] path.
    pub fn class_norms(&self) -> Vec<f32> {
        self.classes.iter().map(Hypervector::norm).collect()
    }

    /// Writes the cosine similarity of `query` (a raw `dim`-length slice) to
    /// every class into `out`, reusing pre-computed `class_norms`.
    ///
    /// This is the zero-allocation core of both the batched engine and the
    /// trainer's per-epoch scoring loop; it produces bit-identical values to
    /// [`AssociativeMemory::similarities`] because the cached norms are the
    /// same `Hypervector::norm` results the serial path recomputes.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `query` is not `dim` long
    /// or if `class_norms`/`out` do not have one entry per class.
    pub fn similarities_into(
        &self,
        query: &[f32],
        class_norms: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        if query.len() != self.dim {
            return Err(HdcError::DimensionMismatch { expected: self.dim, actual: query.len() });
        }
        if class_norms.len() != self.classes.len() {
            return Err(HdcError::DimensionMismatch {
                expected: self.classes.len(),
                actual: class_norms.len(),
            });
        }
        if out.len() != self.classes.len() {
            return Err(HdcError::DimensionMismatch {
                expected: self.classes.len(),
                actual: out.len(),
            });
        }
        self.similarities_with_query_norm(query, similarity::norm(query), class_norms, out)
    }

    /// [`AssociativeMemory::similarities_into`] with the query norm supplied
    /// by the caller.
    ///
    /// The mini-batch training engine caches per-row norms of its encoded
    /// matrix (rows only change at regeneration), which removes one full
    /// `dim`-length pass per scored sample; passing the cached
    /// `similarity::norm` value produces bit-identical scores to
    /// [`AssociativeMemory::similarities_into`] recomputing it.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] under the same conditions as
    /// [`AssociativeMemory::similarities_into`].
    pub fn similarities_with_query_norm(
        &self,
        query: &[f32],
        query_norm: f32,
        class_norms: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        if query.len() != self.dim {
            return Err(HdcError::DimensionMismatch { expected: self.dim, actual: query.len() });
        }
        if class_norms.len() != self.classes.len() {
            return Err(HdcError::DimensionMismatch {
                expected: self.classes.len(),
                actual: class_norms.len(),
            });
        }
        if out.len() != self.classes.len() {
            return Err(HdcError::DimensionMismatch {
                expected: self.classes.len(),
                actual: out.len(),
            });
        }
        self.class_dots_interleaved(query, out);
        for (slot, &cn) in out.iter_mut().zip(class_norms) {
            // `similarity::cosine_with_norm`'s conventions: zero norms score
            // 0.0, everything else is clamped into [-1, 1].
            *slot = if query_norm == 0.0 || cn == 0.0 {
                0.0
            } else {
                (*slot / (query_norm * cn)).clamp(-1.0, 1.0)
            };
        }
        Ok(())
    }

    /// Interleaved multi-class dot kernel: writes `query · class_k` into
    /// `out[k]` for every class, reading the query **once** for all classes
    /// instead of once per class.
    ///
    /// The query is walked in L1-resident tiles; per tile, every class
    /// accumulates into its own [`crate::kernel::DotBank`] through the
    /// active dispatch path's `dot_accumulate`, followed by the same
    /// `dot_reduce` and serial tail that [`similarity::dot`] uses — so each
    /// per-class dot is **bit-identical to `similarity::dot` on the same
    /// dispatch path** (tile boundaries are multiples of the path's
    /// `dot_step`, which makes split accumulation exact) and every
    /// downstream bit-exactness contract holds.  The win is memory
    /// traffic: at `K` classes the old loop streamed `K` query passes plus
    /// `K` class passes per sample; this kernel streams one query pass
    /// plus the same `K` class passes.
    ///
    /// Shapes are the caller's responsibility (`query.len() == dim`,
    /// `out.len() == num_classes`); the public scoring entry points validate
    /// before calling in.
    fn class_dots_interleaved(&self, query: &[f32], out: &mut [f32]) {
        debug_assert_eq!(query.len(), self.dim);
        debug_assert_eq!(out.len(), self.classes.len());
        use crate::kernel::DotBank;
        /// Query elements per tile (a 2 KiB slab): small enough to sit in
        /// L1 across all class passes, large enough to amortize the
        /// per-tile class-loop overhead.  Must stay a multiple of every
        /// dispatch path's `dot_step` so tile boundaries never split an
        /// accumulation chunk (pinned by a kernel-module test).
        const TILE: usize = 512;
        /// Class banks kept on the stack; realistic NIDS label spaces are
        /// single digits, so the heap fallback is effectively dead code.
        const MAX_STACK_CLASSES: usize = 32;

        let kernels = crate::kernel::active();
        let step = kernels.dot_step();
        debug_assert_eq!(TILE % step, 0);

        let k = self.classes.len();
        let mut stack = [DotBank::new(); MAX_STACK_CLASSES];
        let mut heap: Vec<DotBank>;
        let banks: &mut [DotBank] = if k <= MAX_STACK_CLASSES {
            &mut stack[..k]
        } else {
            heap = vec![DotBank::new(); k];
            &mut heap
        };

        let main = (query.len() / step) * step;
        let mut base = 0usize;
        while base < main {
            let end = (base + TILE).min(main);
            let q_tile = &query[base..end];
            for (class, bank) in self.classes.iter().zip(banks.iter_mut()) {
                kernels.dot_accumulate(bank, q_tile, &class.as_slice()[base..end]);
            }
            base = end;
        }
        for ((slot, class), bank) in out.iter_mut().zip(&self.classes).zip(banks.iter()) {
            let mut dot = kernels.dot_reduce(bank);
            let tail = &class.as_slice()[main..];
            for (q, c) in query[main..].iter().zip(tail) {
                dot += q * c;
            }
            *slot = dot;
        }
    }

    /// Scores a row-major `rows × dim` query matrix against every class,
    /// writing a row-major `rows × num_classes` score matrix.
    ///
    /// Class norms are computed **once** and shared by all rows; with the
    /// `parallel` feature the rows are fanned out across scoped threads.
    /// Row `i` of the output equals `self.similarities(query_i)` exactly.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `queries` is not a whole
    /// number of `dim`-length rows or `out` is not `rows × num_classes`.
    pub fn similarities_batch(&self, queries: &[f32], out: &mut [f32]) -> Result<()> {
        let rows = self.check_batch_shapes(queries, out.len())?;
        let norms = self.class_norms();
        let classes = self.classes.len();
        crate::parallel::for_each_chunk(
            rows,
            SCORE_CHUNK_ROWS,
            out,
            classes,
            crate::parallel::engine_threads(),
            |chunk, tile| {
                for (local, row) in (chunk.start..chunk.end).enumerate() {
                    let query = &queries[row * self.dim..(row + 1) * self.dim];
                    let scores = &mut tile[local * classes..(local + 1) * classes];
                    self.similarities_into(query, &norms, scores)
                        .expect("shapes validated before the fan-out");
                }
            },
        );
        Ok(())
    }

    /// Predicts the nearest class of every row of a row-major `rows × dim`
    /// query matrix, with class norms computed once for the whole batch.
    ///
    /// Equivalent to calling [`AssociativeMemory::nearest`] per row (same
    /// tie-breaking), at batch cost.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `queries` is not a whole
    /// number of `dim`-length rows.
    pub fn nearest_batch(&self, queries: &[f32]) -> Result<Vec<(usize, f32)>> {
        let classes = self.classes.len();
        let rows = self.check_batch_shapes(queries, queries.len() / self.dim * classes)?;
        let mut scores = vec![0.0f32; rows * classes];
        self.similarities_batch(queries, &mut scores)?;
        Ok(scores
            .chunks_exact(classes)
            .map(|row| similarity::argmax(row).expect("at least one class"))
            .collect())
    }

    /// Validates a `rows × dim` query matrix and an output of `expected_out`
    /// elements, returning the row count.
    fn check_batch_shapes(&self, queries: &[f32], out_len: usize) -> Result<usize> {
        if !queries.len().is_multiple_of(self.dim) {
            return Err(HdcError::DimensionMismatch { expected: self.dim, actual: queries.len() });
        }
        let rows = queries.len() / self.dim;
        if out_len != rows * self.classes.len() {
            return Err(HdcError::DimensionMismatch {
                expected: rows * self.classes.len(),
                actual: out_len,
            });
        }
        Ok(rows)
    }

    /// Adds `weight * sample` (a raw `dim`-length slice) to the hypervector
    /// of `class` — the slice twin of [`AssociativeMemory::add_scaled`],
    /// used by the trainer's matrix-backed encoding cache.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] for an unknown class or
    /// [`HdcError::DimensionMismatch`] if `sample` has the wrong length.
    pub fn add_scaled_slice(&mut self, class: usize, sample: &[f32], weight: f32) -> Result<()> {
        if sample.len() != self.dim {
            return Err(HdcError::DimensionMismatch { expected: self.dim, actual: sample.len() });
        }
        let target = self.class_mut(class)?;
        // Kernel axpy: element-wise mul + add, bit-exact on every dispatch
        // path (identical to the plain loop this replaces).
        crate::kernel::active().axpy(target.as_mut_slice(), weight, sample);
        Ok(())
    }

    /// Returns a copy of the memory with every class hypervector normalized
    /// to unit norm (step (D) of the CyberHD workflow).
    pub fn normalized(&self) -> Self {
        Self { classes: self.classes.iter().map(Hypervector::normalized).collect(), dim: self.dim }
    }

    /// Per-dimension variance of the (already provided) class hypervectors.
    ///
    /// For dimension `d`, this is the population variance of
    /// `{C_k[d] | k in classes}`.  Dimensions with near-zero variance carry
    /// the same value for every class and therefore contribute nothing to
    /// discrimination — these are the dimensions CyberHD drops.
    pub fn dimension_variances(&self) -> Vec<f32> {
        let k = self.classes.len() as f32;
        let mut variances = vec![0.0f32; self.dim];
        for (d, var) in variances.iter_mut().enumerate() {
            let mean: f32 = self.classes.iter().map(|c| c[d]).sum::<f32>() / k;
            *var = self.classes.iter().map(|c| (c[d] - mean).powi(2)).sum::<f32>() / k;
        }
        variances
    }

    /// Zeroes dimension `index` in every class hypervector (step (G): drop an
    /// insignificant dimension before regenerating its base vector).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] if `index >= dim()`.
    pub fn zero_dimension(&mut self, index: usize) -> Result<()> {
        if index >= self.dim {
            return Err(HdcError::IndexOutOfRange { index, bound: self.dim });
        }
        for c in &mut self.classes {
            c.zero_dimension(index)?;
        }
        Ok(())
    }

    /// Resets every class hypervector to zero.
    pub fn clear(&mut self) {
        for c in &mut self.classes {
            for v in c.iter_mut() {
                *v = 0.0;
            }
        }
    }

    /// Quantizes every class hypervector at the given bitwidth.
    pub fn quantized(&self, width: BitWidth) -> Vec<QuantizedHypervector> {
        self.classes.iter().map(|c| QuantizedHypervector::quantize(c, width)).collect()
    }

    /// Persists the memory through the artifact codec, bit-exact.
    pub fn write_to(&self, w: &mut crate::codec::Writer) {
        w.usize(self.classes.len());
        for class in &self.classes {
            w.f32_slice(class.as_slice());
        }
    }

    /// Reads a memory persisted by [`AssociativeMemory::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::codec::CodecError`] on a truncated stream, zero
    /// classes, or classes that disagree on dimensionality.
    pub fn read_from(r: &mut crate::codec::Reader<'_>) -> crate::codec::CodecResult<Self> {
        let num_classes = r.usize()?;
        let mut classes = Vec::with_capacity(num_classes.min(r.remaining()));
        for _ in 0..num_classes {
            classes.push(Hypervector::from_vec(r.f32_vec()?));
        }
        Self::from_class_hypervectors(classes)
            .map_err(|e| crate::codec::CodecError::Invalid(format!("class memory: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::HdcRng;

    fn random_hv(dim: usize, rng: &mut HdcRng) -> Hypervector {
        Hypervector::from_fn(dim, |_| rng.standard_normal() as f32)
    }

    #[test]
    fn constructor_validates_arguments() {
        assert!(AssociativeMemory::new(0, 8).is_err());
        assert!(AssociativeMemory::new(2, 0).is_err());
        assert!(AssociativeMemory::new(3, 8).is_ok());
    }

    #[test]
    fn from_class_hypervectors_checks_consistency() {
        assert!(AssociativeMemory::from_class_hypervectors(vec![]).is_err());
        let bad = vec![Hypervector::zeros(4), Hypervector::zeros(5)];
        assert!(AssociativeMemory::from_class_hypervectors(bad).is_err());
        let ok = vec![Hypervector::zeros(4), Hypervector::zeros(4)];
        let m = AssociativeMemory::from_class_hypervectors(ok).unwrap();
        assert_eq!(m.num_classes(), 2);
        assert_eq!(m.dim(), 4);
    }

    #[test]
    fn accumulate_and_nearest_recover_the_class() {
        let mut rng = HdcRng::seed_from(1);
        let dim = 1024;
        let mut memory = AssociativeMemory::new(3, dim).unwrap();
        let prototypes: Vec<_> = (0..3).map(|_| random_hv(dim, &mut rng)).collect();
        // Accumulate noisy copies of each prototype.
        for (class, proto) in prototypes.iter().enumerate() {
            for _ in 0..20 {
                let noise = random_hv(dim, &mut rng).scaled(0.3);
                let sample = proto.bundle(&noise).unwrap();
                memory.accumulate(class, &sample).unwrap();
            }
        }
        for (class, proto) in prototypes.iter().enumerate() {
            let (winner, sim) = memory.nearest(proto).unwrap();
            assert_eq!(winner, class);
            assert!(sim > 0.5);
        }
    }

    #[test]
    fn similarities_have_one_entry_per_class() {
        let memory = AssociativeMemory::new(5, 16).unwrap();
        let q = Hypervector::zeros(16);
        assert_eq!(memory.similarities(&q).unwrap().len(), 5);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let mut memory = AssociativeMemory::new(2, 8).unwrap();
        let wrong = Hypervector::zeros(9);
        assert!(matches!(memory.accumulate(0, &wrong), Err(HdcError::DimensionMismatch { .. })));
        assert!(matches!(memory.nearest(&wrong), Err(HdcError::DimensionMismatch { .. })));
    }

    #[test]
    fn unknown_class_is_reported() {
        let mut memory = AssociativeMemory::new(2, 8).unwrap();
        let hv = Hypervector::zeros(8);
        assert!(matches!(memory.accumulate(2, &hv), Err(HdcError::IndexOutOfRange { .. })));
        assert!(memory.class(2).is_err());
    }

    #[test]
    fn normalized_copy_has_unit_norm_classes() {
        let mut rng = HdcRng::seed_from(2);
        let mut memory = AssociativeMemory::new(3, 64).unwrap();
        for c in 0..3 {
            memory.accumulate(c, &random_hv(64, &mut rng)).unwrap();
        }
        let normalized = memory.normalized();
        for c in normalized.classes() {
            assert!((c.norm() - 1.0).abs() < 1e-5);
        }
        // Original is untouched.
        assert!(memory.classes().iter().any(|c| (c.norm() - 1.0).abs() > 1e-3));
    }

    #[test]
    fn dimension_variances_identify_common_dimensions() {
        // Three classes identical in dimension 0 but different in dimension 1.
        let classes = vec![
            Hypervector::from_vec(vec![0.5, 1.0, 0.0]),
            Hypervector::from_vec(vec![0.5, -1.0, 0.0]),
            Hypervector::from_vec(vec![0.5, 0.0, 0.2]),
        ];
        let memory = AssociativeMemory::from_class_hypervectors(classes).unwrap();
        let vars = memory.dimension_variances();
        assert_eq!(vars.len(), 3);
        assert!(vars[0] < 1e-9, "identical dimension has zero variance");
        assert!(vars[1] > vars[2], "most diverse dimension has the largest variance");
    }

    #[test]
    fn zero_dimension_clears_every_class() {
        let mut rng = HdcRng::seed_from(3);
        let mut memory = AssociativeMemory::new(2, 8).unwrap();
        for c in 0..2 {
            memory.accumulate(c, &random_hv(8, &mut rng)).unwrap();
        }
        memory.zero_dimension(4).unwrap();
        for c in memory.classes() {
            assert_eq!(c[4], 0.0);
        }
        assert!(memory.zero_dimension(8).is_err());
    }

    #[test]
    fn clear_resets_all_classes() {
        let mut rng = HdcRng::seed_from(4);
        let mut memory = AssociativeMemory::new(2, 8).unwrap();
        memory.accumulate(0, &random_hv(8, &mut rng)).unwrap();
        memory.clear();
        assert!(memory.classes().iter().all(|c| c.norm() == 0.0));
    }

    #[test]
    fn quantized_export_matches_class_count() {
        let memory = AssociativeMemory::new(4, 32).unwrap();
        let qs = memory.quantized(BitWidth::B4);
        assert_eq!(qs.len(), 4);
        assert!(qs.iter().all(|q| q.dim() == 32));
    }

    #[test]
    fn class_norms_match_per_class_norms() {
        let mut rng = HdcRng::seed_from(5);
        let mut memory = AssociativeMemory::new(3, 32).unwrap();
        for c in 0..3 {
            memory.accumulate(c, &random_hv(32, &mut rng)).unwrap();
        }
        let norms = memory.class_norms();
        for (c, n) in norms.iter().enumerate() {
            assert_eq!(*n, memory.class(c).unwrap().norm());
        }
    }

    #[test]
    fn similarities_into_matches_similarities_exactly() {
        let mut rng = HdcRng::seed_from(6);
        let mut memory = AssociativeMemory::new(4, 64).unwrap();
        for c in 0..4 {
            memory.accumulate(c, &random_hv(64, &mut rng)).unwrap();
        }
        let norms = memory.class_norms();
        let mut scratch = vec![0.0f32; 4];
        for _ in 0..16 {
            let q = random_hv(64, &mut rng);
            memory.similarities_into(q.as_slice(), &norms, &mut scratch).unwrap();
            assert_eq!(scratch, memory.similarities(&q).unwrap());
        }
        // Shape errors.
        assert!(memory.similarities_into(&[0.0; 63], &norms, &mut scratch).is_err());
        assert!(memory.similarities_into(&[0.0; 64], &norms[..3], &mut scratch).is_err());
        assert!(memory.similarities_into(&[0.0; 64], &norms, &mut scratch[..3]).is_err());
    }

    #[test]
    fn cached_query_norm_scoring_is_bit_identical() {
        let mut rng = HdcRng::seed_from(16);
        let mut memory = AssociativeMemory::new(3, 48).unwrap();
        for c in 0..3 {
            memory.accumulate(c, &random_hv(48, &mut rng)).unwrap();
        }
        let norms = memory.class_norms();
        let mut with_cached = vec![0.0f32; 3];
        let mut recomputed = vec![0.0f32; 3];
        for _ in 0..8 {
            let q = random_hv(48, &mut rng);
            let qn = similarity::norm(q.as_slice());
            memory
                .similarities_with_query_norm(q.as_slice(), qn, &norms, &mut with_cached)
                .unwrap();
            memory.similarities_into(q.as_slice(), &norms, &mut recomputed).unwrap();
            assert_eq!(with_cached, recomputed);
        }
        // Shape errors.
        assert!(memory
            .similarities_with_query_norm(&[0.0; 47], 1.0, &norms, &mut with_cached)
            .is_err());
        assert!(memory
            .similarities_with_query_norm(&[0.0; 48], 1.0, &norms[..2], &mut with_cached)
            .is_err());
        assert!(memory
            .similarities_with_query_norm(&[0.0; 48], 1.0, &norms, &mut with_cached[..2])
            .is_err());
    }

    #[test]
    fn interleaved_multi_class_dots_are_bit_identical_to_serial_dots() {
        let mut rng = HdcRng::seed_from(23);
        // Odd dims exercise the serial tail; 40 classes exercise the heap
        // fallback past the stack accumulator banks.
        for (classes, dim) in [(1usize, 4usize), (3, 47), (5, 513), (40, 130), (4, 2051)] {
            let mut memory = AssociativeMemory::new(classes, dim).unwrap();
            for c in 0..classes {
                memory.accumulate(c, &random_hv(dim, &mut rng)).unwrap();
            }
            let norms = memory.class_norms();
            let mut scores = vec![0.0f32; classes];
            for _ in 0..4 {
                let q = random_hv(dim, &mut rng);
                let qn = similarity::norm(q.as_slice());
                memory.similarities_with_query_norm(q.as_slice(), qn, &norms, &mut scores).unwrap();
                for (c, &score) in scores.iter().enumerate() {
                    let class = memory.class(c).unwrap();
                    let serial =
                        similarity::cosine_with_norm(q.as_slice(), qn, class.as_slice(), norms[c]);
                    assert_eq!(score.to_bits(), serial.to_bits(), "class {c} dim {dim}");
                }
            }
        }
    }

    #[test]
    fn batched_scoring_matches_the_serial_path_row_by_row() {
        let mut rng = HdcRng::seed_from(7);
        let (classes, dim, rows) = (3, 48, 300);
        let mut memory = AssociativeMemory::new(classes, dim).unwrap();
        for c in 0..classes {
            memory.accumulate(c, &random_hv(dim, &mut rng)).unwrap();
        }
        let queries: Vec<f32> = (0..rows * dim).map(|_| rng.standard_normal() as f32).collect();
        let mut scores = vec![f32::NAN; rows * classes];
        memory.similarities_batch(&queries, &mut scores).unwrap();
        let winners = memory.nearest_batch(&queries).unwrap();
        assert_eq!(winners.len(), rows);
        for row in 0..rows {
            let q = Hypervector::from_vec(queries[row * dim..(row + 1) * dim].to_vec());
            let serial = memory.similarities(&q).unwrap();
            assert_eq!(&scores[row * classes..(row + 1) * classes], serial.as_slice());
            assert_eq!(winners[row], memory.nearest(&q).unwrap());
        }
    }

    #[test]
    fn batched_scoring_validates_shapes() {
        let memory = AssociativeMemory::new(2, 8).unwrap();
        let mut out = vec![0.0f32; 2];
        // Not a whole number of rows.
        assert!(memory.similarities_batch(&[0.0; 12], &mut out).is_err());
        // Output too small for the row count.
        assert!(memory.similarities_batch(&[0.0; 16], &mut out).is_err());
        assert!(memory.nearest_batch(&[0.0; 12]).is_err());
    }

    #[test]
    fn add_scaled_slice_matches_add_scaled() {
        let mut rng = HdcRng::seed_from(8);
        let sample = random_hv(16, &mut rng);
        let mut a = AssociativeMemory::new(2, 16).unwrap();
        let mut b = a.clone();
        a.add_scaled(1, &sample, 0.35).unwrap();
        b.add_scaled_slice(1, sample.as_slice(), 0.35).unwrap();
        assert_eq!(a, b);
        assert!(b.add_scaled_slice(5, sample.as_slice(), 1.0).is_err());
        assert!(b.add_scaled_slice(0, &[0.0; 15], 1.0).is_err());
    }

    #[test]
    fn nearest_breaks_ties_deterministically() {
        let memory = AssociativeMemory::new(3, 4).unwrap();
        // All classes are zero vectors -> all similarities are 0 -> class 0 wins.
        let q = Hypervector::from_vec(vec![1.0, 0.0, 0.0, 0.0]);
        let (winner, sim) = memory.nearest(&q).unwrap();
        assert_eq!(winner, 0);
        assert_eq!(sim, 0.0);
    }
}

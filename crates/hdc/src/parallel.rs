//! Chunked fan-out for the batched inference engine.
//!
//! The engine splits a batch into contiguous row chunks and processes each
//! chunk independently (encode into a chunk-local buffer, score, write the
//! chunk's slice of the output).  With the `parallel` cargo feature (on by
//! default) chunks are distributed across `std::thread::scope` workers; the
//! dependency-free build environment has no `rayon`, and scoped threads give
//! the same fork-join shape for this embarrassingly parallel workload.
//! Without the feature the same kernels run serially, so results are
//! identical either way (each output element is written by exactly one
//! chunk, and kernels are deterministic per row).

/// A contiguous range of batch rows assigned to one worker invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowChunk {
    /// First row (inclusive).
    pub start: usize,
    /// One past the last row.
    pub end: usize,
}

impl RowChunk {
    /// Number of rows in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits `rows` into chunks of at most `chunk_rows` rows.
pub fn chunks_of(rows: usize, chunk_rows: usize) -> Vec<RowChunk> {
    let chunk_rows = chunk_rows.max(1);
    (0..rows)
        .step_by(chunk_rows)
        .map(|start| RowChunk { start, end: (start + chunk_rows).min(rows) })
        .collect()
}

/// Number of worker threads the engine fans out across.
///
/// `1` when the `parallel` feature is disabled; otherwise the machine's
/// available parallelism, overridable (and capped) via the
/// `CYBERHD_THREADS` environment variable.
pub fn engine_threads() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        if let Ok(v) = std::env::var("CYBERHD_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    }
}

/// Runs `kernel` over every chunk of `out`, each chunk paired with its row
/// range, fanning out across at most `threads` scoped workers.
///
/// `out` is split into disjoint `chunk_rows * out_stride` slices, so kernels
/// may write their chunk freely without synchronization.  Worker panics
/// propagate to the caller.
///
/// This is the single fork-join primitive the whole engine builds on; with
/// `threads <= 1` (or a single chunk) it degrades to a plain serial loop
/// with no thread overhead.
pub fn for_each_chunk<T, F>(
    rows: usize,
    chunk_rows: usize,
    out: &mut [T],
    out_stride: usize,
    threads: usize,
    kernel: F,
) where
    T: Send,
    F: Fn(RowChunk, &mut [T]) + Sync,
{
    debug_assert_eq!(out.len(), rows * out_stride, "output buffer shape mismatch");
    let chunk_rows = chunk_rows.max(1);
    let mut jobs: Vec<(RowChunk, &mut [T])> = Vec::new();
    {
        let mut rest = out;
        let mut start = 0usize;
        while start < rows {
            let end = (start + chunk_rows).min(rows);
            let (head, tail) = rest.split_at_mut((end - start) * out_stride);
            jobs.push((RowChunk { start, end }, head));
            rest = tail;
            start = end;
        }
    }

    let workers = threads.max(1).min(jobs.len().max(1));
    if workers <= 1 {
        for (chunk, slice) in jobs {
            kernel(chunk, slice);
        }
        return;
    }

    // Round-robin the chunk jobs over the workers: chunk sizes are uniform
    // (except the tail), so static assignment balances well and avoids a
    // shared work queue.
    let mut per_worker: Vec<Vec<(RowChunk, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        per_worker[i % workers].push(job);
    }
    std::thread::scope(|scope| {
        let kernel = &kernel;
        for worker_jobs in per_worker {
            scope.spawn(move || {
                for (chunk, slice) in worker_jobs {
                    kernel(chunk, slice);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_all_rows_without_overlap() {
        let chunks = chunks_of(10, 3);
        assert_eq!(
            chunks,
            vec![
                RowChunk { start: 0, end: 3 },
                RowChunk { start: 3, end: 6 },
                RowChunk { start: 6, end: 9 },
                RowChunk { start: 9, end: 10 },
            ]
        );
        assert!(chunks.iter().all(|c| !c.is_empty()));
        assert_eq!(chunks.iter().map(RowChunk::len).sum::<usize>(), 10);
        assert!(chunks_of(0, 4).is_empty());
    }

    #[test]
    fn engine_threads_is_at_least_one() {
        assert!(engine_threads() >= 1);
    }

    fn run_sum_kernel(rows: usize, chunk_rows: usize, threads: usize) -> Vec<f32> {
        let stride = 4;
        let mut out = vec![0.0f32; rows * stride];
        for_each_chunk(rows, chunk_rows, &mut out, stride, threads, |chunk, slice| {
            for (local, row) in (chunk.start..chunk.end).enumerate() {
                for d in 0..stride {
                    slice[local * stride + d] = (row * stride + d) as f32;
                }
            }
        });
        out
    }

    #[test]
    fn serial_and_parallel_fan_out_write_identical_outputs() {
        let expected: Vec<f32> = (0..40).map(|v| v as f32).collect();
        assert_eq!(run_sum_kernel(10, 3, 1), expected);
        assert_eq!(run_sum_kernel(10, 3, 4), expected);
        assert_eq!(run_sum_kernel(10, 1, 8), expected);
        assert_eq!(run_sum_kernel(10, 100, 4), expected);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut out: Vec<f32> = Vec::new();
        for_each_chunk(0, 8, &mut out, 4, 4, |_, _| panic!("no chunks expected"));
    }
}

//! Chunked fan-out for the batched inference and training engines.
//!
//! The engines split a batch into contiguous row chunks and process each
//! chunk independently (encode into a chunk-local buffer, score, write the
//! chunk's slice of the output).  With the `parallel` cargo feature (on by
//! default) chunks are claimed from a shared atomic-counter work queue by
//! `std::thread::scope` workers; the dependency-free build environment has
//! no `rayon`, and scoped threads plus a fetch-add counter give the same
//! work-stealing shape for this embarrassingly parallel workload.  Without
//! the feature the same kernels run serially, so results are identical
//! either way (each output element is written by exactly one chunk, and
//! kernels are deterministic per row).

/// A contiguous range of batch rows assigned to one worker invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowChunk {
    /// First row (inclusive).
    pub start: usize,
    /// One past the last row.
    pub end: usize,
}

impl RowChunk {
    /// Number of rows in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits `rows` into chunks of at most `chunk_rows` rows.
pub fn chunks_of(rows: usize, chunk_rows: usize) -> Vec<RowChunk> {
    let chunk_rows = chunk_rows.max(1);
    (0..rows)
        .step_by(chunk_rows)
        .map(|start| RowChunk { start, end: (start + chunk_rows).min(rows) })
        .collect()
}

/// Number of worker threads the engine fans out across.
///
/// `1` when the `parallel` feature is disabled; otherwise the machine's
/// available parallelism, overridable (and capped) via the
/// `CYBERHD_THREADS` environment variable.
pub fn engine_threads() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        if let Ok(v) = std::env::var("CYBERHD_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    }
}

/// The machine's available parallelism, independent of the `parallel`
/// feature and the `CYBERHD_THREADS` override — the sizing signal for
/// things that scale with *hardware* rather than with the engine's worker
/// pool (default shard counts, bench scaling assertions that only hold on
/// multi-core hosts).  Always at least 1.
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Runs `kernel` over every chunk of `out`, each chunk paired with its row
/// range, fanning out across at most `threads` scoped workers.
///
/// `out` is split into disjoint `chunk_rows * out_stride` slices, so kernels
/// may write their chunk freely without synchronization.  Worker panics
/// propagate to the caller.
///
/// Chunk jobs are claimed from a shared queue with an atomic fetch-add
/// counter, so a worker that draws short chunks (or a ragged tail) simply
/// claims the next job instead of idling while statically assigned peers
/// finish — the cheap `std`-only form of work stealing.  Chunk boundaries
/// depend only on `rows` and `chunk_rows`, never on `threads`, and every
/// chunk writes its own disjoint slice, so outputs are identical for every
/// thread count.
///
/// This is the single fork-join primitive the whole engine builds on; with
/// `threads <= 1` (or a single chunk) it degrades to a plain serial loop
/// with no thread overhead.
pub fn for_each_chunk<T, F>(
    rows: usize,
    chunk_rows: usize,
    out: &mut [T],
    out_stride: usize,
    threads: usize,
    kernel: F,
) where
    T: Send,
    F: Fn(RowChunk, &mut [T]) + Sync,
{
    debug_assert_eq!(out.len(), rows * out_stride, "output buffer shape mismatch");
    let chunk_rows = chunk_rows.max(1);
    let mut jobs: Vec<(RowChunk, &mut [T])> = Vec::new();
    {
        let mut rest = out;
        let mut start = 0usize;
        while start < rows {
            let end = (start + chunk_rows).min(rows);
            let (head, tail) = rest.split_at_mut((end - start) * out_stride);
            jobs.push((RowChunk { start, end }, head));
            rest = tail;
            start = end;
        }
    }

    // Without the `parallel` feature the engine is serial by contract, even
    // for callers that request an explicit thread count.
    #[cfg(not(feature = "parallel"))]
    let threads = {
        let _ = threads;
        1
    };
    let workers = threads.max(1).min(jobs.len().max(1));
    if workers <= 1 {
        for (chunk, slice) in jobs {
            kernel(chunk, slice);
        }
        return;
    }

    // Work-stealing queue: jobs sit in claim slots and workers pop the next
    // index with a relaxed fetch-add.  Each slot's mutex is locked exactly
    // once, by the single worker that claimed its index, so there is no
    // contention — the mutex only exists to hand the `&mut` job out of the
    // shared vector without `unsafe`.
    let queue: Vec<std::sync::Mutex<Option<(RowChunk, &mut [T])>>> =
        jobs.into_iter().map(|job| std::sync::Mutex::new(Some(job))).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(slot) = queue.get(i) else { break };
                let job = slot.lock().expect("claim slots are never poisoned").take();
                if let Some((chunk, slice)) = job {
                    kernel(chunk, slice);
                }
            });
        }
    });
}

/// Runs `work` over every job of `jobs`, fanning out across at most
/// `threads` scoped workers — the owned-job twin of [`for_each_chunk`] for
/// workloads that are a list of independent tasks rather than disjoint
/// slices of one output buffer (e.g. the serve engine flushing many tenant
/// lanes at once).
///
/// Jobs are claimed from the same atomic fetch-add queue as
/// [`for_each_chunk`], so stragglers never idle statically assigned peers.
/// Without the `parallel` feature (or with `threads <= 1`) the jobs run
/// serially **in order** on the calling thread; with it, completion order
/// is unspecified, so `work` must not depend on inter-job ordering.
/// Worker panics propagate to the caller.
pub fn for_each_task<T, F>(jobs: Vec<T>, threads: usize, work: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    #[cfg(not(feature = "parallel"))]
    let threads = {
        let _ = threads;
        1
    };
    let workers = threads.max(1).min(jobs.len());
    if workers <= 1 {
        for job in jobs {
            work(job);
        }
        return;
    }
    // Claim slots, as in `for_each_chunk`: each slot's mutex is locked
    // exactly once by the worker that fetch-added its index.
    let queue: Vec<std::sync::Mutex<Option<T>>> =
        jobs.into_iter().map(|job| std::sync::Mutex::new(Some(job))).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(slot) = queue.get(i) else { break };
                let job = slot.lock().expect("claim slots are never poisoned").take();
                if let Some(job) = job {
                    work(job);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_all_rows_without_overlap() {
        let chunks = chunks_of(10, 3);
        assert_eq!(
            chunks,
            vec![
                RowChunk { start: 0, end: 3 },
                RowChunk { start: 3, end: 6 },
                RowChunk { start: 6, end: 9 },
                RowChunk { start: 9, end: 10 },
            ]
        );
        assert!(chunks.iter().all(|c| !c.is_empty()));
        assert_eq!(chunks.iter().map(RowChunk::len).sum::<usize>(), 10);
        assert!(chunks_of(0, 4).is_empty());
    }

    #[test]
    fn engine_threads_is_at_least_one() {
        assert!(engine_threads() >= 1);
    }

    #[test]
    fn available_cores_is_at_least_one() {
        assert!(available_cores() >= 1);
    }

    fn run_sum_kernel(rows: usize, chunk_rows: usize, threads: usize) -> Vec<f32> {
        let stride = 4;
        let mut out = vec![0.0f32; rows * stride];
        for_each_chunk(rows, chunk_rows, &mut out, stride, threads, |chunk, slice| {
            for (local, row) in (chunk.start..chunk.end).enumerate() {
                for d in 0..stride {
                    slice[local * stride + d] = (row * stride + d) as f32;
                }
            }
        });
        out
    }

    #[test]
    fn serial_and_parallel_fan_out_write_identical_outputs() {
        let expected: Vec<f32> = (0..40).map(|v| v as f32).collect();
        assert_eq!(run_sum_kernel(10, 3, 1), expected);
        assert_eq!(run_sum_kernel(10, 3, 4), expected);
        assert_eq!(run_sum_kernel(10, 1, 8), expected);
        assert_eq!(run_sum_kernel(10, 100, 4), expected);
    }

    #[test]
    fn work_stealing_handles_ragged_and_oversubscribed_queues() {
        // Many ragged chunk shapes × more workers than jobs: every row is
        // still written exactly once and values are thread-count-invariant.
        let expected: Vec<f32> = (0..4 * 97).map(|v| v as f32).collect();
        for chunk_rows in [1, 3, 7, 96, 97, 1000] {
            for threads in [2, 3, 16, 64] {
                assert_eq!(
                    run_sum_kernel(97, chunk_rows, threads),
                    expected,
                    "chunk_rows={chunk_rows} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut out: Vec<f32> = Vec::new();
        for_each_chunk(0, 8, &mut out, 4, 4, |_, _| panic!("no chunks expected"));
    }

    #[test]
    fn task_fan_out_runs_every_job_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1, 2, 7, 64] {
            let hits: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
            for_each_task((0..23).collect::<Vec<usize>>(), threads, |job| {
                hits[job].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}: every job runs exactly once"
            );
        }
        for_each_task(Vec::<usize>::new(), 4, |_| panic!("no jobs expected"));
    }
}

//! A tiny bit-exact binary codec for model persistence.
//!
//! The workspace builds offline, so the vendored `serde` is an API-subset
//! marker stub that cannot actually serialize anything.  Persistence of
//! trained artifacts therefore goes through this explicit little-endian
//! codec instead: every component writes its fields in a documented order
//! through a [`Writer`] and reads them back through a [`Reader`].
//!
//! Floating-point values travel as their IEEE-754 bit patterns
//! ([`f32::to_bits`] / [`f64::to_bits`]), so a save → load round trip is
//! **bit-exact** — the loaded model reproduces every prediction of the
//! original bit for bit, which is the contract the detector artifact tests
//! pin.
//!
//! Versioning lives one level up: the artifact container (see
//! `cyberhd::detector`) prefixes the payload with a magic tag and a format
//! version and refuses anything it does not understand.

use std::error::Error;
use std::fmt;

/// Errors produced while decoding a persisted artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The byte stream ended before the expected field.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// A decoded value failed validation (bad tag, malformed string,
    /// inconsistent shape, …).
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected end of artifact: needed {needed} bytes, {remaining} left")
            }
            CodecError::Invalid(what) => write!(f, "invalid artifact field: {what}"),
        }
    }
}

impl Error for CodecError {}

/// Codec-local result alias.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

/// Lookup table for [`crc32`] (reflected CRC-32, polynomial `0xEDB88320`).
const CRC32_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The standard CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `bytes`.
///
/// Used as the integrity trailer of versioned artifact frames and as the
/// per-record checksum of the write-ahead log ([`crate::wal`]): corruption
/// of persisted bytes is detected up front instead of deserializing
/// garbage that happens to parse.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Appends little-endian fields to a byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Borrows the bytes written so far (e.g. to checksum a frame before
    /// appending its integrity trailer).
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Returns `true` if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes raw bytes verbatim (no length prefix).
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `i32`, little-endian.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` as its IEEE-754 bit pattern (bit-exact).
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bit-exact).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte (`0` / `1`).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.bytes(v.as_bytes());
    }

    /// Writes a length-prefixed `f32` slice, element-wise bit-exact.
    pub fn f32_slice(&mut self, values: &[f32]) {
        self.usize(values.len());
        for &v in values {
            self.f32(v);
        }
    }

    /// Writes a length-prefixed `i32` slice.
    pub fn i32_slice(&mut self, values: &[i32]) {
        self.usize(values.len());
        for &v in values {
            self.i32(v);
        }
    }

    /// Writes a length-prefixed `f64` slice, element-wise bit-exact.
    pub fn f64_slice(&mut self, values: &[f64]) {
        self.usize(values.len());
        for &v in values {
            self.f64(v);
        }
    }

    /// Writes a length-prefixed `u64` slice (packed hypervector words).
    pub fn u64_slice(&mut self, values: &[u64]) {
        self.usize(values.len());
        for &v in values {
            self.u64(v);
        }
    }
}

/// Reads little-endian fields from a byte slice, in write order.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Returns `true` when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { needed: n, remaining: self.remaining() });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] at end of input.
    pub fn u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the stream is short.
    pub fn u32(&mut self) -> CodecResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the stream is short.
    pub fn u64(&mut self) -> CodecResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a `usize` persisted as `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] on a short stream and
    /// [`CodecError::Invalid`] if the value does not fit a `usize`.
    pub fn usize(&mut self) -> CodecResult<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid(format!("length {v} overflows usize")))
    }

    /// Reads a little-endian `i32`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the stream is short.
    pub fn i32(&mut self) -> CodecResult<i32> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads an `f32` from its bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the stream is short.
    pub fn f32(&mut self) -> CodecResult<f32> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the stream is short.
    pub fn f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Invalid`] for any byte other than `0` / `1`.
    pub fn bool(&mut self) -> CodecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Invalid(format!("bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Invalid`] for non-UTF-8 payloads and
    /// [`CodecError::UnexpectedEof`] on a short stream.
    pub fn str(&mut self) -> CodecResult<String> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::Invalid(format!("non-UTF-8 string: {e}")))
    }

    /// Reads a length-prefixed `f32` vector.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] on a short stream.
    pub fn f32_vec(&mut self) -> CodecResult<Vec<f32>> {
        let len = self.usize()?;
        self.sized(len, 4)?;
        (0..len).map(|_| self.f32()).collect()
    }

    /// Reads a length-prefixed `i32` vector.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] on a short stream.
    pub fn i32_vec(&mut self) -> CodecResult<Vec<i32>> {
        let len = self.usize()?;
        self.sized(len, 4)?;
        (0..len).map(|_| self.i32()).collect()
    }

    /// Reads a length-prefixed `f64` vector.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] on a short stream.
    pub fn f64_vec(&mut self) -> CodecResult<Vec<f64>> {
        let len = self.usize()?;
        self.sized(len, 8)?;
        (0..len).map(|_| self.f64()).collect()
    }

    /// Reads a length-prefixed `u64` vector.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] on a short stream.
    pub fn u64_vec(&mut self) -> CodecResult<Vec<u64>> {
        let len = self.usize()?;
        self.sized(len, 8)?;
        (0..len).map(|_| self.u64()).collect()
    }

    /// Guards vector reads against corrupted length prefixes: a declared
    /// length whose payload cannot possibly fit the remaining bytes fails
    /// up front instead of allocating `len` elements first.
    fn sized(&self, len: usize, element_bytes: usize) -> CodecResult<()> {
        let needed = len.saturating_mul(element_bytes);
        if needed > self.remaining() {
            return Err(CodecError::UnexpectedEof { needed, remaining: self.remaining() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_reference_vectors() {
        // The check value every CRC-32 implementation must reproduce.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let mut bytes = (0u8..=255).collect::<Vec<_>>();
        let clean = crc32(&bytes);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                bytes[i] ^= 1 << bit;
                assert_ne!(crc32(&bytes), clean, "flip at byte {i} bit {bit} went undetected");
                bytes[i] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn scalars_round_trip_bit_exactly() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.usize(42);
        w.i32(-123_456);
        w.f32(-0.0);
        w.f32(f32::NAN);
        w.f64(std::f64::consts::PI);
        w.bool(true);
        w.str("σχήμα");
        assert!(!w.is_empty());
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.i32().unwrap(), -123_456);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.f32().unwrap().is_nan());
        assert_eq!(r.f64().unwrap(), std::f64::consts::PI);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "σχήμα");
        assert!(r.is_exhausted());
    }

    #[test]
    fn slices_round_trip() {
        let mut w = Writer::new();
        w.f32_slice(&[1.0, -2.5, 0.0]);
        w.i32_slice(&[-1, 0, 7]);
        w.f64_slice(&[f64::MIN_POSITIVE]);
        w.u64_slice(&[u64::MAX, 0, 0xDEAD_BEEF_CAFE_F00D]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.f32_vec().unwrap(), vec![1.0, -2.5, 0.0]);
        assert_eq!(r.i32_vec().unwrap(), vec![-1, 0, 7]);
        assert_eq!(r.f64_vec().unwrap(), vec![f64::MIN_POSITIVE]);
        assert_eq!(r.u64_vec().unwrap(), vec![u64::MAX, 0, 0xDEAD_BEEF_CAFE_F00D]);
    }

    #[test]
    fn truncated_streams_report_eof() {
        let mut w = Writer::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert!(matches!(r.u64(), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn corrupted_length_prefixes_fail_before_allocating() {
        let mut w = Writer::new();
        w.usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.f32_vec(), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn invalid_payloads_are_rejected() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.bool(), Err(CodecError::Invalid(_))));
        let mut w = Writer::new();
        w.usize(2);
        w.bytes(&[0xFF, 0xFF]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str(), Err(CodecError::Invalid(_))));
        assert!(CodecError::Invalid("x".into()).to_string().contains("invalid"));
        assert!(CodecError::UnexpectedEof { needed: 4, remaining: 0 }.to_string().contains("end"));
    }
}

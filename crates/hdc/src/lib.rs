//! # `hdc` — hyperdimensional computing substrate
//!
//! This crate provides the hyperdimensional-computing (HDC) building blocks
//! used by the [CyberHD](https://arxiv.org/abs/2304.06728) reproduction:
//!
//! * [`dense::Hypervector`] — dense real-valued hypervectors with the classic
//!   HDC algebra (bundling, binding, permutation, normalization).
//! * [`binary::BinaryHypervector`] — bit-packed binary hypervectors with XOR
//!   binding, majority bundling and Hamming similarity (the 1-bit mode of the
//!   paper's quantization study).
//! * [`quant`] — linear quantization of hypervectors to 1/2/4/8/16/32-bit
//!   elements (Table I and Fig. 5 of the paper).
//! * [`encoder`] — encoders from low-dimensional feature vectors into
//!   hyperspace, most importantly the RBF / random-Fourier-feature encoder
//!   whose per-dimension base vectors can be *regenerated* (the core of
//!   CyberHD's dynamic encoding), plus ID–level and record-based encoders.
//! * [`memory::AssociativeMemory`] — the class-hypervector store used during
//!   training and nearest-class inference.
//! * [`similarity`] — cosine, dot and Hamming similarity kernels.
//! * [`kernel`] — the runtime-dispatched SIMD layer (AVX2/AVX-512 on
//!   x86_64, NEON on aarch64, scalar fallback) every hot loop above funnels
//!   through; `CYBERHD_FORCE_SCALAR=1` pins the portable path.
//! * [`batch`] — zero-copy row-major [`batch::BatchView`]s, the batch
//!   currency of every engine entry point.
//! * [`codec`] — the bit-exact little-endian codec trained artifacts are
//!   persisted with (the vendored `serde` is a marker stub).
//! * [`parallel`] — the chunked fork-join primitive of the batched
//!   inference engine (scoped threads behind the `parallel` feature).
//! * [`rng`] — deterministic, seedable random sources (Gaussian via
//!   Box–Muller) used for base-vector generation.
//! * [`wal`] — an append-only, CRC-checksummed write-ahead log with
//!   torn-tail repair, backing the durable adaptive serving lane.
//!
//! # Example
//!
//! ```
//! use hdc::encoder::{Encoder, RbfEncoder};
//! use hdc::memory::AssociativeMemory;
//!
//! # fn main() -> Result<(), hdc::HdcError> {
//! // Encode 4-dimensional features into 256-dimensional hyperspace.
//! let encoder = RbfEncoder::new(4, 256, 7)?;
//! let h = encoder.encode(&[0.2, -0.4, 1.0, 0.3])?;
//! assert_eq!(h.dim(), 256);
//!
//! // Accumulate it into a class memory and query it back.
//! let mut memory = AssociativeMemory::new(2, 256)?;
//! memory.accumulate(0, &h)?;
//! let (winner, _similarity) = memory.nearest(&h)?;
//! assert_eq!(winner, 0);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the `kernel` module scopes an explicit
// `allow(unsafe_code)` for its `std::arch` intrinsics (runtime-dispatched
// SIMD); everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod binary;
pub mod codec;
pub mod dense;
pub mod encoder;
pub mod kernel;
pub mod memory;
pub mod parallel;
pub mod quant;
pub mod rng;
pub mod similarity;
pub mod wal;

pub use batch::{BatchBuffer, BatchView};
pub use binary::BinaryHypervector;
pub use dense::Hypervector;
pub use encoder::{
    Encoder, IdLevelEncoder, ItemMemory, NGramEncoder, RbfEncoder, RecordEncoder,
    SymbolRecordEncoder,
};
pub use kernel::Kernels;
pub use memory::AssociativeMemory;
pub use quant::{BitWidth, QuantizedHypervector};
pub use similarity::{argmax, cosine, dot, hamming_distance, normalized_hamming_similarity};

use std::error::Error;
use std::fmt;

/// Errors produced by the `hdc` crate.
///
/// Every fallible public operation in this crate returns [`HdcError`]; the
/// variants carry enough context to diagnose shape and argument mismatches
/// without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HdcError {
    /// Two hypervectors (or a hypervector and a memory/encoder) disagree on
    /// dimensionality.
    DimensionMismatch {
        /// Dimensionality expected by the receiver.
        expected: usize,
        /// Dimensionality actually supplied.
        actual: usize,
    },
    /// A feature vector did not match the encoder's input arity.
    FeatureMismatch {
        /// Input feature count expected by the encoder.
        expected: usize,
        /// Feature count actually supplied.
        actual: usize,
    },
    /// A dimension, class or level index was out of range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Exclusive upper bound for valid indices.
        bound: usize,
    },
    /// A constructor argument was invalid (zero dimensionality, zero classes,
    /// non-finite parameter, …). The string names the argument.
    InvalidArgument(String),
}

impl fmt::Display for HdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdcError::DimensionMismatch { expected, actual } => {
                write!(f, "hypervector dimension mismatch: expected {expected}, got {actual}")
            }
            HdcError::FeatureMismatch { expected, actual } => {
                write!(f, "feature count mismatch: encoder expects {expected}, got {actual}")
            }
            HdcError::IndexOutOfRange { index, bound } => {
                write!(f, "index {index} out of range for bound {bound}")
            }
            HdcError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
        }
    }
}

impl Error for HdcError {}

/// Crate-local result alias.
pub type Result<T, E = HdcError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = HdcError::DimensionMismatch { expected: 8, actual: 4 };
        assert!(e.to_string().contains("expected 8"));
        let e = HdcError::FeatureMismatch { expected: 41, actual: 40 };
        assert!(e.to_string().contains("41"));
        let e = HdcError::IndexOutOfRange { index: 10, bound: 10 };
        assert!(e.to_string().contains("out of range"));
        let e = HdcError::InvalidArgument("dim must be non-zero".into());
        assert!(e.to_string().contains("dim must be non-zero"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HdcError>();
    }
}

//! Linear quantization of hypervectors to narrow bitwidths.
//!
//! Table I and Fig. 5 of the CyberHD paper study models whose hypervector
//! elements are stored at 32, 16, 8, 4, 2 or 1 bits.  This module implements
//! symmetric linear quantization: a dense hypervector is mapped onto signed
//! integer levels `[-(2^(b-1)-1), 2^(b-1)-1]` with a per-vector scale, and the
//! 1-bit case degenerates to the sign function (bipolar vectors).
//!
//! For the multi-bit widths the scale is **percentile-clipped** rather than
//! max-abs: the clip point is the [`CLIP_PERCENTILE`] magnitude quantile, so
//! a single outlier element no longer stretches the level grid until every
//! typical element collapses to level 0 (the failure mode is worst at 2 bits,
//! where the grid has only the levels −1/0/+1).  Clipped elements saturate at
//! the outermost level, exactly like integer hardware would.
//!
//! Quantized vectors keep enough structure for
//!
//! * similarity computation (integer dot product + scales),
//! * dequantization back to dense vectors,
//! * *bit-exact fault injection*: [`QuantizedHypervector::flip_bit`] flips a
//!   single physical bit of a stored element, which is how the robustness
//!   study perturbs the deployed model.

use crate::dense::Hypervector;
use crate::{HdcError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Supported element bitwidths for quantized hypervectors.
///
/// The ordering of variants follows the paper's Table I columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BitWidth {
    /// 32-bit elements (full precision reference; stored as f32).
    B32,
    /// 16-bit integer elements.
    B16,
    /// 8-bit integer elements.
    B8,
    /// 4-bit integer elements.
    B4,
    /// 2-bit integer elements.
    B2,
    /// 1-bit (bipolar / binary) elements.
    B1,
}

impl BitWidth {
    /// All bitwidths, in the order of the paper's Table I.
    pub const ALL: [BitWidth; 6] =
        [BitWidth::B32, BitWidth::B16, BitWidth::B8, BitWidth::B4, BitWidth::B2, BitWidth::B1];

    /// Number of bits per element.
    pub fn bits(self) -> u32 {
        match self {
            BitWidth::B32 => 32,
            BitWidth::B16 => 16,
            BitWidth::B8 => 8,
            BitWidth::B4 => 4,
            BitWidth::B2 => 2,
            BitWidth::B1 => 1,
        }
    }

    /// Largest positive quantization level representable at this width.
    ///
    /// For `B1` this is `1` (bipolar ±1); for wider types it is
    /// `2^(bits-1) - 1`, capped at the range that comfortably fits in the
    /// `i32` storage used by [`QuantizedHypervector`].
    pub fn max_level(self) -> i32 {
        match self {
            BitWidth::B1 => 1,
            BitWidth::B2 => 1,
            BitWidth::B4 => 7,
            BitWidth::B8 => 127,
            BitWidth::B16 => 32_767,
            BitWidth::B32 => 2_147_483_647,
        }
    }

    /// Parses a bitwidth from its number of bits.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] for unsupported widths.
    pub fn from_bits(bits: u32) -> Result<Self> {
        match bits {
            32 => Ok(BitWidth::B32),
            16 => Ok(BitWidth::B16),
            8 => Ok(BitWidth::B8),
            4 => Ok(BitWidth::B4),
            2 => Ok(BitWidth::B2),
            1 => Ok(BitWidth::B1),
            other => Err(HdcError::InvalidArgument(format!("unsupported bitwidth {other}"))),
        }
    }
}

impl fmt::Display for BitWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bit{}", self.bits(), if self.bits() == 1 { "" } else { "s" })
    }
}

/// A hypervector whose elements are stored at a reduced bitwidth.
///
/// Elements are kept as `i32` quantization levels together with a scale
/// factor; the logical value of element `i` is `levels[i] as f32 * scale`.
/// Only the low `bits()` bits of each level are meaningful, which is what
/// makes bit-exact fault injection possible.
///
/// # Example
///
/// ```
/// use hdc::{BitWidth, Hypervector, QuantizedHypervector};
///
/// let hv = Hypervector::from_vec(vec![0.5, -1.0, 0.25, 0.0]);
/// let q = QuantizedHypervector::quantize(&hv, BitWidth::B8);
/// let back = q.dequantize();
/// for (a, b) in hv.iter().zip(back.iter()) {
///     assert!((a - b).abs() < 0.02);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedHypervector {
    levels: Vec<i32>,
    scale: f32,
    width: BitWidth,
}

impl QuantizedHypervector {
    /// Quantizes a dense hypervector at the given bitwidth.
    ///
    /// The scale is chosen so the largest absolute element maps onto the
    /// largest representable level (symmetric max-abs quantization).  A zero
    /// vector quantizes to all-zero levels with scale `1.0`.
    pub fn quantize(hv: &Hypervector, width: BitWidth) -> Self {
        let mut levels = vec![0i32; hv.dim()];
        let scale = quantize_into(hv.as_slice(), width, &mut levels);
        Self { levels, scale, width }
    }

    /// Reconstructs a dense hypervector from the quantization levels.
    pub fn dequantize(&self) -> Hypervector {
        Hypervector::from_vec(self.levels.iter().map(|&l| l as f32 * self.scale).collect())
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.levels.len()
    }

    /// Returns `true` for a zero-dimensional vector.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Element bitwidth.
    pub fn width(&self) -> BitWidth {
        self.width
    }

    /// Per-vector quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Borrows the integer quantization levels.
    pub fn levels(&self) -> &[i32] {
        &self.levels
    }

    /// Total storage footprint of the element payload, in bits.
    pub fn storage_bits(&self) -> usize {
        self.dim() * self.width.bits() as usize
    }

    /// Cosine similarity between two quantized hypervectors.
    ///
    /// Computed on the integer levels; the scales cancel in the cosine, so
    /// mixed-scale operands are fine as long as the widths match the caller's
    /// expectation.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the operands disagree on
    /// dimensionality.
    pub fn cosine(&self, other: &Self) -> Result<f32> {
        if self.dim() != other.dim() {
            return Err(HdcError::DimensionMismatch { expected: self.dim(), actual: other.dim() });
        }
        let mut dot = 0.0f64;
        let mut na = 0.0f64;
        let mut nb = 0.0f64;
        for (&a, &b) in self.levels.iter().zip(&other.levels) {
            let (a, b) = (a as f64, b as f64);
            dot += a * b;
            na += a * a;
            nb += b * b;
        }
        if na == 0.0 || nb == 0.0 {
            return Ok(0.0);
        }
        Ok((dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0) as f32)
    }

    /// Flips one physical bit of the stored element at `index`.
    ///
    /// `bit` addresses the bit position inside the element's `bits()`-wide
    /// two's-complement representation (bit `bits()-1` is the sign bit for
    /// multi-bit widths, and the single value bit for `B1`).  After the flip
    /// the element is re-interpreted inside the same width, exactly as a
    /// memory upset in a deployed accelerator would be.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] if `index >= dim()` or
    /// `bit >= bits()`.
    pub fn flip_bit(&mut self, index: usize, bit: u32) -> Result<()> {
        let dim = self.dim();
        let width = self.width;
        let bits = width.bits();
        if bit >= bits {
            return Err(HdcError::IndexOutOfRange { index: bit as usize, bound: bits as usize });
        }
        let level =
            self.levels.get_mut(index).ok_or(HdcError::IndexOutOfRange { index, bound: dim })?;
        if width == BitWidth::B1 {
            // Single bit: flip the sign (+1 <-> -1).
            *level = if *level >= 0 { -1 } else { 1 };
            return Ok(());
        }
        if width == BitWidth::B32 {
            // Treat the level as a raw 32-bit word.
            let flipped = (*level as u32) ^ (1u32 << bit);
            *level = flipped as i32;
            return Ok(());
        }
        // Narrow widths: flip inside the low `bits` of the two's-complement
        // representation and sign-extend back.
        let mask = (1u32 << bits) - 1;
        let raw = (*level as u32) & mask;
        let flipped = raw ^ (1u32 << bit);
        // Sign-extend from `bits` to 32.
        let sign_bit = 1u32 << (bits - 1);
        let extended =
            if flipped & sign_bit != 0 { (flipped | !mask) as i32 } else { flipped as i32 };
        *level = extended;
        Ok(())
    }

    /// Number of physical storage bits (`dim * bits`), the address space for
    /// fault injection.
    pub fn fault_sites(&self) -> usize {
        self.storage_bits()
    }

    /// Persists the quantized vector through the artifact codec, bit-exact
    /// (levels verbatim, scale as its IEEE-754 bit pattern).
    pub fn write_to(&self, w: &mut crate::codec::Writer) {
        w.u8(self.width.bits() as u8);
        w.f32(self.scale);
        w.i32_slice(&self.levels);
    }

    /// Reads a vector persisted by [`QuantizedHypervector::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::codec::CodecError`] on a truncated stream or an
    /// unsupported bitwidth tag.
    pub fn read_from(r: &mut crate::codec::Reader<'_>) -> crate::codec::CodecResult<Self> {
        let bits = r.u8()?;
        let width = BitWidth::from_bits(bits as u32)
            .map_err(|e| crate::codec::CodecError::Invalid(e.to_string()))?;
        let scale = r.f32()?;
        let levels = r.i32_vec()?;
        Ok(Self { levels, scale, width })
    }
}

/// Quantizes a whole set of class hypervectors at the same bitwidth.
pub fn quantize_all(hvs: &[Hypervector], width: BitWidth) -> Vec<QuantizedHypervector> {
    hvs.iter().map(|h| QuantizedHypervector::quantize(h, width)).collect()
}

/// Magnitude quantile used as the clip point of the multi-bit scale.
///
/// The clip index is `ceil((len - 1) * CLIP_PERCENTILE)`, so short vectors
/// (below ~200 elements) keep the exact max-abs scale while longer vectors
/// ignore the top ~0.5% of magnitudes — enough to shed the single runaway
/// element that used to collapse the 2-bit grid at the paper's 256–512
/// dimensionalities.
pub const CLIP_PERCENTILE: f64 = 0.995;

/// The percentile-clipped scale anchor of `values` at multi-bit widths: the
/// [`CLIP_PERCENTILE`] magnitude quantile (exact, via quickselect over the
/// reusable `magnitudes` scratch), falling back to `max_abs` when the
/// quantile lands on zero (e.g. one-hot-ish vectors whose mass sits
/// entirely in the clipped tail).
fn clip_magnitude(values: &[f32], max_abs: f32, magnitudes: &mut Vec<f32>) -> f32 {
    let index = ((values.len() - 1) as f64 * CLIP_PERCENTILE).ceil() as usize;
    if index + 1 >= values.len() {
        return max_abs;
    }
    magnitudes.clear();
    magnitudes.extend(values.iter().map(|v| v.abs()));
    let (_, clip, _) = magnitudes.select_nth_unstable_by(index, |a, b| {
        a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
    });
    if *clip > 0.0 {
        *clip
    } else {
        max_abs
    }
}

/// Writes the quantization levels of `values` at `width` into `levels` and
/// returns the per-vector scale — the primitive behind
/// [`QuantizedHypervector::quantize`].
///
/// Multi-bit widths use the percentile-clipped scale (see
/// `clip_magnitude`), which costs one `O(len)` quickselect over a scratch
/// copy of the magnitudes — this convenience form allocates that scratch
/// per call; batched loops should hold one buffer and go through
/// [`quantize_into_with_scratch`] instead.  `B1` (pure sign) and the zero
/// vector never touch the scratch.
///
/// # Panics
///
/// Panics if `levels.len() != values.len()`.
pub fn quantize_into(values: &[f32], width: BitWidth, levels: &mut [i32]) -> f32 {
    quantize_into_with_scratch(values, width, levels, &mut Vec::new())
}

/// [`quantize_into`] with a caller-owned magnitude scratch buffer, so the
/// batched inference engine performs **zero per-row allocations**: the
/// buffer is cleared and refilled only when the width needs the percentile
/// clip, and level values are identical to [`quantize_into`] because this
/// *is* that path.
///
/// # Panics
///
/// Panics if `levels.len() != values.len()`.
pub fn quantize_into_with_scratch(
    values: &[f32],
    width: BitWidth,
    levels: &mut [i32],
    magnitudes: &mut Vec<f32>,
) -> f32 {
    assert_eq!(values.len(), levels.len(), "level buffer must match the value count");
    let max_abs = values.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
    if width == BitWidth::B32 {
        // Full precision: store the values at a fixed resolution so the
        // integer pathway (similarity, fault injection) stays uniform.
        let max_abs = max_abs.max(f32::MIN_POSITIVE);
        let scale = max_abs / BitWidth::B16.max_level() as f32;
        for (slot, &v) in levels.iter_mut().zip(values) {
            *slot = ((v / scale).round() as i64).clamp(i32::MIN as i64, i32::MAX as i64) as i32;
        }
        return scale;
    }
    let max_level = width.max_level() as f32;
    if max_abs == 0.0 {
        levels.fill(0);
        return 1.0;
    }
    if width == BitWidth::B1 {
        for (slot, &v) in levels.iter_mut().zip(values) {
            *slot = if v >= 0.0 { 1 } else { -1 };
        }
        return max_abs;
    }
    let scale = clip_magnitude(values, max_abs, magnitudes) / max_level;
    for (slot, &v) in levels.iter_mut().zip(values) {
        *slot = (v / scale).round().clamp(-max_level, max_level) as i32;
    }
    scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::HdcRng;

    fn random_hv(dim: usize, seed: u64) -> Hypervector {
        let mut rng = HdcRng::seed_from(seed);
        Hypervector::from_fn(dim, |_| rng.standard_normal() as f32)
    }

    #[test]
    fn bitwidth_metadata_is_consistent() {
        for w in BitWidth::ALL {
            assert_eq!(BitWidth::from_bits(w.bits()).unwrap(), w);
            assert!(w.max_level() >= 1);
            assert!(w.to_string().contains(&w.bits().to_string()));
        }
        assert!(BitWidth::from_bits(3).is_err());
    }

    #[test]
    fn quantize_dequantize_error_shrinks_with_width() {
        let hv = random_hv(2048, 1);
        let mut prev_err = f32::INFINITY;
        for w in [BitWidth::B1, BitWidth::B2, BitWidth::B4, BitWidth::B8, BitWidth::B16] {
            let q = QuantizedHypervector::quantize(&hv, w);
            let back = q.dequantize();
            let err: f32 = hv.iter().zip(back.iter()).map(|(a, b)| (a - b).abs()).sum::<f32>()
                / hv.dim() as f32;
            assert!(
                err <= prev_err + 1e-6,
                "error should not grow with more bits: {w:?} gave {err}, previous {prev_err}"
            );
            prev_err = err;
        }
    }

    #[test]
    fn one_bit_quantization_is_sign() {
        let hv = Hypervector::from_vec(vec![0.4, -0.1, 0.0, -9.0]);
        let q = QuantizedHypervector::quantize(&hv, BitWidth::B1);
        assert_eq!(q.levels(), &[1, -1, 1, -1]);
    }

    #[test]
    fn zero_vector_quantizes_cleanly() {
        let hv = Hypervector::zeros(16);
        let q = QuantizedHypervector::quantize(&hv, BitWidth::B8);
        assert!(q.levels().iter().all(|&l| l == 0));
        assert_eq!(q.dequantize(), hv);
    }

    #[test]
    fn levels_stay_within_width_bounds() {
        let hv = random_hv(512, 3);
        for w in [BitWidth::B2, BitWidth::B4, BitWidth::B8, BitWidth::B16] {
            let q = QuantizedHypervector::quantize(&hv, w);
            let bound = w.max_level();
            assert!(q.levels().iter().all(|&l| l.abs() <= bound), "width {w:?}");
        }
    }

    #[test]
    fn quantized_cosine_approximates_dense_cosine() {
        let a = random_hv(4096, 4);
        let b = random_hv(4096, 5);
        let reference = a.cosine(&b).unwrap();
        let qa = QuantizedHypervector::quantize(&a, BitWidth::B8);
        let qb = QuantizedHypervector::quantize(&b, BitWidth::B8);
        let approx = qa.cosine(&qb).unwrap();
        assert!((reference - approx).abs() < 0.03, "{reference} vs {approx}");
    }

    #[test]
    fn quantized_cosine_dimension_mismatch_is_error() {
        let a = QuantizedHypervector::quantize(&random_hv(8, 6), BitWidth::B4);
        let b = QuantizedHypervector::quantize(&random_hv(9, 7), BitWidth::B4);
        assert!(matches!(a.cosine(&b), Err(HdcError::DimensionMismatch { .. })));
    }

    #[test]
    fn storage_bits_scale_with_width() {
        let hv = random_hv(100, 8);
        assert_eq!(QuantizedHypervector::quantize(&hv, BitWidth::B1).storage_bits(), 100);
        assert_eq!(QuantizedHypervector::quantize(&hv, BitWidth::B8).storage_bits(), 800);
        assert_eq!(QuantizedHypervector::quantize(&hv, BitWidth::B32).storage_bits(), 3200);
    }

    #[test]
    fn flip_bit_changes_exactly_one_element() {
        let hv = random_hv(64, 9);
        for w in BitWidth::ALL {
            let q0 = QuantizedHypervector::quantize(&hv, w);
            let mut q = q0.clone();
            q.flip_bit(10, 0).unwrap();
            let changed = q.levels().iter().zip(q0.levels()).filter(|(a, b)| a != b).count();
            assert_eq!(changed, 1, "width {w:?}");
        }
    }

    #[test]
    fn flip_bit_twice_is_identity_for_value_bits() {
        let hv = random_hv(32, 10);
        for w in [BitWidth::B2, BitWidth::B4, BitWidth::B8, BitWidth::B16, BitWidth::B32] {
            let q0 = QuantizedHypervector::quantize(&hv, w);
            let mut q = q0.clone();
            q.flip_bit(5, 1).unwrap();
            q.flip_bit(5, 1).unwrap();
            assert_eq!(q, q0, "width {w:?}");
        }
    }

    #[test]
    fn flip_sign_bit_changes_sign_for_narrow_widths() {
        let hv = Hypervector::from_vec(vec![1.0, -0.5, 0.25, 0.125]);
        let mut q = QuantizedHypervector::quantize(&hv, BitWidth::B4);
        let before = q.levels()[0];
        q.flip_bit(0, 3).unwrap();
        let after = q.levels()[0];
        assert!(before >= 0 && after < 0, "sign flip expected: {before} -> {after}");
    }

    #[test]
    fn flip_bit_bounds_are_checked() {
        let hv = random_hv(8, 11);
        let mut q = QuantizedHypervector::quantize(&hv, BitWidth::B4);
        assert!(matches!(q.flip_bit(8, 0), Err(HdcError::IndexOutOfRange { .. })));
        assert!(matches!(q.flip_bit(0, 4), Err(HdcError::IndexOutOfRange { .. })));
    }

    #[test]
    fn quantize_into_matches_the_allocating_path() {
        let hv = random_hv(333, 12);
        let mut scratch = vec![0i32; 333];
        let mut magnitudes = Vec::new();
        for w in BitWidth::ALL {
            let q = QuantizedHypervector::quantize(&hv, w);
            let scale = quantize_into(hv.as_slice(), w, &mut scratch);
            assert_eq!(scratch.as_slice(), q.levels(), "width {w:?}");
            assert_eq!(scale, q.scale(), "width {w:?}");
            // The reusable-scratch form is the same path (stale scratch
            // contents must not leak into the result).
            scratch.fill(0);
            let scale = quantize_into_with_scratch(hv.as_slice(), w, &mut scratch, &mut magnitudes);
            assert_eq!(scratch.as_slice(), q.levels(), "scratch width {w:?}");
            assert_eq!(scale, q.scale(), "scratch width {w:?}");
        }
        // Zero vector keeps the documented convention.
        let zeros = vec![0.0f32; 8];
        let mut levels = vec![7i32; 8];
        let scale = quantize_into(&zeros, BitWidth::B4, &mut levels);
        assert_eq!(scale, 1.0);
        assert!(levels.iter().all(|&l| l == 0));
    }

    #[test]
    fn one_outlier_no_longer_collapses_the_two_bit_grid() {
        // A single 40σ outlier used to set the max-abs scale so high that
        // nearly every element rounded to level 0; the percentile-clipped
        // scale ignores it and keeps the grid usable.
        let mut values: Vec<f32> = {
            let mut rng = HdcRng::seed_from(13);
            (0..512).map(|_| rng.standard_normal() as f32).collect()
        };
        values[137] = 40.0;
        let hv = Hypervector::from_vec(values);
        let q = QuantizedHypervector::quantize(&hv, BitWidth::B2);
        // Max-abs scaling kept only elements beyond ±20 (the outlier alone);
        // the clipped scale sits near the bulk's ±3σ, so the usual ~14% of a
        // standard normal clears the ±scale/2 rounding threshold.
        assert!(q.scale() < 4.0, "clip should ignore the outlier, got scale {}", q.scale());
        let nonzero = q.levels().iter().filter(|&&l| l != 0).count();
        assert!(
            nonzero > 40,
            "percentile clipping should keep dozens of the 512 elements off level 0, got {nonzero}"
        );
        // The outlier itself saturates at the outermost level.
        assert_eq!(q.levels()[137], 1);
        // Short vectors keep the exact max-abs behaviour (no clipping).
        let short = Hypervector::from_vec(vec![0.1, -0.2, 0.3, -4.0]);
        let qs = QuantizedHypervector::quantize(&short, BitWidth::B2);
        assert_eq!(qs.scale(), 4.0);
    }

    #[test]
    fn clipped_scale_falls_back_to_max_abs_when_the_quantile_is_zero() {
        // All mass in the clipped tail: the quantile magnitude is 0, which
        // must not produce a zero scale (division by zero) — fall back to
        // max-abs.
        let mut values = vec![0.0f32; 512];
        values[0] = 2.0;
        let hv = Hypervector::from_vec(values);
        let q = QuantizedHypervector::quantize(&hv, BitWidth::B4);
        assert!(q.scale().is_finite() && q.scale() > 0.0);
        assert_eq!(q.levels()[0], 7);
        assert!(q.levels()[1..].iter().all(|&l| l == 0));
    }

    #[test]
    fn quantize_all_preserves_count_and_width() {
        let hvs: Vec<_> = (0..5).map(|i| random_hv(128, i)).collect();
        let qs = quantize_all(&hvs, BitWidth::B2);
        assert_eq!(qs.len(), 5);
        assert!(qs.iter().all(|q| q.width() == BitWidth::B2 && q.dim() == 128));
    }
}

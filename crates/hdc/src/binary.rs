//! Bit-packed binary hypervectors.
//!
//! The paper's most robust and most hardware-friendly configuration stores
//! hypervectors at 1-bit precision.  [`BinaryHypervector`] packs one bit per
//! dimension into `u64` words, providing
//!
//! * XOR **binding**,
//! * **majority bundling** of many vectors,
//! * **Hamming distance** (via hardware `popcount`) and a normalized
//!   similarity in `[-1, 1]` that is interchangeable with cosine similarity
//!   for bipolar vectors.
//!
//! The type is the backing store for the `BitWidth::B1` mode of
//! [`crate::quant`] and the robustness study (Fig. 5), where random bit flips
//! are injected directly into the packed words.

use crate::dense::Hypervector;
use crate::rng::HdcRng;
use crate::{HdcError, Result};
use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A binary hypervector packed into 64-bit words.
///
/// Bit `i` of the vector lives at word `i / 64`, bit position `i % 64`.
/// A set bit represents `+1`, a cleared bit `-1` in the bipolar view.
///
/// # Example
///
/// ```
/// use hdc::BinaryHypervector;
///
/// let mut a = BinaryHypervector::zeros(128);
/// a.set(3, true);
/// a.set(100, true);
/// assert_eq!(a.count_ones(), 2);
///
/// let b = BinaryHypervector::zeros(128);
/// assert_eq!(a.hamming_distance(&b).unwrap(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryHypervector {
    dim: usize,
    words: Vec<u64>,
}

impl BinaryHypervector {
    /// Creates an all-zero (all `-1` in bipolar view) vector of length `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self { dim, words: vec![0; dim.div_ceil(WORD_BITS)] }
    }

    /// Creates a uniformly random binary hypervector.
    ///
    /// Fills whole `u64` words directly from the RNG — 64 bits per draw
    /// instead of the one-bit-per-draw Bernoulli loop this method used to
    /// run — and masks the tail word so bits beyond `dim` stay zero.
    pub fn random(dim: usize, rng: &mut HdcRng) -> Self {
        let mut out = Self::zeros(dim);
        for word in &mut out.words {
            *word = rng.next_word();
        }
        out.mask_tail();
        out
    }

    /// Builds a binary hypervector by thresholding a dense hypervector at
    /// zero: elements `>= 0` become set bits.
    ///
    /// This is the 1-bit quantization used by the paper's deployment mode.
    pub fn from_dense(hv: &Hypervector) -> Self {
        let mut out = Self::zeros(hv.dim());
        for (i, &v) in hv.iter().enumerate() {
            if v >= 0.0 {
                out.set(i, true);
            }
        }
        out
    }

    /// Expands back into a dense bipolar hypervector (`+1` / `-1`).
    pub fn to_dense(&self) -> Hypervector {
        Hypervector::from_fn(self.dim, |i| if self.get(i) { 1.0 } else { -1.0 })
    }

    /// Dimensionality in bits.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns `true` if the vector has zero dimensionality.
    pub fn is_empty(&self) -> bool {
        self.dim == 0
    }

    /// Borrows the packed words.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Borrows the packed words mutably.
    ///
    /// Bits beyond `dim()` in the last word must remain zero; callers that
    /// mutate words directly (e.g. fault injectors) should call
    /// [`BinaryHypervector::mask_tail`] afterwards.
    pub fn as_mut_words(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Clears any bits beyond `dim()` in the last word.
    pub fn mask_tail(&mut self) {
        let rem = self.dim % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Reads bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.dim, "bit index {index} out of range for dim {}", self.dim);
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Writes bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.dim, "bit index {index} out of range for dim {}", self.dim);
        let word = &mut self.words[index / WORD_BITS];
        let mask = 1u64 << (index % WORD_BITS);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Flips bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    pub fn flip(&mut self, index: usize) {
        assert!(index < self.dim, "bit index {index} out of range for dim {}", self.dim);
        self.words[index / WORD_BITS] ^= 1u64 << (index % WORD_BITS);
    }

    /// Number of set bits, via the active [`crate::kernel`] popcount path.
    pub fn count_ones(&self) -> usize {
        crate::kernel::active().count_ones(&self.words)
    }

    fn check_dim(&self, other: &Self) -> Result<()> {
        if self.dim != other.dim {
            return Err(HdcError::DimensionMismatch { expected: self.dim, actual: other.dim });
        }
        Ok(())
    }

    /// XOR binding of two binary hypervectors.
    ///
    /// XOR is the binary analogue of element-wise multiplication of bipolar
    /// vectors: it is self-inverse (`a ⊕ a = 0`) and distance preserving.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the operands disagree on
    /// dimensionality.
    pub fn bind(&self, other: &Self) -> Result<Self> {
        self.check_dim(other)?;
        let words = self.words.iter().zip(&other.words).map(|(a, b)| a ^ b).collect();
        Ok(Self { dim: self.dim, words })
    }

    /// Hamming distance (number of differing bits), via the shared
    /// XOR+popcount kernel of [`crate::similarity::hamming_distance`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the operands disagree on
    /// dimensionality.
    pub fn hamming_distance(&self, other: &Self) -> Result<usize> {
        self.check_dim(other)?;
        Ok(crate::similarity::hamming_distance(&self.words, &other.words))
    }

    /// Normalized Hamming similarity in `[-1, 1]`:
    /// `1 - 2·hamming/dim`, equal to the cosine similarity of the bipolar
    /// expansions of both vectors.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the operands disagree on
    /// dimensionality.
    pub fn similarity(&self, other: &Self) -> Result<f32> {
        if self.dim == 0 {
            self.check_dim(other)?;
            return Ok(0.0);
        }
        let h = self.hamming_distance(other)? as f32;
        Ok(1.0 - 2.0 * h / self.dim as f32)
    }

    /// Builds a binary hypervector from the signs of integer quantization
    /// levels (`level >= 0` becomes a set bit), the packed form of a 1-bit
    /// [`crate::QuantizedHypervector`]'s level vector.
    pub fn from_level_signs(levels: &[i32]) -> Self {
        let mut out = Self::zeros(levels.len());
        pack_signs_into(levels.iter().map(|&l| l >= 0), &mut out.words);
        out
    }

    /// Cyclic bit rotation ("permutation") of the hypervector by `shift`
    /// positions: bit `i` of the input becomes bit `(i + shift) mod dim`
    /// of the result.
    ///
    /// Permutation is the sequence-position operator of the classic HDC
    /// bind-permute-bundle encodings: it preserves Hamming distances,
    /// distributes over XOR binding (`ρ(a ⊕ b) = ρ(a) ⊕ ρ(b)`), and
    /// `permute(-shift)` inverts `permute(shift)` exactly.  The rotation
    /// runs word level — whole-word shifts plus edge-bit carries across
    /// word boundaries — rather than bit by bit, and masks the tail word
    /// so bits beyond `dim` stay zero.
    pub fn permute(&self, shift: isize) -> Self {
        if self.dim == 0 {
            return self.clone();
        }
        let k = shift.rem_euclid(self.dim as isize) as usize;
        if k == 0 {
            return self.clone();
        }
        let n = self.words.len();
        let mut out = Self::zeros(self.dim);
        // A dim-bit rotate left by k is (self << k) | (self >> (dim - k))
        // over the dim-bit space.  The low part: word shift + carry of the
        // bits that cross each word boundary.
        let (low_words, low_bits) = (k / WORD_BITS, (k % WORD_BITS) as u32);
        for i in low_words..n {
            let mut word = self.words[i - low_words] << low_bits;
            if low_bits != 0 && i > low_words {
                word |= self.words[i - low_words - 1] >> (WORD_BITS as u32 - low_bits);
            }
            out.words[i] = word;
        }
        // The wrapped part: the top dim-k..dim bits land at 0..k.  The
        // input's tail bits beyond dim are zero by invariant, so no stray
        // bits appear.
        let wrap = self.dim - k;
        let (high_words, high_bits) = (wrap / WORD_BITS, (wrap % WORD_BITS) as u32);
        for i in 0..n - high_words {
            let mut word = self.words[i + high_words] >> high_bits;
            if high_bits != 0 && i + high_words + 1 < n {
                word |= self.words[i + high_words + 1] << (WORD_BITS as u32 - high_bits);
            }
            out.words[i] |= word;
        }
        out.mask_tail();
        out
    }

    /// Majority bundling of many binary hypervectors.
    ///
    /// Bit `i` of the result is set iff more than half of the inputs have bit
    /// `i` set; exact ties are broken by a deterministic pseudo-random tie
    /// vector derived from `tie_seed`, which keeps the operation unbiased
    /// without making it nondeterministic.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidArgument`] if `inputs` is empty and
    /// [`HdcError::DimensionMismatch`] if the inputs disagree on
    /// dimensionality.
    pub fn majority(inputs: &[Self], tie_seed: u64) -> Result<Self> {
        let first = inputs
            .first()
            .ok_or_else(|| HdcError::InvalidArgument("majority of zero vectors".into()))?;
        let dim = first.dim;
        let mut counts = vec![0usize; dim];
        for hv in inputs {
            first.check_dim(hv)?;
            for i in 0..dim {
                if hv.get(i) {
                    counts[i] += 1;
                }
            }
        }
        let mut tie_rng = HdcRng::seed_from(tie_seed);
        let half = inputs.len() as f64 / 2.0;
        let mut out = Self::zeros(dim);
        for (i, &c) in counts.iter().enumerate() {
            let c = c as f64;
            let bit = if c > half {
                true
            } else if c < half {
                false
            } else {
                tie_rng.bernoulli(0.5)
            };
            out.set(i, bit);
        }
        Ok(out)
    }
}

/// Packs a stream of sign bits into `u64` words (bit `i` of the stream goes
/// to word `i / 64`, position `i % 64`; trailing bits of the last word are
/// left zero).
///
/// This is the shared packing primitive of the 1-bit inference path: both
/// quantized class hypervectors and freshly encoded dense queries are packed
/// through it, after which similarity reduces to whole-word XOR + popcount
/// (see [`crate::similarity::hamming_distance`]).
///
/// # Panics
///
/// Panics (via `debug_assert`) if `words` is shorter than the stream needs;
/// callers size the buffer with [`words_for_dim`].
pub fn pack_signs_into(bits: impl IntoIterator<Item = bool>, words: &mut [u64]) {
    words.fill(0);
    let mut word = 0usize;
    let mut pos = 0u32;
    for bit in bits {
        debug_assert!(word < words.len(), "sign stream longer than the word buffer");
        words[word] |= (bit as u64) << pos;
        pos += 1;
        if pos == WORD_BITS as u32 {
            pos = 0;
            word += 1;
        }
    }
}

/// Packs the signs of a float slice (`v >= 0.0` sets the bit) into `u64`
/// words — the hot-path specialization of [`pack_signs_into`] the 1-bit
/// inference kernel calls per encoded query.
///
/// Whole 64-element chunks go through the active [`crate::kernel`] sign-pack
/// word builder (bit-exact on every dispatch path); the tail falls back to
/// the generic path.
///
/// # Panics
///
/// Panics if `words` is shorter than [`words_for_dim`]`(values.len())`.
pub fn pack_f32_signs_into(values: &[f32], words: &mut [u64]) {
    assert!(words.len() >= words_for_dim(values.len()), "word buffer too short");
    let kernels = crate::kernel::active();
    let mut chunks = values.chunks_exact(WORD_BITS);
    let mut w = 0usize;
    for chunk in &mut chunks {
        words[w] = kernels.sign_pack_word(chunk);
        w += 1;
    }
    pack_signs_into(chunks.remainder().iter().map(|&v| v >= 0.0), &mut words[w..]);
}

/// Number of `u64` words needed to pack `dim` bits.
pub fn words_for_dim(dim: usize) -> usize {
    dim.div_ceil(WORD_BITS)
}

/// Packs the signs of a float slice into `u64` words like
/// [`pack_f32_signs_into`], and additionally reports whether **every** value
/// was exactly `0.0`.
///
/// The 1-bit inference engine needs that flag to mirror the serial
/// quantization convention: an all-zero encoding quantizes to all-zero
/// levels (zero query norm → every class scores `0.0`), *not* to an
/// all-plus-one sign vector.
///
/// # Panics
///
/// Panics if `words` is shorter than [`words_for_dim`]`(values.len())`.
pub fn pack_f32_signs_checked(values: &[f32], words: &mut [u64]) -> bool {
    pack_f32_signs_into(values, words);
    values.iter().all(|&v| v == 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> HdcRng {
        HdcRng::seed_from(seed)
    }

    #[test]
    fn zeros_has_no_set_bits() {
        let z = BinaryHypervector::zeros(130);
        assert_eq!(z.dim(), 130);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.as_words().len(), 3);
    }

    #[test]
    fn set_get_flip_round_trip() {
        let mut v = BinaryHypervector::zeros(70);
        v.set(0, true);
        v.set(69, true);
        assert!(v.get(0));
        assert!(v.get(69));
        assert!(!v.get(33));
        v.flip(69);
        assert!(!v.get(69));
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BinaryHypervector::zeros(10).get(10);
    }

    #[test]
    fn random_vectors_are_roughly_balanced() {
        let v = BinaryHypervector::random(10_000, &mut rng(1));
        let ones = v.count_ones();
        assert!((4_500..5_500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn xor_bind_is_self_inverse() {
        let a = BinaryHypervector::random(512, &mut rng(2));
        let b = BinaryHypervector::random(512, &mut rng(3));
        let bound = a.bind(&b).unwrap();
        let unbound = bound.bind(&b).unwrap();
        assert_eq!(unbound, a);
    }

    #[test]
    fn bind_dimension_mismatch_is_error() {
        let a = BinaryHypervector::zeros(64);
        let b = BinaryHypervector::zeros(65);
        assert!(matches!(a.bind(&b), Err(HdcError::DimensionMismatch { .. })));
    }

    #[test]
    fn hamming_distance_counts_differences() {
        let mut a = BinaryHypervector::zeros(100);
        let mut b = BinaryHypervector::zeros(100);
        a.set(1, true);
        a.set(2, true);
        b.set(2, true);
        b.set(3, true);
        assert_eq!(a.hamming_distance(&b).unwrap(), 2);
    }

    #[test]
    fn similarity_of_identical_is_one_and_of_complement_is_minus_one() {
        let a = BinaryHypervector::random(256, &mut rng(4));
        assert_eq!(a.similarity(&a).unwrap(), 1.0);
        let mut complement = a.clone();
        for i in 0..a.dim() {
            complement.flip(i);
        }
        assert_eq!(a.similarity(&complement).unwrap(), -1.0);
    }

    #[test]
    fn random_vectors_are_nearly_orthogonal() {
        let a = BinaryHypervector::random(8192, &mut rng(5));
        let b = BinaryHypervector::random(8192, &mut rng(6));
        let s = a.similarity(&b).unwrap();
        assert!(s.abs() < 0.06, "similarity {s}");
    }

    #[test]
    fn dense_round_trip_preserves_signs() {
        let dense = Hypervector::from_vec(vec![0.5, -0.1, 0.0, -3.0, 2.0]);
        let bin = BinaryHypervector::from_dense(&dense);
        let back = bin.to_dense();
        assert_eq!(back.as_slice(), &[1.0, -1.0, 1.0, -1.0, 1.0]);
    }

    #[test]
    fn majority_follows_the_majority() {
        let mut a = BinaryHypervector::zeros(8);
        let mut b = BinaryHypervector::zeros(8);
        let c = BinaryHypervector::zeros(8);
        a.set(0, true);
        b.set(0, true);
        a.set(1, true);
        let m = BinaryHypervector::majority(&[a, b, c], 0).unwrap();
        assert!(m.get(0), "two of three vectors set bit 0");
        assert!(!m.get(1), "only one of three vectors set bit 1");
    }

    #[test]
    fn majority_of_empty_set_is_error() {
        assert!(matches!(BinaryHypervector::majority(&[], 0), Err(HdcError::InvalidArgument(_))));
    }

    #[test]
    fn majority_preserves_similarity_to_members() {
        let mut r = rng(7);
        let members: Vec<_> = (0..9).map(|_| BinaryHypervector::random(4096, &mut r)).collect();
        let bundle = BinaryHypervector::majority(&members, 11).unwrap();
        let outsider = BinaryHypervector::random(4096, &mut r);
        let member_sim = bundle.similarity(&members[0]).unwrap();
        let outsider_sim = bundle.similarity(&outsider).unwrap();
        assert!(
            member_sim > outsider_sim + 0.1,
            "member {member_sim} should be far more similar than outsider {outsider_sim}"
        );
    }

    #[test]
    fn from_level_signs_matches_from_dense_convention() {
        let levels = [3, -1, 0, -7, 1];
        let packed = BinaryHypervector::from_level_signs(&levels);
        let dense = Hypervector::from_vec(vec![3.0, -1.0, 0.0, -7.0, 1.0]);
        assert_eq!(packed, BinaryHypervector::from_dense(&dense));
    }

    #[test]
    fn pack_signs_into_places_bits_and_clears_stale_words() {
        let mut words = [u64::MAX; 2];
        pack_signs_into((0..70).map(|i| i % 3 == 0), &mut words);
        let mut expected = BinaryHypervector::zeros(70);
        for i in (0..70).step_by(3) {
            expected.set(i, true);
        }
        assert_eq!(&words, expected.as_words());
        assert_eq!(words_for_dim(70), 2);
        assert_eq!(words_for_dim(64), 1);
        assert_eq!(words_for_dim(0), 0);
    }

    #[test]
    fn f32_sign_packing_matches_the_generic_path() {
        let mut r = rng(31);
        for len in [0usize, 1, 63, 64, 65, 128, 200] {
            let values: Vec<f32> = (0..len).map(|_| r.standard_normal() as f32).collect();
            let mut fast = vec![u64::MAX; words_for_dim(len)];
            let mut reference = vec![u64::MAX; words_for_dim(len)];
            pack_f32_signs_into(&values, &mut fast);
            pack_signs_into(values.iter().map(|&v| v >= 0.0), &mut reference);
            assert_eq!(fast, reference, "len {len}");
        }
    }

    #[test]
    fn checked_sign_packing_flags_only_the_all_zero_vector() {
        let mut words = vec![0u64; 2];
        assert!(pack_f32_signs_checked(&[0.0; 70], &mut words));
        assert_eq!(words, vec![u64::MAX, (1u64 << 6) - 1]);
        // A single nonzero (even a negative zero is still == 0.0, so use a
        // real value) clears the flag; the packed bits match the plain path.
        let mut values = vec![0.0f32; 70];
        values[65] = -0.25;
        assert!(!pack_f32_signs_checked(&values, &mut words));
        let mut reference = vec![0u64; 2];
        pack_f32_signs_into(&values, &mut reference);
        assert_eq!(words, reference);
    }

    /// Bit-by-bit rotation oracle for the word-level `permute`.
    fn naive_permute(v: &BinaryHypervector, shift: isize) -> BinaryHypervector {
        let dim = v.dim();
        let mut out = BinaryHypervector::zeros(dim);
        for i in 0..dim {
            if v.get(i) {
                out.set((i as isize + shift).rem_euclid(dim as isize) as usize, true);
            }
        }
        out
    }

    #[test]
    fn permute_matches_the_bit_by_bit_reference() {
        let mut r = rng(40);
        for dim in [1usize, 7, 63, 64, 65, 128, 200, 511] {
            let v = BinaryHypervector::random(dim, &mut r);
            let d = dim as isize;
            for shift in [0, 1, -1, 5, 63, 64, 65, d - 1, d, d + 3, -d - 5, 10 * d + 17] {
                assert_eq!(v.permute(shift), naive_permute(&v, shift), "dim {dim} shift {shift}");
            }
        }
    }

    #[test]
    fn permute_is_self_inverse_with_the_negated_shift() {
        let mut r = rng(41);
        for dim in [3usize, 64, 100, 320, 777] {
            let v = BinaryHypervector::random(dim, &mut r);
            for shift in [1isize, 13, 64, 200, -7, -(dim as isize) - 3] {
                assert_eq!(v.permute(shift).permute(-shift), v, "dim {dim} shift {shift}");
                // Full-cycle rotation is the identity too.
                assert_eq!(v.permute(dim as isize), v, "dim {dim}");
            }
        }
    }

    #[test]
    fn permute_distributes_over_bind() {
        let mut r = rng(42);
        for dim in [65usize, 256, 300] {
            let a = BinaryHypervector::random(dim, &mut r);
            let b = BinaryHypervector::random(dim, &mut r);
            for shift in [1isize, 37, -19] {
                let lhs = a.bind(&b).unwrap().permute(shift);
                let rhs = a.permute(shift).bind(&b.permute(shift)).unwrap();
                assert_eq!(lhs, rhs, "dim {dim} shift {shift}");
            }
        }
    }

    #[test]
    fn permute_preserves_population_and_hamming_distance() {
        let mut r = rng(43);
        let a = BinaryHypervector::random(500, &mut r);
        let b = BinaryHypervector::random(500, &mut r);
        let d = a.hamming_distance(&b).unwrap();
        for shift in [1isize, 123, -77] {
            let pa = a.permute(shift);
            let pb = b.permute(shift);
            assert_eq!(pa.count_ones(), a.count_ones(), "shift {shift}");
            assert_eq!(pa.hamming_distance(&pb).unwrap(), d, "shift {shift}");
            // Permutation decorrelates: a rotated copy of a random vector
            // is near orthogonal to the original.
            assert!(pa.similarity(&a).unwrap().abs() < 0.2, "shift {shift}");
        }
        // The tail-word invariant survives rotation at a non-word-aligned dim.
        let rotated = a.permute(63);
        assert_eq!(rotated.as_words().last().unwrap() >> (500 % 64), 0);
    }

    #[test]
    fn permute_handles_degenerate_dimensions() {
        let empty = BinaryHypervector::zeros(0);
        assert_eq!(empty.permute(5), empty);
        let mut one = BinaryHypervector::zeros(1);
        one.set(0, true);
        assert_eq!(one.permute(3), one, "dim-1 rotation is the identity");
    }

    #[test]
    fn permuted_operands_still_enforce_dimension_checks() {
        let a = BinaryHypervector::random(128, &mut rng(44));
        let b = BinaryHypervector::random(129, &mut rng(45));
        let (pa, pb) = (a.permute(9), b.permute(9));
        assert!(matches!(pa.bind(&pb), Err(HdcError::DimensionMismatch { .. })));
        assert!(matches!(pa.hamming_distance(&pb), Err(HdcError::DimensionMismatch { .. })));
    }

    #[test]
    fn majority_tie_break_rule_is_pinned() {
        // Two inputs that tie on every bit: the tie vector is drawn from
        // `HdcRng::seed_from(tie_seed)` as sequential `bernoulli(0.5)`
        // calls in bit-index order.  This exact rule is a persistence
        // contract — bundled vectors must be reproducible across runs and
        // releases — so the expected bits are derived here from the RNG
        // itself, not from a stored constant.
        let dim = 130;
        let mut a = BinaryHypervector::zeros(dim);
        let mut b = BinaryHypervector::zeros(dim);
        for i in 0..dim {
            if i % 2 == 0 {
                a.set(i, true);
            } else {
                b.set(i, true);
            }
        }
        let tie_seed = 0xBEEF;
        let bundle = BinaryHypervector::majority(&[a.clone(), b.clone()], tie_seed).unwrap();
        let mut tie_rng = HdcRng::seed_from(tie_seed);
        for i in 0..dim {
            assert_eq!(bundle.get(i), tie_rng.bernoulli(0.5), "tie bit {i}");
        }
        // Non-tied bits consume no tie draws: make bit 0 unanimous; every
        // other bit still ties, and the draw sequence starts at bit 1.
        b.set(0, true);
        let mixed = BinaryHypervector::majority(&[a, b], tie_seed).unwrap();
        assert!(mixed.get(0), "bit 0 is unanimous");
        let mut tie_rng = HdcRng::seed_from(tie_seed);
        for i in 1..dim {
            assert_eq!(mixed.get(i), tie_rng.bernoulli(0.5), "tie bit {i} after a skipped bit");
        }
    }

    #[test]
    fn word_filled_random_respects_the_tail_mask() {
        let v = BinaryHypervector::random(70, &mut rng(9));
        // Bits beyond dim stay zero even though whole words were drawn.
        let tail = v.as_words()[1] >> (70 % 64);
        assert_eq!(tail, 0);
    }

    #[test]
    fn mask_tail_clears_out_of_range_bits() {
        let mut v = BinaryHypervector::zeros(70);
        v.as_mut_words()[1] = u64::MAX;
        v.mask_tail();
        assert_eq!(v.count_ones(), 6, "only the 6 in-range bits of the last word remain");
    }
}

//! An append-only, checksummed write-ahead log (WAL).
//!
//! The drift-adaptive serving layer persists its event stream through this
//! module so a crashed lane can be rebuilt by replaying the log (the
//! serial-replay determinism contract makes the rebuilt model bit-identical
//! to the lane that never crashed).  The format is deliberately minimal:
//!
//! ```text
//! file   := header record*
//! header := magic "CYWL" | version u32 (little-endian)
//! record := len u32 | crc u32 | payload (len bytes)
//! ```
//!
//! `crc` is the [`crate::codec::crc32`] of the payload alone, so every
//! record is independently verifiable.  Payloads are opaque bytes — callers
//! encode them with the [`crate::codec`] writer.
//!
//! # Crash semantics
//!
//! * **Torn tails are repaired, not fatal.**  [`scan`] walks the records in
//!   order and stops at the first frame that is truncated or fails its
//!   checksum; everything before it is the *valid prefix*, everything after
//!   is dropped.  [`Writer::resume`] truncates the file back to that prefix
//!   so appends continue from the last durable record.
//! * **Arbitrary byte soup never panics.**  [`scan`] is total: corrupted
//!   length prefixes, mid-record truncation and flipped checksum bytes all
//!   surface as a shortened valid prefix (or [`WalError::NotAWal`] when the
//!   8-byte header itself is damaged — a file that may not be a log is
//!   refused rather than truncated).
//! * **Durability is batched.**  [`Writer::append`] only buffers in memory;
//!   [`Writer::flush`] writes the buffered frames and `fsync`s once, so the
//!   durability cost is paid per micro-batch rather than per event.  Events
//!   buffered but not yet flushed are lost in a crash — by design, the same
//!   amortization the serving layer's micro-batcher already makes.

use std::error::Error;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::codec::crc32;

/// Magic tag opening every WAL file.
pub const MAGIC: &[u8; 4] = b"CYWL";

/// Format version written by this build.
pub const VERSION: u32 = 1;

/// Bytes of the file header (magic + version).
pub const HEADER_LEN: usize = 8;

/// Bytes of a record frame before its payload (length + checksum).
pub const FRAME_LEN: usize = 8;

/// Upper bound on one record's payload, guarding recovery against a
/// corrupted length prefix that happens to pass the remaining-bytes check.
pub const MAX_RECORD_LEN: usize = 1 << 30;

/// Errors produced by the write-ahead log.
#[derive(Debug)]
#[non_exhaustive]
pub enum WalError {
    /// An underlying I/O operation failed; the string names the file and
    /// the operation.
    Io(String),
    /// The file exists but does not open with a valid WAL header — it may
    /// be some other file entirely, so it is refused rather than truncated.
    NotAWal(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(what) => write!(f, "wal i/o error: {what}"),
            WalError::NotAWal(what) => write!(f, "not a write-ahead log: {what}"),
        }
    }
}

impl Error for WalError {}

/// WAL-local result alias.
pub type WalResult<T> = std::result::Result<T, WalError>;

/// Frames one payload as a WAL record (`len | crc | payload`).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(FRAME_LEN + payload.len());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// The result of scanning a WAL byte image: the records of the valid
/// prefix, how long that prefix is, and how much tail (if any) was dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Payloads of every intact record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of the valid prefix (header plus intact records); a resumed
    /// writer truncates the file to this length before appending.
    pub valid_len: usize,
    /// Bytes beyond the valid prefix — a torn or corrupted tail that will
    /// be dropped on resume (`0` for a clean log).
    pub truncated: usize,
}

impl ScanOutcome {
    /// `true` when the scan dropped a torn or corrupted tail.
    pub fn damaged(&self) -> bool {
        self.truncated > 0
    }
}

/// Scans a whole WAL file image (header included).  Total: any byte soup
/// yields either a [`ScanOutcome`] or [`WalError::NotAWal`], never a panic.
///
/// A file too short to hold the header counts as an empty log with a
/// fully-torn tail (`valid_len == 0`): the header itself was lost
/// mid-write, so a resumed writer rewrites it from scratch.
///
/// # Errors
///
/// Returns [`WalError::NotAWal`] when the 8 header bytes are present but
/// hold the wrong magic or version — the file may not be a log at all, so
/// it is refused instead of repaired.
pub fn scan(bytes: &[u8]) -> WalResult<ScanOutcome> {
    if bytes.len() < HEADER_LEN {
        return Ok(ScanOutcome { records: Vec::new(), valid_len: 0, truncated: bytes.len() });
    }
    if &bytes[..4] != MAGIC {
        return Err(WalError::NotAWal(format!(
            "magic {:02X?} (expected {MAGIC:02X?})",
            &bytes[..4]
        )));
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(WalError::NotAWal(format!(
            "format version {version} (this build reads version {VERSION})"
        )));
    }
    let body = scan_records(&bytes[HEADER_LEN..]);
    let valid_len = HEADER_LEN + body.valid_len;
    Ok(ScanOutcome { records: body.records, valid_len, truncated: bytes.len() - valid_len })
}

/// Scans a record stream (no header).  Stops at the first truncated frame,
/// oversized length prefix or checksum mismatch; never panics.
pub fn scan_records(body: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while body.len() - pos >= FRAME_LEN {
        let len =
            u32::from_le_bytes([body[pos], body[pos + 1], body[pos + 2], body[pos + 3]]) as usize;
        let crc = u32::from_le_bytes([body[pos + 4], body[pos + 5], body[pos + 6], body[pos + 7]]);
        if len > MAX_RECORD_LEN || len > body.len() - pos - FRAME_LEN {
            break;
        }
        let payload = &body[pos + FRAME_LEN..pos + FRAME_LEN + len];
        if crc32(payload) != crc {
            break;
        }
        records.push(payload.to_vec());
        pos += FRAME_LEN + len;
    }
    ScanOutcome { records, valid_len: pos, truncated: body.len() - pos }
}

/// Reads and scans a WAL file from disk.
///
/// # Errors
///
/// Returns [`WalError::Io`] when the file cannot be read and
/// [`WalError::NotAWal`] for a damaged header (see [`scan`]).
pub fn read_file(path: impl AsRef<Path>) -> WalResult<ScanOutcome> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)
        .map_err(|e| WalError::Io(format!("reading {}: {e}", path.display())))?;
    scan(&bytes)
}

/// An append-only WAL writer with batched durability.
///
/// Appends buffer in memory; [`Writer::flush`] writes them and `fsync`s
/// once.  [`Writer::durable_len`] is the file length known to be on disk —
/// the valid prefix a crash at any later moment recovers to (plus whatever
/// the OS happened to persist of a torn final write, which [`scan`]
/// repairs).
#[derive(Debug)]
pub struct Writer {
    file: File,
    path: PathBuf,
    buf: Vec<u8>,
    pending_records: usize,
    durable_len: u64,
}

impl Writer {
    /// Creates (or truncates to empty) the log at `path` and durably writes
    /// the header.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] on any filesystem failure.
    pub fn create(path: impl AsRef<Path>) -> WalResult<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| WalError::Io(format!("creating {}: {e}", path.display())))?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        file.write_all(&header)
            .and_then(|()| file.sync_data())
            .map_err(|e| WalError::Io(format!("writing header of {}: {e}", path.display())))?;
        Ok(Self { file, path, buf: Vec::new(), pending_records: 0, durable_len: HEADER_LEN as u64 })
    }

    /// Resumes appending to an existing log whose valid prefix (as reported
    /// by [`scan`]) is `valid_len` bytes: the file is truncated back to the
    /// prefix — dropping any torn tail — and appends continue from there.
    ///
    /// A `valid_len` shorter than the header (a log that died mid-header)
    /// recreates the file from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] on any filesystem failure.
    pub fn resume(path: impl AsRef<Path>, valid_len: u64) -> WalResult<Self> {
        if valid_len < HEADER_LEN as u64 {
            return Self::create(path);
        }
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| WalError::Io(format!("opening {}: {e}", path.display())))?;
        file.set_len(valid_len)
            .and_then(|()| file.sync_data())
            .and_then(|()| file.seek(SeekFrom::End(0)).map(|_| ()))
            .map_err(|e| WalError::Io(format!("truncating {}: {e}", path.display())))?;
        Ok(Self { file, path, buf: Vec::new(), pending_records: 0, durable_len: valid_len })
    }

    /// Buffers one record for the next [`Writer::flush`].  No I/O happens
    /// here; a crash before the flush loses the buffered records (the
    /// batched-durability contract).
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] for a payload larger than
    /// [`MAX_RECORD_LEN`] (it could never be recovered).
    pub fn append(&mut self, payload: &[u8]) -> WalResult<()> {
        if payload.len() > MAX_RECORD_LEN {
            return Err(WalError::Io(format!(
                "record of {} bytes exceeds the {MAX_RECORD_LEN}-byte limit",
                payload.len()
            )));
        }
        self.buf.extend_from_slice(&frame(payload));
        self.pending_records += 1;
        Ok(())
    }

    /// Records buffered since the last flush.
    pub fn pending(&self) -> usize {
        self.pending_records
    }

    /// Bytes buffered since the last flush.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Writes every buffered record and `fsync`s once — the batched
    /// durability point.  A no-op when nothing is buffered.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] on write or sync failure; the buffer is
    /// kept so the flush can be retried.
    pub fn flush(&mut self) -> WalResult<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.file
            .write_all(&self.buf)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| WalError::Io(format!("flushing {}: {e}", self.path.display())))?;
        self.durable_len += self.buf.len() as u64;
        self.buf.clear();
        self.pending_records = 0;
        Ok(())
    }

    /// File length known to be durable on disk.
    pub fn durable_len(&self) -> u64 {
        self.durable_len
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cyberhd_wal_{name}_{}", std::process::id()))
    }

    #[test]
    fn frame_and_scan_round_trip() {
        let payloads: Vec<Vec<u8>> = vec![b"".to_vec(), b"a".to_vec(), vec![0xFF; 300]];
        let mut body = Vec::new();
        for p in &payloads {
            body.extend_from_slice(&frame(p));
        }
        let scanned = scan_records(&body);
        assert_eq!(scanned.records, payloads);
        assert_eq!(scanned.valid_len, body.len());
        assert!(!scanned.damaged());
    }

    #[test]
    fn torn_tail_is_dropped_at_every_truncation_point() {
        let mut body = Vec::new();
        for i in 0..5u8 {
            body.extend_from_slice(&frame(&[i; 17]));
        }
        for cut in 0..body.len() {
            let scanned = scan_records(&body[..cut]);
            let whole = cut / (FRAME_LEN + 17);
            assert_eq!(scanned.records.len(), whole, "cut at {cut}");
            assert_eq!(scanned.valid_len, whole * (FRAME_LEN + 17));
            assert_eq!(scanned.damaged(), cut != scanned.valid_len);
        }
    }

    #[test]
    fn corrupted_bytes_shorten_the_valid_prefix() {
        let mut body = Vec::new();
        for i in 0..4u8 {
            body.extend_from_slice(&frame(&[i; 9]));
        }
        let record = FRAME_LEN + 9;
        // Flip one payload byte of record 2: records 0-1 survive.
        let mut bad = body.clone();
        bad[2 * record + FRAME_LEN] ^= 0x10;
        let scanned = scan_records(&bad);
        assert_eq!(scanned.records.len(), 2);
        assert!(scanned.damaged());
        // A corrupted length prefix stops the scan there too.
        let mut bad = body;
        bad[record] = 0xFF;
        bad[record + 3] = 0xFF;
        assert_eq!(scan_records(&bad).records.len(), 1);
    }

    #[test]
    fn scan_never_panics_on_byte_soup() {
        let mut state = 0x9E37_79B9_u64;
        for len in 0..200 {
            let soup: Vec<u8> = (0..len)
                .map(|_| {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (state >> 33) as u8
                })
                .collect();
            let _ = scan_records(&soup);
            let _ = scan(&soup);
        }
    }

    #[test]
    fn scan_refuses_a_wrong_header_but_repairs_a_short_one() {
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&VERSION.to_le_bytes());
        file.extend_from_slice(&frame(b"x"));
        assert_eq!(scan(&file).unwrap().records, vec![b"x".to_vec()]);

        let mut wrong_magic = file.clone();
        wrong_magic[0] ^= 0x01;
        assert!(matches!(scan(&wrong_magic), Err(WalError::NotAWal(_))));
        let mut wrong_version = file.clone();
        wrong_version[4] = 9;
        assert!(matches!(scan(&wrong_version), Err(WalError::NotAWal(_))));

        let short = &file[..5];
        let scanned = scan(short).unwrap();
        assert_eq!(scanned.valid_len, 0);
        assert!(scanned.damaged());
    }

    #[test]
    fn writer_appends_flushes_and_resumes() {
        let path = temp("resume");
        let mut w = Writer::create(&path).unwrap();
        w.append(b"one").unwrap();
        w.append(b"two").unwrap();
        assert_eq!(w.pending(), 2);
        w.flush().unwrap();
        assert_eq!(w.pending(), 0);
        // Buffered but unflushed records are not durable.
        w.append(b"lost").unwrap();
        let durable = w.durable_len();
        drop(w);

        let scanned = read_file(&path).unwrap();
        assert_eq!(scanned.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(scanned.valid_len as u64, durable);

        // Simulate a torn write, then resume: the tail is truncated away.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        }
        let scanned = read_file(&path).unwrap();
        assert!(scanned.damaged());
        let mut w = Writer::resume(&path, scanned.valid_len as u64).unwrap();
        w.append(b"three").unwrap();
        w.flush().unwrap();
        drop(w);
        let scanned = read_file(&path).unwrap();
        assert_eq!(scanned.records, vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]);
        assert!(!scanned.damaged());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_below_the_header_recreates_the_log() {
        let path = temp("recreate");
        std::fs::write(&path, [1, 2, 3]).unwrap();
        let scanned = read_file(&path).unwrap();
        assert_eq!(scanned.valid_len, 0);
        let mut w = Writer::resume(&path, scanned.valid_len as u64).unwrap();
        w.append(b"fresh").unwrap();
        w.flush().unwrap();
        drop(w);
        assert_eq!(read_file(&path).unwrap().records, vec![b"fresh".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_records_are_refused() {
        let path = temp("oversized");
        let mut w = Writer::create(&path).unwrap();
        let huge = vec![0u8; MAX_RECORD_LEN + 1];
        assert!(w.append(&huge).is_err());
        std::fs::remove_file(&path).ok();
    }
}

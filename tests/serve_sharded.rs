//! Integration suite for `cyberhd::serve::shard` — the sharded
//! many-tenant serving engine.
//!
//! Pins the property the whole subsystem is built on: **sharding is
//! invisible in the verdicts**.  A ticket's verdict is bit-identical to
//! one [`Detector::detect_batch`] call over the tenant's flows in
//! submission order, for every shard count, arrival interleaving, flush
//! boundary, and flusher-thread schedule — including through the
//! admission-control shed path, the backpressure path, registry hot-swaps
//! mid-stream, and remove + re-register churn racing in-flight batches on
//! other shards.

use cyberhd::serve::ServeError;
use cyberhd_suite::prelude::*;
use hdc::rng::HdcRng;
use std::sync::Arc;
use std::time::Duration;

fn generate(kind: DatasetKind, samples: usize, seed: u64) -> Dataset {
    kind.generate(&SyntheticConfig::new(samples, seed).difficulty(1.3))
        .expect("synthetic generation")
}

/// One detector per backend shape, keyed off the dataset kind so the
/// sweep exercises dense, 1-bit, 2-bit and open-set scoring.
fn shaped_detector(kind: DatasetKind, data: &Dataset, seed: u64) -> Detector {
    let builder = Detector::builder().dimension(192).retrain_epochs(1).seed(seed);
    match kind {
        DatasetKind::NslKdd => builder,
        DatasetKind::UnswNb15 => builder.quantize(BitWidth::B1),
        DatasetKind::CicIds2017 => builder.open_set(0.05),
        DatasetKind::CicIds2018 => builder.quantize(BitWidth::B2),
    }
    .train(data)
    .expect("training succeeds")
}

/// A tenant name FNV-routed to `shard` — tests that need two tenants on
/// the same (or provably different) shards pick names instead of hoping.
fn tenant_on_shard(engine: &ShardedServeEngine, shard: usize, hint: &str) -> String {
    (0..10_000)
        .map(|i| format!("{hint}-{i}"))
        .find(|tenant| engine.shard_of(tenant) == shard)
        .expect("some name hashes to every shard")
}

#[test]
fn verdicts_are_bit_identical_across_shard_counts_and_interleavings() {
    for kind in DatasetKind::ALL {
        let data = generate(kind, 420, 31);
        let detector = shaped_detector(kind, &data, 7);

        // Five tenants, each with its own slice of the corpus; the oracle
        // is one detect_batch per tenant over its flows in order.
        let tenants: Vec<String> = (0..5).map(|t| format!("edge-{t}")).collect();
        let slices: Vec<Vec<Vec<f32>>> = (0..tenants.len())
            .map(|t| {
                data.records().iter().skip(t).step_by(tenants.len()).take(36).cloned().collect()
            })
            .collect();
        let oracles: Vec<Vec<Verdict>> =
            slices.iter().map(|s| detector.detect_batch(s).unwrap()).collect();
        let total: usize = slices.iter().map(Vec::len).sum();

        for shards in [1usize, 2, 8] {
            // >= 3 seeded interleavings per (kind, shard count), each with
            // randomized micro-batch watermarks and flush boundaries, with
            // background deadline-wheel flushers live (under `parallel`).
            for trial in 0..3u64 {
                let mut rng = HdcRng::seed_from(10_000 * trial + 100 * shards as u64 + kind as u64);
                let registry = Arc::new(DetectorRegistry::new());
                for tenant in &tenants {
                    registry.register(tenant, detector.clone()).unwrap();
                }
                let config = ShardConfig {
                    shards,
                    serve: ServeConfig {
                        max_batch: 3 + rng.index(14),
                        max_delay: Duration::from_millis(20),
                        ..ServeConfig::default()
                    },
                    wheel_slots: 64,
                    ..ShardConfig::default()
                };
                let engine = ShardedServeEngine::new(Arc::clone(&registry), config).unwrap();

                // Random merge of the five arrival streams, preserving
                // each tenant's internal order; random explicit flushes
                // and caller polls race the background flushers.
                let mut next = vec![0usize; tenants.len()];
                let mut tickets: Vec<Vec<Ticket>> = vec![Vec::new(); tenants.len()];
                for _ in 0..total {
                    let live: Vec<usize> =
                        (0..tenants.len()).filter(|&t| next[t] < slices[t].len()).collect();
                    let t = live[rng.index(live.len())];
                    tickets[t].push(engine.submit(&tenants[t], &slices[t][next[t]]).unwrap());
                    next[t] += 1;
                    if rng.bernoulli(0.08) {
                        engine.flush(&tenants[rng.index(tenants.len())]).unwrap();
                    }
                    if rng.bernoulli(0.04) {
                        engine.poll();
                    }
                }
                engine.flush_all();

                for (t, tenant) in tenants.iter().enumerate() {
                    for (i, (ticket, want)) in tickets[t].iter().zip(&oracles[t]).enumerate() {
                        let got = engine.take(ticket).unwrap();
                        assert_eq!(
                            got.class, want.class,
                            "{kind:?} {tenant} flow {i} shards {shards} trial {trial}"
                        );
                        assert_eq!(
                            got.similarity.to_bits(),
                            want.similarity.to_bits(),
                            "{kind:?} {tenant} flow {i} shards {shards} trial {trial}: \
                             similarity must be bit-exact"
                        );
                        assert_eq!(
                            got.novel, want.novel,
                            "{kind:?} {tenant} flow {i} shards {shards} trial {trial}"
                        );
                    }
                }

                // The fleet snapshot accounts for every flow exactly once.
                let fleet = engine.fleet_stats().unwrap();
                assert_eq!(fleet.tenant, "fleet");
                assert_eq!(fleet.flows_submitted, total as u64);
                assert_eq!(fleet.flows_served, total as u64);
                assert_eq!(fleet.uncollected, 0);
                assert_eq!(fleet.queue_depth, 0);
                assert_eq!(engine.outstanding(), 0);
            }
        }
    }
}

#[test]
fn hot_swap_mid_stream_stays_atomic_per_batch_under_sharding() {
    let data = generate(DatasetKind::NslKdd, 600, 41);
    // Different shapes => same schema, different weights and verdicts.
    let v1 = Detector::builder().dimension(160).retrain_epochs(1).seed(1).train(&data).unwrap();
    let v2 = Detector::builder().dimension(224).retrain_epochs(2).seed(99).train(&data).unwrap();
    let flows: Vec<Vec<f32>> = data.records()[..60].to_vec();
    let oracle_v1 = v1.detect_batch(&flows).unwrap();
    let oracle_v2 = v2.detect_batch(&flows).unwrap();
    assert_ne!(
        oracle_v1.iter().map(|v| v.class).collect::<Vec<_>>(),
        oracle_v2.iter().map(|v| v.class).collect::<Vec<_>>(),
        "the two artifact versions must disagree somewhere for this test to have power"
    );

    let registry = Arc::new(DetectorRegistry::new());
    // Long max_delay + no background flushers: the pending tail at swap
    // time is deterministic (nothing flushes behind the test's back).
    let engine = ShardedServeEngine::new(
        Arc::clone(&registry),
        ShardConfig {
            shards: 4,
            serve: ServeConfig {
                max_batch: 8,
                max_delay: Duration::from_secs(5),
                ..ServeConfig::default()
            },
            background_flush: false,
            ..ShardConfig::default()
        },
    )
    .unwrap();
    // Two tenants on provably different shards: one gets swapped
    // mid-stream, the other must not notice.
    let swapped = tenant_on_shard(&engine, 0, "swapped");
    let steady = tenant_on_shard(&engine, 1, "steady");
    registry.register(&swapped, v1.clone()).unwrap();
    registry.register(&steady, v1.clone()).unwrap();

    // 20 flows each admitted under v1; the last 4 (20 % 8) are still
    // pending on each shard when the registry swaps one tenant.
    let swapped_v1: Vec<Ticket> =
        flows[..20].iter().map(|r| engine.submit(&swapped, r).unwrap()).collect();
    let steady_head: Vec<Ticket> =
        flows[..20].iter().map(|r| engine.submit(&steady, r).unwrap()).collect();
    assert_eq!(engine.stats(&swapped).unwrap().queue_depth, 4);
    assert_eq!(registry.swap(&swapped, v2).unwrap(), 2);
    let swapped_v2: Vec<Ticket> =
        flows[20..].iter().map(|r| engine.submit(&swapped, r).unwrap()).collect();
    let steady_tail: Vec<Ticket> =
        flows[20..].iter().map(|r| engine.submit(&steady, r).unwrap()).collect();
    engine.flush_all();

    for (i, ticket) in swapped_v1.iter().enumerate() {
        assert_eq!(
            engine.take(ticket).unwrap(),
            oracle_v1[i],
            "flow {i} was admitted under v1 and must score on v1 even though it flushed after \
             the swap"
        );
    }
    for (i, ticket) in swapped_v2.iter().enumerate() {
        assert_eq!(
            engine.take(ticket).unwrap(),
            oracle_v2[20 + i],
            "flow {} was admitted under v2 and must score on v2",
            20 + i
        );
    }
    // The un-swapped tenant on the other shard served v1 throughout.
    for (ticket, want) in steady_head.iter().chain(&steady_tail).zip(&oracle_v1) {
        assert_eq!(engine.take(ticket).unwrap(), *want);
    }
    assert_eq!(engine.stats(&swapped).unwrap().detector_version, 2);
    assert_eq!(engine.stats(&steady).unwrap().detector_version, 1);
}

#[test]
fn admission_sheds_are_typed_and_served_flows_stay_bit_identical() {
    let data = generate(DatasetKind::UnswNb15, 400, 43);
    let detector =
        Detector::builder().dimension(128).retrain_epochs(1).seed(5).train(&data).unwrap();

    // --- Quota shedding: an exhausted token bucket sheds before any
    // queue is touched, and the admitted prefix still matches the oracle.
    let registry = Arc::new(DetectorRegistry::new());
    let engine = ShardedServeEngine::new(
        Arc::clone(&registry),
        ShardConfig {
            shards: 2,
            background_flush: false,
            admission: Some(AdmissionConfig {
                default_quota: Some(TenantQuota { rate_per_sec: 0, burst: 4 }),
                ..AdmissionConfig::default()
            }),
            ..ShardConfig::default()
        },
    )
    .unwrap();
    registry.register("metered", detector.clone()).unwrap();
    let accepted: Vec<Ticket> =
        data.records()[..4].iter().map(|r| engine.submit("metered", r).unwrap()).collect();
    match engine.submit("metered", &data.records()[4]) {
        Err(ServeError::Shed { tenant, retry_hint }) => {
            assert_eq!(tenant, "metered");
            assert!(retry_hint > Duration::ZERO);
        }
        other => panic!("quota exhaustion must shed, got {other:?}"),
    }
    engine.flush_all();
    let oracle = detector.detect_batch(&data.records()[..4]).unwrap();
    for (ticket, want) in accepted.iter().zip(&oracle) {
        assert_eq!(&engine.take(ticket).unwrap(), want, "shedding must not disturb admitted flows");
    }
    let stats = engine.admission_stats();
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.shed_quota, 1);
    assert_eq!(stats.shed_overload, 0);
    assert_eq!(stats.shed_total(), 1);
    assert_eq!(engine.stats("metered").unwrap().flows_submitted, 4, "the shed flow left no trace");

    // --- Priority-watermark shedding: as one shard's outstanding work
    // climbs, Low sheds at 0.5, Normal at 0.75, everyone at capacity —
    // while quota-free tenants on the same shard above the bar stay in.
    let registry = Arc::new(DetectorRegistry::new());
    let engine = ShardedServeEngine::new(
        Arc::clone(&registry),
        ShardConfig {
            shards: 2,
            background_flush: false,
            serve: ServeConfig { max_batch: 64, ..ServeConfig::default() },
            admission: Some(AdmissionConfig { shard_capacity: 8, ..AdmissionConfig::default() }),
            ..ShardConfig::default()
        },
    )
    .unwrap();
    let low = tenant_on_shard(&engine, 0, "bulk");
    let normal = tenant_on_shard(&engine, 0, "web");
    let high = tenant_on_shard(&engine, 0, "ops");
    for tenant in [&low, &normal, &high] {
        registry.register(tenant, detector.clone()).unwrap();
    }
    engine.set_priority(&low, Priority::Low);
    engine.set_priority(&high, Priority::High);

    // Fill the shared shard to 4/8 outstanding: the Low tenant is now
    // over its watermark, everyone else still gets in.
    for record in &data.records()[..4] {
        engine.submit(&high, record).unwrap();
    }
    assert!(
        matches!(engine.submit(&low, &data.records()[4]), Err(ServeError::Shed { .. })),
        "Low priority sheds at the 0.5 occupancy watermark"
    );
    engine.submit(&normal, &data.records()[4]).unwrap();
    engine.submit(&high, &data.records()[5]).unwrap();
    // 6/8 outstanding: Normal sheds too, High still in.
    assert!(matches!(engine.submit(&normal, &data.records()[6]), Err(ServeError::Shed { .. })));
    engine.submit(&high, &data.records()[6]).unwrap();
    engine.submit(&high, &data.records()[7]).unwrap();
    // 8/8: the shard is at capacity, even High sheds.
    assert!(matches!(engine.submit(&high, &data.records()[8]), Err(ServeError::Shed { .. })));
    let stats = engine.admission_stats();
    assert_eq!(stats.shed_overload, 3);
    assert_eq!(stats.shed_quota, 0, "overload sheds never touch quota state");
    assert_eq!(stats.admitted, 8);
    // Everything admitted still serves.
    engine.flush_all();
    assert_eq!(engine.fleet_stats().unwrap().flows_served, 8);
}

#[test]
fn backpressure_carries_depth_and_retry_hint_under_sharding() {
    let data = generate(DatasetKind::UnswNb15, 200, 43);
    let detector =
        Detector::builder().dimension(128).retrain_epochs(1).seed(5).train(&data).unwrap();
    let registry = Arc::new(DetectorRegistry::new());
    // No admission control: the bounded per-lane queue is the only brake.
    let engine = ShardedServeEngine::new(
        Arc::clone(&registry),
        ShardConfig {
            shards: 8,
            background_flush: false,
            serve: ServeConfig { max_batch: 8, queue_capacity: 8, ..ServeConfig::default() },
            ..ShardConfig::default()
        },
    )
    .unwrap();
    registry.register("bounded", detector.clone()).unwrap();
    let tickets: Vec<Ticket> =
        data.records()[..8].iter().map(|r| engine.submit("bounded", r).unwrap()).collect();
    match engine.submit("bounded", &data.records()[8]).unwrap_err() {
        ServeError::Backpressure { tenant, capacity, depth, retry_hint } => {
            assert_eq!(tenant, "bounded");
            assert_eq!(capacity, 8);
            assert_eq!(depth, 8, "the error reports the lane occupancy at rejection time");
            assert_eq!(retry_hint, engine.config().serve.max_delay);
        }
        other => panic!("a full lane must push back, got {other:?}"),
    }
    // The rejection was issued no ticket; draining one slot re-admits and
    // the queued work was untouched.
    let oracle = detector.detect_batch(&data.records()[..8]).unwrap();
    assert_eq!(engine.take(&tickets[0]).unwrap(), oracle[0]);
    let refill = engine.submit("bounded", &data.records()[8]).unwrap();
    assert_eq!(refill.seq(), tickets[7].seq() + 1, "a rejected submission burns no sequence slot");
    for (ticket, want) in tickets[1..].iter().zip(&oracle[1..]) {
        assert_eq!(engine.take(ticket).unwrap(), *want);
    }
    assert_eq!(
        engine.take(&refill).unwrap(),
        detector.detect_batch(&data.records()[8..9]).unwrap()[0]
    );
}

#[test]
fn remove_and_reregister_races_do_not_alias_tickets_across_generations() {
    let data = generate(DatasetKind::NslKdd, 400, 53);
    let v1 = Detector::builder().dimension(128).retrain_epochs(1).seed(9).train(&data).unwrap();
    let v2 = Detector::builder().dimension(128).retrain_epochs(1).seed(77).train(&data).unwrap();

    let registry = Arc::new(DetectorRegistry::new());
    let engine = ShardedServeEngine::new(
        Arc::clone(&registry),
        ShardConfig {
            shards: 2,
            background_flush: false,
            serve: ServeConfig { max_batch: 64, ..ServeConfig::default() },
            ..ShardConfig::default()
        },
    )
    .unwrap();
    let churn = tenant_on_shard(&engine, 0, "churn");
    let steady = tenant_on_shard(&engine, 1, "steady");
    registry.register(&churn, v1.clone()).unwrap();
    registry.register(&steady, v1.clone()).unwrap();

    // Both shards hold in-flight (pending, unflushed) batches.
    let churn_old: Vec<Ticket> =
        data.records()[..6].iter().map(|r| engine.submit(&churn, r).unwrap()).collect();
    let steady_tickets: Vec<Ticket> =
        data.records()[..6].iter().map(|r| engine.submit(&steady, r).unwrap()).collect();
    assert_eq!(engine.stats(&steady).unwrap().queue_depth, 6, "the other shard is mid-batch");

    // Flavor 1 — remove + re-register with the lane still live.  The
    // generation change (generations are registry-unique, never reused)
    // seals the in-flight batch on its pinned v1 artifact: old tickets
    // collect v1 verdicts, post-churn tickets collect v2 verdicts, and no
    // batch mixes the two.
    registry.remove(&churn).unwrap();
    registry.register(&churn, v2.clone()).unwrap();
    let churn_new: Vec<Ticket> =
        data.records()[6..12].iter().map(|r| engine.submit(&churn, r).unwrap()).collect();
    engine.flush_all();
    let oracle_v1 = v1.detect_batch(&data.records()[..6]).unwrap();
    let oracle_v2 = v2.detect_batch(&data.records()[6..12]).unwrap();
    for (ticket, want) in churn_old.iter().zip(&oracle_v1) {
        assert_eq!(
            &engine.take(ticket).unwrap(),
            want,
            "pre-churn flows stay pinned to the v1 artifact"
        );
    }
    for (ticket, want) in churn_new.iter().zip(&oracle_v2) {
        assert_eq!(&engine.take(ticket).unwrap(), want, "post-churn flows score on v2");
    }

    // Flavor 2 — remove, reap via poll, re-register.  The recreated lane
    // recycles sequence numbers, but stale tickets carry the old lane id:
    // they must fail with a defined error, never collect a new verdict.
    let stale: Vec<Ticket> =
        data.records()[..3].iter().map(|r| engine.submit(&churn, r).unwrap()).collect();
    registry.remove(&churn).unwrap();
    engine.poll(); // housekeeping pass reaps the removed tenant's lane
    registry.register(&churn, v2.clone()).unwrap();
    let fresh: Vec<Ticket> =
        data.records()[..3].iter().map(|r| engine.submit(&churn, r).unwrap()).collect();
    assert_eq!(
        fresh[0].seq(),
        churn_old[0].seq(),
        "the recreated lane recycles sequence numbers — only lane identity disambiguates"
    );
    engine.flush(&churn).unwrap();
    for ticket in &stale {
        assert!(
            matches!(engine.take(ticket), Err(ServeError::UnknownTicket)),
            "a stale ticket must not alias into the recreated lane"
        );
    }
    let oracle_fresh = v2.detect_batch(&data.records()[..3]).unwrap();
    for (ticket, want) in fresh.iter().zip(&oracle_fresh) {
        assert_eq!(&engine.take(ticket).unwrap(), want, "fresh tickets collect from the new lane");
    }

    // The cross-shard tenant never noticed any of it.
    for (ticket, want) in steady_tickets.iter().zip(&oracle_v1) {
        assert_eq!(&engine.take(ticket).unwrap(), want);
    }
    assert_eq!(engine.stats(&steady).unwrap().detector_version, 1);
}

#[test]
fn fleet_stats_merges_lanes_across_shards_coherently() {
    let data = generate(DatasetKind::CicIds2017, 400, 61);
    let detector = shaped_detector(DatasetKind::CicIds2017, &data, 13);
    let registry = Arc::new(DetectorRegistry::new());
    let engine = ShardedServeEngine::new(
        Arc::clone(&registry),
        ShardConfig {
            shards: 4,
            background_flush: false,
            serve: ServeConfig { max_batch: 4, ..ServeConfig::default() },
            ..ShardConfig::default()
        },
    )
    .unwrap();
    assert!(engine.fleet_stats().is_none(), "no serving state yet, no snapshot");

    let tenants: Vec<String> = (0..8).map(|i| format!("edge-{i}")).collect();
    for tenant in &tenants {
        registry.register(tenant, detector.clone()).unwrap();
    }
    let mut tickets = Vec::new();
    for (i, record) in data.records()[..96].iter().enumerate() {
        tickets.push(engine.submit(&tenants[i % tenants.len()], record).unwrap());
    }
    engine.flush_all();
    for ticket in &tickets {
        engine.take(ticket).unwrap();
    }

    let fleet = engine.fleet_stats().unwrap();
    assert_eq!(fleet.tenant, "fleet");
    assert_eq!(fleet.flows_submitted, 96);
    assert_eq!(fleet.flows_served, 96);
    assert_eq!(fleet.uncollected, 0);
    assert_eq!(fleet.queue_depth, 0);
    assert_eq!(fleet.detector_version, 1, "every lane serves v1, so the version is unambiguous");
    // The merged latency histogram holds every flow exactly once, and the
    // per-tenant counters sum to the fleet counters.
    assert_eq!(fleet.latency.count(), 96);
    let summed: u64 = tenants.iter().map(|t| engine.stats(t).unwrap().flows_served).sum();
    assert_eq!(summed, fleet.flows_served);
    // Batch accounting: histogram mass equals flows served, entry counts
    // equal batches flushed (12 flows per tenant at max_batch 4).
    let mass: u64 = fleet.batch_size_histogram.iter().map(|&(size, n)| size as u64 * n).sum();
    assert_eq!(mass, 96);
    let flushes: u64 = fleet.batch_size_histogram.iter().map(|&(_, n)| n).sum();
    assert_eq!(flushes, fleet.batches);
    // Percentiles are recomputed from the merged histogram, so they obey
    // the usual ordering.
    assert!(fleet.p50_latency <= fleet.p99_latency);
    assert!(fleet.mean_latency <= fleet.max_latency);
}

//! Integration tests for the NIDS-operational extensions: binary
//! detection metrics on top of the multi-class models, open-set rejection of
//! unseen attack families, and streaming adaptation under concept drift.

use cyberhd_suite::prelude::*;

fn prepare_nsl_kdd(
    samples: usize,
    seed: u64,
) -> (Vec<Vec<f32>>, Vec<usize>, Vec<Vec<f32>>, Vec<usize>, Preprocessor, usize) {
    let dataset = DatasetKind::NslKdd
        .generate(&SyntheticConfig::new(samples, seed).difficulty(1.6))
        .expect("generation succeeds");
    let (train, test) = train_test_split(&dataset, 0.25, seed).expect("split succeeds");
    let preprocessor = Preprocessor::fit(&train, Normalization::MinMax).expect("fit succeeds");
    let (train_x, train_y) = preprocessor.transform_with_labels(&train).expect("transform");
    let (test_x, test_y) = preprocessor.transform_with_labels(&test).expect("transform");
    (train_x, train_y, test_x, test_y, preprocessor, dataset.num_classes())
}

fn train(
    train_x: &[Vec<f32>],
    train_y: &[usize],
    width: usize,
    classes: usize,
    seed: u64,
) -> CyberHdModel {
    let config = CyberHdConfig::builder(width, classes)
        .dimension(256)
        .retrain_epochs(5)
        .regeneration_rate(0.2)
        .learning_rate(0.05)
        .encode_threads(2)
        .seed(seed)
        .build()
        .expect("valid config");
    CyberHdTrainer::new(config).expect("trainer").fit(train_x, train_y).expect("training")
}

#[test]
fn detection_metrics_show_high_detection_and_low_false_alarms() {
    let (train_x, train_y, test_x, test_y, preprocessor, classes) = prepare_nsl_kdd(2_000, 3);
    let model = train(&train_x, &train_y, preprocessor.output_width(), classes, 1);
    let predictions = model.predict_batch(&test_x).unwrap();

    // Class 0 is benign in every schema of this repository.
    let counts = DetectionCounts::from_multiclass(&predictions, &test_y, 0).unwrap();
    assert!(counts.detection_rate() > 0.85, "detection rate {}", counts.detection_rate());
    assert!(counts.false_alarm_rate() < 0.15, "false alarm rate {}", counts.false_alarm_rate());
    assert!(counts.f1() > 0.8);

    // ROC from a continuous attack score: 1 - similarity-to-benign margin.
    let mut scores = Vec::new();
    let mut is_attack = Vec::new();
    for (features, &label) in test_x.iter().zip(&test_y) {
        let (_, class_scores) = model.predict_with_scores(features).unwrap();
        let best_attack =
            class_scores[1..].iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
        scores.push(best_attack - class_scores[0] as f64);
        is_attack.push(label != 0);
    }
    let roc = RocCurve::from_scores(&scores, &is_attack).unwrap();
    assert!(roc.auc() > 0.9, "AUC {}", roc.auc());
    assert!(roc.detection_rate_at_false_alarm(0.1) > 0.7);
}

#[test]
fn open_set_detector_flags_a_held_out_attack_family() {
    let (train_x, train_y, test_x, test_y, preprocessor, classes) = prepare_nsl_kdd(2_500, 9);

    // Hold out the "probe" family (class 2) entirely during training.
    let held_out = 2usize;
    let mut known_x = Vec::new();
    let mut known_y = Vec::new();
    for (x, &y) in train_x.iter().zip(&train_y) {
        if y != held_out {
            known_x.push(x.clone());
            // Remap labels above the held-out class down by one.
            known_y.push(if y > held_out { y - 1 } else { y });
        }
    }
    let model = train(&known_x, &known_y, preprocessor.output_width(), classes - 1, 5);
    let detector = OpenSetDetector::calibrate(model, &known_x, &known_y, 0.08).unwrap();

    let mut novel_flagged = 0usize;
    let mut novel_total = 0usize;
    let mut known_flagged = 0usize;
    let mut known_total = 0usize;
    for (x, &y) in test_x.iter().zip(&test_y) {
        let prediction = detector.predict(x).unwrap();
        if y == held_out {
            novel_total += 1;
            if prediction.is_unknown() {
                novel_flagged += 1;
            }
        } else {
            known_total += 1;
            if prediction.is_unknown() {
                known_flagged += 1;
            }
        }
    }
    assert!(novel_total > 0 && known_total > 0);
    let novel_rate = novel_flagged as f64 / novel_total as f64;
    let known_rate = known_flagged as f64 / known_total as f64;
    assert!(
        novel_rate > known_rate,
        "the held-out attack family should be flagged as unknown more often \
         (novel {novel_rate:.2} vs known {known_rate:.2})"
    );
    assert!(known_rate < 0.35, "known traffic should mostly be accepted, got {known_rate:.2}");
}

#[test]
fn online_learner_recovers_from_an_attack_surge() {
    let kind = DatasetKind::NslKdd;
    let schema = kind.schema();
    let profiles = kind.profiles();
    let phases = vec![
        DriftPhase::stationary(1_200, profiles.len()),
        // A DoS campaign: class 1 surges 25x for a while.
        DriftPhase::surge(1_200, profiles.len(), 1, 25.0),
        DriftPhase::stationary(600, profiles.len()),
    ];
    let stream = DriftStream::generate(&schema, &profiles, &phases, 17).unwrap();
    assert_eq!(stream.num_phases(), 3);

    // Fit the preprocessor on the first (stationary) phase only.
    let phase0 = stream.dataset().subset(&(0..1_200).collect::<Vec<_>>()).unwrap();
    let preprocessor = Preprocessor::fit(&phase0, Normalization::MinMax).unwrap();

    let config = CyberHdConfig::builder(preprocessor.output_width(), schema.num_classes())
        .dimension(256)
        .learning_rate(0.06)
        .regeneration_rate(0.1)
        .seed(23)
        .build()
        .unwrap();
    let mut learner = OnlineLearner::new(config).unwrap();

    let mut per_phase_correct = [0usize; 3];
    let mut per_phase_total = [0usize; 3];
    for (record, label, phase) in stream.iter() {
        let dense = preprocessor.transform_record(record).unwrap();
        let prediction = learner.observe(&dense, label).unwrap();
        per_phase_total[phase] += 1;
        if prediction == label {
            per_phase_correct[phase] += 1;
        }
    }
    let accuracy_of =
        |phase: usize| per_phase_correct[phase] as f64 / per_phase_total[phase] as f64;
    // The learner keeps working through the surge and after it.
    assert!(accuracy_of(1) > 0.7, "accuracy during the surge {}", accuracy_of(1));
    assert!(accuracy_of(2) > 0.7, "accuracy after the surge {}", accuracy_of(2));
    assert_eq!(learner.samples_seen(), 3_000);
}

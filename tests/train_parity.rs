//! Parity and determinism properties of the mini-batch training engine and
//! the fused 1-bit sign-encode path.
//!
//! Three contracts from the PR that introduced them:
//!
//! 1. `batch_size = 1` training is **bit-exact** with the serial adaptive
//!    rule (checked here against an [`OnlineLearner`] stream applying the
//!    same rule sample by sample, and internally by the trainer's own unit
//!    suite against the serial epoch scorer).
//! 2. Mini-batch training is **deterministic for a fixed seed at every
//!    thread count** — 1, 2 and 8 workers produce bit-identical models.
//! 3. Fused sign-encode predictions are **bit-exact** against the
//!    encode-then-quantize 1-bit pipeline on all three encoders.
//!
//! Like `batch_parity.rs`, the suite runs in CI both with the default
//! `parallel` feature and with `--no-default-features`.

use cyberhd_suite::prelude::*;
use hdc::rng::HdcRng;
use nids_data::DatasetKind;

/// Builds an NSL-KDD-shaped train/test pair.
fn traffic(samples: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>, Vec<Vec<f32>>, usize, usize) {
    let dataset = DatasetKind::NslKdd
        .generate(&SyntheticConfig::new(samples, seed).difficulty(1.8))
        .expect("generation succeeds");
    let (train, test) = train_test_split(&dataset, 0.4, seed).expect("split succeeds");
    let preprocessor = Preprocessor::fit(&train, Normalization::MinMax).expect("fit succeeds");
    let (train_x, train_y) = preprocessor.transform_with_labels(&train).expect("transform");
    let (test_x, _) = preprocessor.transform_with_labels(&test).expect("transform");
    let width = preprocessor.output_width();
    let classes = dataset.num_classes();
    (train_x, train_y, test_x, width, classes)
}

#[test]
fn batch_size_one_training_is_bit_exact_with_the_streaming_serial_rule() {
    // Record encoder: its batched kernel is the row-by-row serial path, so
    // the trainer's cached encodings are bit-identical to the per-sample
    // encodings of the streaming learner, and a single natural-order pass
    // (`retrain_epochs = 0`) of `fit` must reproduce the stream exactly.
    let (train_x, train_y, _, width, classes) = traffic(600, 3);
    let config = CyberHdConfig::builder(width, classes)
        .dimension(192)
        .encoder(EncoderKind::Record)
        .regeneration_rate(0.0)
        .retrain_epochs(0)
        .learning_rate(0.05)
        .batch_size(1)
        .seed(7)
        .build()
        .unwrap();

    let model = CyberHdTrainer::new(config.clone()).unwrap().fit(&train_x, &train_y).unwrap();

    let mut learner = OnlineLearner::new(config).unwrap();
    for (x, &y) in train_x.iter().zip(&train_y) {
        learner.observe(x, y).unwrap();
    }
    let streamed = learner.into_model();

    assert_eq!(
        model.class_hypervectors(),
        streamed.class_hypervectors(),
        "batch_size = 1 fit must apply exactly the serial adaptive rule"
    );
}

#[test]
fn batch_size_one_ignores_the_thread_knob() {
    let (train_x, train_y, _, width, classes) = traffic(500, 5);
    let fit_with = |threads: usize| {
        let config = CyberHdConfig::builder(width, classes)
            .dimension(128)
            .retrain_epochs(3)
            .regeneration_rate(0.2)
            .batch_size(1)
            .train_threads(threads)
            .seed(11)
            .build()
            .unwrap();
        CyberHdTrainer::new(config).unwrap().fit(&train_x, &train_y).unwrap()
    };
    let one = fit_with(1);
    let eight = fit_with(8);
    assert_eq!(one.class_hypervectors(), eight.class_hypervectors());
    assert_eq!(one.report().epoch_accuracy, eight.report().epoch_accuracy);
}

#[test]
fn minibatch_training_is_deterministic_across_thread_counts() {
    // The full pipeline — RBF encoder, regeneration, several epochs — at
    // batch 64 must produce bit-identical models at 1, 2 and 8 workers.
    let (train_x, train_y, _, width, classes) = traffic(900, 9);
    let fit_with = |threads: usize| {
        let config = CyberHdConfig::builder(width, classes)
            .dimension(256)
            .retrain_epochs(4)
            .regeneration_rate(0.2)
            .learning_rate(0.05)
            .batch_size(64)
            .train_threads(threads)
            .seed(13)
            .build()
            .unwrap();
        CyberHdTrainer::new(config).unwrap().fit(&train_x, &train_y).unwrap()
    };
    let reference = fit_with(1);
    for threads in [2, 8] {
        let model = fit_with(threads);
        assert_eq!(
            reference.class_hypervectors(),
            model.class_hypervectors(),
            "{threads} threads diverged from 1 thread"
        );
        assert_eq!(reference.report().epoch_accuracy, model.report().epoch_accuracy);
        assert_eq!(
            reference.report().regeneration.total_regenerated,
            model.report().regeneration.total_regenerated
        );
    }
    // And the default-thread run (engine-chosen worker count) agrees too.
    let config = CyberHdConfig::builder(width, classes)
        .dimension(256)
        .retrain_epochs(4)
        .regeneration_rate(0.2)
        .learning_rate(0.05)
        .batch_size(64)
        .seed(13)
        .build()
        .unwrap();
    let auto = CyberHdTrainer::new(config).unwrap().fit(&train_x, &train_y).unwrap();
    assert_eq!(reference.class_hypervectors(), auto.class_hypervectors());
}

#[test]
fn minibatch_training_keeps_detection_accuracy() {
    // The documented trade-off of batch_size > 1 is bounded staleness, not
    // broken learning: mini-batch models stay in the same accuracy band as
    // the serial rule on the same data.
    let (train_x, train_y, _, width, classes) = traffic(1_400, 17);
    let accuracy_with = |batch_size: usize| {
        let config = CyberHdConfig::builder(width, classes)
            .dimension(256)
            .retrain_epochs(5)
            .regeneration_rate(0.2)
            .learning_rate(0.05)
            .batch_size(batch_size)
            .seed(19)
            .build()
            .unwrap();
        let model = CyberHdTrainer::new(config).unwrap().fit(&train_x, &train_y).unwrap();
        model.accuracy(&train_x, &train_y).unwrap()
    };
    let serial = accuracy_with(1);
    let minibatch = accuracy_with(64);
    assert!(
        minibatch > serial - 0.05,
        "mini-batch accuracy {minibatch} fell too far below the serial rule's {serial}"
    );
}

/// The 1-bit encode-then-quantize reference — the pipeline `predict_batch`
/// ran before the fused kernel — shared with the inference bench's baseline
/// arm via `bench::reference` so the oracle and the measured baseline can
/// never drift apart.
fn predict_b1_encode_then_quantize(model: &CyberHdModel, batch: &[Vec<f32>]) -> Vec<usize> {
    let width = batch.first().map_or(1, Vec::len);
    let buffer = hdc::BatchBuffer::from_rows(batch, width).expect("consistent rows");
    bench::reference::predict_b1_encode_then_quantize(
        model.encoder(),
        &model.quantize(BitWidth::B1),
        buffer.view(),
    )
}

#[test]
fn fused_sign_encode_is_bit_exact_on_every_encoder() {
    let (train_x, train_y, mut test_x, width, classes) = traffic(900, 23);
    // An all-zero flow exercises the zero-row convention (Record maps it to
    // the zero hypervector; the serial path sends it to class 0).
    test_x.push(vec![0.0; width]);
    for kind in [EncoderKind::Rbf, EncoderKind::IdLevel, EncoderKind::Record] {
        let config = CyberHdConfig::builder(width, classes)
            .dimension(320)
            .encoder(kind)
            .regeneration_rate(if kind == EncoderKind::Rbf { 0.2 } else { 0.0 })
            .retrain_epochs(3)
            .seed(29)
            .build()
            .unwrap();
        let model = CyberHdTrainer::new(config).unwrap().fit(&train_x, &train_y).unwrap();
        let deployed = model.quantize(BitWidth::B1);
        let fused = deployed.predict_batch(&test_x).unwrap();
        let reference = predict_b1_encode_then_quantize(&model, &test_x);
        assert_eq!(fused, reference, "{kind:?}: fused B1 predictions diverged");
        // For the exact-kernel encoders the serial per-sample path agrees
        // bit for bit as well.
        if kind != EncoderKind::Rbf {
            for (i, x) in test_x.iter().enumerate() {
                assert_eq!(fused[i], deployed.predict(x).unwrap(), "{kind:?} sample {i}");
            }
        }
    }
}

#[test]
fn fused_sign_encode_parity_survives_randomized_feature_sweeps() {
    // Random feature vectors across a wide dynamic range (many 2π wraps of
    // the RBF projection) — the regime where a sloppy quadrant test would
    // diverge from the polynomial sign.
    let mut rng = HdcRng::seed_from(31);
    let width = 24;
    let (train_x, train_y): (Vec<Vec<f32>>, Vec<usize>) = (0..240)
        .map(|i| {
            let class = i % 3;
            let x: Vec<f32> =
                (0..width).map(|_| (class as f64 + rng.normal(0.0, 0.4)) as f32).collect();
            (x, class)
        })
        .unzip();
    let config = CyberHdConfig::builder(width, 3)
        .dimension(512)
        .rbf_sigma(2.0)
        .regeneration_rate(0.1)
        .retrain_epochs(2)
        .seed(37)
        .build()
        .unwrap();
    let model = CyberHdTrainer::new(config).unwrap().fit(&train_x, &train_y).unwrap();
    let deployed = model.quantize(BitWidth::B1);
    let queries: Vec<Vec<f32>> =
        (0..400).map(|_| (0..width).map(|_| rng.normal(0.0, 3.0) as f32).collect()).collect();
    let fused = deployed.predict_batch(&queries).unwrap();
    let reference = predict_b1_encode_then_quantize(&model, &queries);
    assert_eq!(fused, reference);
}

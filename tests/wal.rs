//! Property tests for the write-ahead log (`hdc::wal`).
//!
//! The WAL is the trust root of the durable serving stack
//! (`cyberhd::DurableLane`): every adaptive event is framed, checksummed
//! and fsynced here before it may touch a model.  This suite pins the
//! format's crash contract with seeded property sweeps:
//!
//! * **round trip** — random record streams written through [`wal::Writer`]
//!   read back byte-identical,
//! * **torn tails** — truncating a log at *every* byte offset recovers
//!   exactly the longest prefix of whole, checksummed records, and a
//!   resumed writer continues appending from there,
//! * **bounded loss** — a crash loses at most the records appended since
//!   the last flush; everything fsynced survives any later torn write,
//! * **corruption totality** — seeded storage faults
//!   ([`DiskFaultInjector`]) and arbitrary byte soup never panic and can
//!   only *shorten* the accepted record prefix, never alter or invent a
//!   record.

use fault_inject::DiskFaultInjector;
use hdc::rng::HdcRng;
use hdc::wal::{self, WalError};
use std::path::PathBuf;

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cyberhd_wal_prop_{name}_{}", std::process::id()))
}

/// A seeded stream of random payloads with adversarial lengths (empty
/// records, frame-sized records, and multi-hundred-byte records).
fn random_payloads(rng: &mut HdcRng, count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|_| {
            let len = match rng.index(4) {
                0 => 0,
                1 => 1 + rng.index(wal::FRAME_LEN),
                2 => rng.index(64),
                _ => 64 + rng.index(256),
            };
            (0..len).map(|_| (rng.next_word() >> 17) as u8).collect()
        })
        .collect()
}

/// The on-disk image of a log holding `payloads` (header + framed records).
fn image_of(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut image = Vec::new();
    image.extend_from_slice(wal::MAGIC);
    image.extend_from_slice(&wal::VERSION.to_le_bytes());
    for payload in payloads {
        image.extend_from_slice(&wal::frame(payload));
    }
    image
}

#[test]
fn random_record_streams_round_trip_through_disk() {
    for seed in 0..5u64 {
        let mut rng = HdcRng::seed_from(0xA110 + seed);
        let payloads = random_payloads(&mut rng, 40);
        let path = temp(&format!("roundtrip{seed}"));

        let mut writer = wal::Writer::create(&path).unwrap();
        for payload in &payloads {
            writer.append(payload).unwrap();
            // Random micro-batch boundaries: durability points must be
            // invisible to what a scan reads back.
            if rng.bernoulli(0.3) {
                writer.flush().unwrap();
            }
        }
        writer.flush().unwrap();
        let durable = writer.durable_len();
        drop(writer);

        let scanned = wal::read_file(&path).unwrap();
        assert_eq!(scanned.records, payloads, "seed {seed}");
        assert!(!scanned.damaged(), "a cleanly flushed log has no torn tail");
        assert_eq!(scanned.valid_len as u64, durable);
        assert_eq!(std::fs::read(&path).unwrap(), image_of(&payloads));
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn every_truncation_offset_recovers_the_longest_valid_prefix_and_resumes() {
    let mut rng = HdcRng::seed_from(0x70B5);
    let payloads = random_payloads(&mut rng, 8);
    let image = image_of(&payloads);

    // Record boundaries within the image: prefix_ends[k] is where the
    // k-record prefix ends.
    let mut prefix_ends = vec![wal::HEADER_LEN];
    for payload in &payloads {
        prefix_ends.push(prefix_ends.last().unwrap() + wal::FRAME_LEN + payload.len());
    }
    assert_eq!(*prefix_ends.last().unwrap(), image.len());

    let path = temp("everycut");
    for cut in 0..=image.len() {
        let scanned = wal::scan(&image[..cut]).unwrap();
        // The longest prefix of whole records that fits in `cut` bytes.
        let whole = prefix_ends.iter().filter(|&&end| end <= cut.max(wal::HEADER_LEN)).count() - 1;
        if cut < wal::HEADER_LEN {
            assert_eq!(scanned.valid_len, 0, "a log that died mid-header is empty");
        } else {
            assert_eq!(scanned.records.len(), whole, "cut at {cut}");
            assert_eq!(scanned.records, payloads[..whole], "cut at {cut}");
            assert_eq!(scanned.valid_len, prefix_ends[whole]);
        }
        assert_eq!(scanned.damaged(), cut != scanned.valid_len);

        // Resuming on the cut file must truncate the torn tail and keep
        // appending as if the lost records never existed.
        std::fs::write(&path, &image[..cut]).unwrap();
        let mut writer = wal::Writer::resume(&path, scanned.valid_len as u64).unwrap();
        writer.append(b"after-the-crash").unwrap();
        writer.flush().unwrap();
        drop(writer);
        let reread = wal::read_file(&path).unwrap();
        assert!(!reread.damaged());
        let survivors = if cut < wal::HEADER_LEN { 0 } else { whole };
        assert_eq!(reread.records.len(), survivors + 1, "cut at {cut}");
        assert_eq!(reread.records[..survivors], payloads[..survivors]);
        assert_eq!(reread.records[survivors], b"after-the-crash");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_crash_loses_at_most_the_records_since_the_last_flush() {
    for seed in 0..8u64 {
        let mut rng = HdcRng::seed_from(0xC4A5 + seed);
        let mut injector = DiskFaultInjector::new(0xD15C ^ seed);
        let payloads = random_payloads(&mut rng, 30);
        let path = temp(&format!("bounded{seed}"));

        let mut writer = wal::Writer::create(&path).unwrap();
        let mut flushed = 0usize;
        for (i, payload) in payloads.iter().enumerate() {
            writer.append(payload).unwrap();
            if rng.bernoulli(0.25) {
                writer.flush().unwrap();
                flushed = i + 1;
            }
        }
        // Crash: buffered records die with the process; the OS may then
        // persist part of one more write (a torn append).
        let durable = writer.durable_len() as usize;
        drop(writer);
        let mut bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), durable, "only flushed bytes hit the disk");
        injector.torn_write(&mut bytes, &wal::frame(&payloads[flushed.min(payloads.len() - 1)]));
        std::fs::write(&path, &bytes).unwrap();

        let scanned = wal::read_file(&path).unwrap();
        assert_eq!(scanned.records, payloads[..flushed], "seed {seed}: fsynced records survive");
        assert_eq!(scanned.valid_len, durable, "the torn append is dropped, nothing more");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn repeated_crash_resume_cycles_keep_exactly_the_flushed_records() {
    let mut rng = HdcRng::seed_from(0x5EED);
    let mut injector = DiskFaultInjector::new(0xFA117);
    let path = temp("cycles");
    let mut survivors: Vec<Vec<u8>> = Vec::new();

    let mut writer = wal::Writer::create(&path).unwrap();
    for cycle in 0..12 {
        // Append a few records, flush some of them, then "crash" with a
        // random storage fault past the durable floor.
        let count = 1 + rng.index(5);
        let mut unflushed: Vec<Vec<u8>> = Vec::new();
        for payload in random_payloads(&mut rng, count) {
            writer.append(&payload).unwrap();
            unflushed.push(payload);
            // A flush makes *everything* buffered durable; whatever is
            // still unflushed at the crash must vanish without a trace.
            if rng.bernoulli(0.5) {
                writer.flush().unwrap();
                survivors.append(&mut unflushed);
            }
        }
        // Records appended after the last flush of this cycle never reach
        // the disk, so drop them from the expectation too.
        let durable = writer.durable_len() as usize;
        drop(writer);
        let mut bytes = std::fs::read(&path).unwrap();
        injector.torn_write(&mut bytes, &wal::frame(b"mid-write when the power went out"));
        injector.truncate_after(&mut bytes, durable);
        std::fs::write(&path, &bytes).unwrap();

        let scanned = wal::read_file(&path).unwrap();
        assert_eq!(scanned.records, survivors, "cycle {cycle}");
        writer = wal::Writer::resume(&path, scanned.valid_len as u64).unwrap();
    }
    drop(writer);
    std::fs::remove_file(&path).ok();
}

#[test]
fn storage_faults_only_ever_shorten_the_accepted_prefix() {
    for seed in 0..24u64 {
        let mut rng = HdcRng::seed_from(0xBAD + seed);
        let mut injector = DiskFaultInjector::new(0xD00D ^ (seed * 0x9E37));
        let payloads = random_payloads(&mut rng, 12);
        let mut image = image_of(&payloads);
        for _ in 0..1 + rng.index(3) {
            injector.corrupt(&mut image);
        }
        match wal::scan(&image) {
            Ok(scanned) => {
                // However the bytes were mangled, the scan may only drop a
                // suffix: every accepted record is one of the originals, in
                // order, from the start.
                assert!(scanned.records.len() <= payloads.len(), "seed {seed}");
                assert_eq!(
                    scanned.records,
                    payloads[..scanned.records.len()],
                    "seed {seed}: corruption must never alter or invent a record"
                );
                assert!(scanned.valid_len <= image.len());
            }
            // A damaged header refuses the file outright - also safe.
            Err(WalError::NotAWal(_)) => {}
            Err(e) => panic!("seed {seed}: unexpected error {e}"),
        }
    }
}

#[test]
fn adaptive_event_tags_ride_the_frame_layer_opaquely() {
    // The durable layer's event tags (flow/feedback/…/publish plus the
    // recalibration and batch-boundary kinds) are the first payload byte
    // of each record: the frame layer must neither interpret nor
    // privilege any of them, so a log of tag-prefixed records obeys the
    // exact same round-trip and torn-tail prefix contract as arbitrary
    // payloads do.
    let mut rng = HdcRng::seed_from(0x7A65);
    let payloads: Vec<Vec<u8>> = (0..32u8)
        .map(|i| {
            let mut payload = vec![i % 8];
            payload.extend((0..rng.index(48)).map(|_| (rng.next_word() >> 21) as u8));
            payload
        })
        .collect();
    let image = image_of(&payloads);
    let scanned = wal::scan(&image).unwrap();
    assert_eq!(scanned.records, payloads);
    for cut in (wal::HEADER_LEN..image.len()).step_by(7) {
        let scanned = wal::scan(&image[..cut]).unwrap();
        assert_eq!(scanned.records, payloads[..scanned.records.len()], "cut at {cut}");
    }
}

#[test]
fn arbitrary_byte_soup_never_panics_and_never_yields_records() {
    let mut rng = HdcRng::seed_from(0x50FA);
    for trial in 0..200 {
        let len = rng.index(400);
        let soup: Vec<u8> = (0..len).map(|_| (rng.next_word() >> 29) as u8).collect();
        match wal::scan(&soup) {
            // Headerless soup can only be an empty or refused log: forging
            // a valid record behind a valid header needs a CRC collision.
            Ok(scanned) => {
                assert!(
                    scanned.records.is_empty() || soup[..4] == *wal::MAGIC,
                    "trial {trial}: records out of soup without a real header"
                );
            }
            Err(WalError::NotAWal(_)) => {}
            Err(e) => panic!("trial {trial}: unexpected error {e}"),
        }
    }
}

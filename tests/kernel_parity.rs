//! Parity suite for the `hdc::kernel` runtime dispatch layer.
//!
//! Every SIMD path the host can detect is compared against the
//! always-available scalar table under the kernel layer's determinism
//! contract:
//!
//! * **bit-exact on every path** — the integer kernels (`hamming_distance`,
//!   `count_ones`, `sign_pack_word`, `sign_quadrant_word`) and `axpy`
//!   (mul + add, never FMA-contracted);
//! * **deterministic per path** — the dot family fixes its accumulation
//!   order per dispatch path, so repeated calls on one path are
//!   bit-identical while different paths may differ by float rounding.
//!
//! Lengths deliberately include 0, 1, the 47/48 boundary the associative
//! memory's tests probe, and non-multiples of every path's lane width so
//! the tail loops are exercised on each table.

use hdc::rng::HdcRng;
use hdc::Kernels;

/// Word counts covering empty, single, sub-lane, lane-boundary and
/// off-by-one shapes for every path's step (scalar 1, AVX2 4, AVX-512 8).
const WORD_LENS: [usize; 12] = [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33];

/// Float lengths covering empty, single, the 47/48 memory-test boundary
/// and off-by-one shapes around every dot step (4, 16, 32) and the 8/16
/// axpy lane widths.
const FLOAT_LENS: [usize; 14] = [0, 1, 3, 4, 5, 15, 16, 17, 31, 32, 33, 47, 48, 137];

fn words(len: usize, rng: &mut HdcRng) -> Vec<u64> {
    (0..len).map(|_| rng.next_word()).collect()
}

fn floats(len: usize, rng: &mut HdcRng) -> Vec<f32> {
    (0..len).map(|_| rng.uniform(-4.0, 4.0) as f32).collect()
}

#[test]
fn scalar_table_is_always_available_and_first() {
    let available = Kernels::available();
    assert!(!available.is_empty());
    assert_eq!(available[0].isa(), "scalar");
    assert_eq!(Kernels::scalar().isa(), "scalar");
    // The active table is one of the available ones.
    let active = hdc::kernel::active().isa();
    assert!(available.iter().any(|k| k.isa() == active), "active {active} not in available");
}

#[test]
fn hamming_and_count_ones_are_bit_exact_on_every_path() {
    let scalar = Kernels::scalar();
    for (case, &len) in WORD_LENS.iter().enumerate() {
        let mut rng = HdcRng::seed_from(0xA000 + case as u64);
        let a = words(len, &mut rng);
        let b = words(len, &mut rng);
        let expect_h = scalar.hamming_distance(&a, &b);
        let expect_c = scalar.count_ones(&a);
        for path in Kernels::available() {
            assert_eq!(
                path.hamming_distance(&a, &b),
                expect_h,
                "hamming diverged on {} at {len} words",
                path.isa()
            );
            assert_eq!(
                path.count_ones(&a),
                expect_c,
                "count_ones diverged on {} at {len} words",
                path.isa()
            );
        }
    }
    // All-ones / all-zeros extremes.
    for len in [1usize, 7, 16] {
        let ones = vec![u64::MAX; len];
        let zeros = vec![0u64; len];
        for path in Kernels::available() {
            assert_eq!(path.hamming_distance(&ones, &zeros), len * 64, "{}", path.isa());
            assert_eq!(path.count_ones(&ones), len * 64, "{}", path.isa());
            assert_eq!(path.count_ones(&zeros), 0, "{}", path.isa());
        }
    }
}

#[test]
fn sign_kernels_are_bit_exact_on_every_path() {
    use std::f32::consts::FRAC_PI_2;
    let scalar = Kernels::scalar();
    let guard = 1e-3f32;
    // Chunk lengths from empty to a full word, plus band-edge values the
    // quadrant test's guard exists for.
    for chunk_len in [0usize, 1, 7, 31, 32, 33, 63, 64] {
        for case in 0..8u64 {
            let mut rng = HdcRng::seed_from(0xB000 + case * 100 + chunk_len as u64);
            let mut chunk = floats(chunk_len, &mut rng);
            // Salt some positions with exact boundaries: signed zero and
            // phases on / just inside / just outside the guard band.
            let specials = [
                0.0f32,
                -0.0,
                FRAC_PI_2,
                -FRAC_PI_2,
                FRAC_PI_2 - guard / 2.0,
                FRAC_PI_2 + guard / 2.0,
                FRAC_PI_2 - 2.0 * guard,
                FRAC_PI_2 + 2.0 * guard,
            ];
            for (i, s) in specials.iter().enumerate() {
                if let Some(slot) = chunk.get_mut(i * 7 % chunk_len.max(1)) {
                    if chunk_len > 0 {
                        *slot = *s;
                    }
                }
            }
            let expect_pack = scalar.sign_pack_word(&chunk);
            let expect_quadrant = scalar.sign_quadrant_word(&chunk, guard);
            for path in Kernels::available() {
                assert_eq!(
                    path.sign_pack_word(&chunk),
                    expect_pack,
                    "sign_pack_word diverged on {} at len {chunk_len} case {case}",
                    path.isa()
                );
                assert_eq!(
                    path.sign_quadrant_word(&chunk, guard),
                    expect_quadrant,
                    "sign_quadrant_word diverged on {} at len {chunk_len} case {case}",
                    path.isa()
                );
            }
        }
    }
}

#[test]
fn axpy_is_bit_exact_on_every_path() {
    let scalar = Kernels::scalar();
    for (case, &len) in FLOAT_LENS.iter().enumerate() {
        let mut rng = HdcRng::seed_from(0xC000 + case as u64);
        let x = floats(len, &mut rng);
        let base = floats(len, &mut rng);
        for scale in [0.0f32, 1.0, -0.75, 0.05] {
            let mut expect = base.clone();
            scalar.axpy(&mut expect, scale, &x);
            for path in Kernels::available() {
                let mut out = base.clone();
                path.axpy(&mut out, scale, &x);
                assert_eq!(
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "axpy diverged on {} at len {len} scale {scale}",
                    path.isa()
                );
            }
        }
    }
}

#[test]
fn dot_is_deterministic_per_path_and_consistent_across_paths() {
    let scalar = Kernels::scalar();
    for (case, &len) in FLOAT_LENS.iter().enumerate() {
        let mut rng = HdcRng::seed_from(0xD000 + case as u64);
        let a = floats(len, &mut rng);
        let b = floats(len, &mut rng);
        let reference: f64 = a.iter().zip(&b).map(|(x, y)| f64::from(*x) * f64::from(*y)).sum();
        let scalar_dot = scalar.dot(&a, &b);
        for path in Kernels::available() {
            let first = path.dot(&a, &b);
            // Per-path determinism: repeated evaluation is bit-identical.
            for _ in 0..3 {
                assert_eq!(
                    path.dot(&a, &b).to_bits(),
                    first.to_bits(),
                    "dot non-deterministic on {} at len {len}",
                    path.isa()
                );
            }
            // Cross-path consistency: every path is a correct dot product
            // up to f32 reassociation error.
            let tolerance = 1e-3 * (1.0 + reference.abs());
            assert!(
                (f64::from(first) - reference).abs() < tolerance,
                "dot wrong on {} at len {len}: {first} vs {reference}",
                path.isa()
            );
            assert!(
                (f64::from(first) - f64::from(scalar_dot)).abs() < tolerance,
                "dot far from scalar on {} at len {len}",
                path.isa()
            );
        }
    }
}

#[test]
fn dot_bank_accumulation_agrees_with_plain_dot_on_every_path() {
    // The associative memory's interleaved scorer tiles queries through
    // `dot_accumulate`/`dot_reduce`; step-aligned split accumulation must
    // reproduce the one-shot `dot` bit-for-bit on each path.
    for path in Kernels::available() {
        let step = path.dot_step();
        let len = step * 6;
        let mut rng = HdcRng::seed_from(0xE000 + step as u64);
        let a = floats(len, &mut rng);
        let b = floats(len, &mut rng);
        let mut bank = hdc::kernel::DotBank::new();
        for chunk in 0..3 {
            let lo = chunk * step * 2;
            let hi = lo + step * 2;
            path.dot_accumulate(&mut bank, &a[lo..hi], &b[lo..hi]);
        }
        assert_eq!(
            path.dot_reduce(&bank).to_bits(),
            path.dot(&a, &b).to_bits(),
            "split accumulation diverged on {}",
            path.isa()
        );
    }
}

//! Property-based tests over the cross-crate invariants: hypervector
//! algebra, encoder locality, quantization bounds, preprocessing ranges,
//! dataset generation and metric identities hold for arbitrary (bounded)
//! inputs, not just the hand-picked unit-test cases.

use cyberhd_suite::prelude::*;
use hdc::encoder::{IdLevelEncoder, RecordEncoder};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bundling_is_commutative_and_binding_distributes_signs(a in finite_vec(64), b in finite_vec(64)) {
        let ha = Hypervector::from_vec(a);
        let hb = Hypervector::from_vec(b);
        prop_assert_eq!(ha.bundle(&hb).unwrap(), hb.bundle(&ha).unwrap());
        prop_assert_eq!(ha.bind(&hb).unwrap(), hb.bind(&ha).unwrap());
    }

    #[test]
    fn cosine_similarity_stays_in_range_and_is_symmetric(a in finite_vec(32), b in finite_vec(32)) {
        let ha = Hypervector::from_vec(a);
        let hb = Hypervector::from_vec(b);
        let ab = ha.cosine(&hb).unwrap();
        let ba = hb.cosine(&ha).unwrap();
        prop_assert!((-1.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-5);
    }

    #[test]
    fn normalization_yields_unit_norm_for_nonzero_vectors(values in finite_vec(48)) {
        let hv = Hypervector::from_vec(values);
        prop_assume!(hv.norm() > 1e-3);
        let normalized = hv.normalized();
        prop_assert!((normalized.norm() - 1.0).abs() < 1e-4);
        // Direction is preserved.
        prop_assert!(hv.cosine(&normalized).unwrap() > 0.999);
    }

    #[test]
    fn permutation_preserves_norm_and_round_trips(values in finite_vec(40), shift in 0usize..200) {
        let hv = Hypervector::from_vec(values);
        let permuted = hv.permute(shift);
        prop_assert!((hv.norm() - permuted.norm()).abs() < 1e-4);
        let back = permuted.permute(40 - (shift % 40));
        prop_assert_eq!(back, hv);
    }

    #[test]
    fn quantization_error_is_bounded_by_the_step_size(values in finite_vec(64), bits_index in 0usize..5) {
        let widths = [BitWidth::B16, BitWidth::B8, BitWidth::B4, BitWidth::B2, BitWidth::B1];
        let width = widths[bits_index];
        let hv = Hypervector::from_vec(values);
        let q = QuantizedHypervector::quantize(&hv, width);
        let back = q.dequantize();
        // Worst-case absolute error per element is one quantization step
        // (half a step for rounding, but 1-bit keeps only the sign so bound
        // by the max magnitude instead).
        let bound = if width == BitWidth::B1 {
            2.0 * hv.max_abs()
        } else {
            hv.max_abs() / width.max_level() as f32 + 1e-5
        };
        for (a, b) in hv.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() <= bound, "error {} exceeds bound {bound}", (a - b).abs());
        }
        prop_assert_eq!(q.storage_bits(), 64 * width.bits() as usize);
    }

    #[test]
    fn rbf_encoding_is_bounded_and_deterministic(features in finite_vec(12), seed in 0u64..1000) {
        let encoder = RbfEncoder::new(12, 128, seed).unwrap();
        let a = encoder.encode(&features).unwrap();
        let b = encoder.encode(&features).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn static_encoders_accept_any_bounded_input(features in finite_vec(10), seed in 0u64..1000) {
        let id_level = IdLevelEncoder::with_range(10, 64, 8, -100.0, 100.0, seed).unwrap();
        let record = RecordEncoder::new(10, 64, seed).unwrap();
        prop_assert_eq!(id_level.encode(&features).unwrap().dim(), 64);
        prop_assert_eq!(record.encode(&features).unwrap().dim(), 64);
    }

    #[test]
    fn associative_memory_returns_valid_classes(queries in proptest::collection::vec(finite_vec(32), 1..8)) {
        let mut memory = AssociativeMemory::new(4, 32).unwrap();
        for (i, q) in queries.iter().enumerate() {
            memory.accumulate(i % 4, &Hypervector::from_vec(q.clone())).unwrap();
        }
        for q in &queries {
            let (class, similarity) = memory.nearest(&Hypervector::from_vec(q.clone())).unwrap();
            prop_assert!(class < 4);
            prop_assert!((-1.0..=1.0).contains(&similarity));
        }
    }

    #[test]
    fn confusion_matrix_accuracy_matches_direct_count(
        pairs in proptest::collection::vec((0usize..5, 0usize..5), 1..100)
    ) {
        let predictions: Vec<usize> = pairs.iter().map(|(p, _)| *p).collect();
        let labels: Vec<usize> = pairs.iter().map(|(_, l)| *l).collect();
        let cm = ConfusionMatrix::from_predictions(&predictions, &labels, 5).unwrap();
        let direct = accuracy(&predictions, &labels).unwrap();
        prop_assert!((cm.accuracy() - direct).abs() < 1e-12);
        prop_assert_eq!(cm.total() as usize, pairs.len());
    }
}

proptest! {
    // Dataset generation and preprocessing are slower; use fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_corpora_conform_to_their_schema(seed in 0u64..500, samples in 50usize..300) {
        let dataset = DatasetKind::NslKdd
            .generate(&SyntheticConfig::new(samples, seed))
            .unwrap();
        prop_assert_eq!(dataset.len(), samples);
        for record in dataset.records() {
            prop_assert!(dataset.schema().validate_record(record).is_ok());
        }
        prop_assert!(dataset.labels().iter().all(|&l| l < dataset.num_classes()));
    }

    #[test]
    fn minmax_preprocessing_maps_training_data_into_unit_interval(seed in 0u64..500) {
        let dataset = DatasetKind::UnswNb15
            .generate(&SyntheticConfig::new(300, seed))
            .unwrap();
        let preprocessor = Preprocessor::fit(&dataset, Normalization::MinMax).unwrap();
        let transformed = preprocessor.transform(&dataset).unwrap();
        prop_assert!(transformed
            .iter()
            .flatten()
            .all(|&v| (0.0..=1.0).contains(&v) && v.is_finite()));
        prop_assert!(transformed.iter().all(|row| row.len() == preprocessor.output_width()));
    }

    #[test]
    fn stratified_split_preserves_every_record_exactly_once(seed in 0u64..500) {
        let dataset = DatasetKind::CicIds2018
            .generate(&SyntheticConfig::new(400, seed))
            .unwrap();
        let (train, test) = train_test_split(&dataset, 0.3, seed).unwrap();
        prop_assert_eq!(train.len() + test.len(), dataset.len());
        // Class totals are preserved.
        let total: Vec<usize> = dataset.class_counts();
        let recombined: Vec<usize> = train
            .class_counts()
            .iter()
            .zip(test.class_counts())
            .map(|(a, b)| a + b)
            .collect();
        prop_assert_eq!(total, recombined);
    }
}

//! Property-style tests over the cross-crate invariants: hypervector
//! algebra, encoder locality, quantization bounds, preprocessing ranges,
//! dataset generation and metric identities hold for many randomly drawn
//! (bounded) inputs, not just hand-picked unit-test cases.
//!
//! The original version of this file used the `proptest` crate; the build
//! environment is offline, so the same properties are now exercised with
//! seeded random case generation driven by [`hdc::rng::HdcRng`] — fully
//! deterministic, and each failure message carries the case seed.

use cyberhd_suite::prelude::*;
use hdc::encoder::{IdLevelEncoder, RecordEncoder};
use hdc::rng::HdcRng;

/// Number of random cases per fast property.
const CASES: u64 = 64;
/// Number of random cases per slow (dataset-scale) property.
const SLOW_CASES: u64 = 12;

fn finite_vec(len: usize, rng: &mut HdcRng) -> Vec<f32> {
    (0..len).map(|_| rng.uniform(-100.0, 100.0) as f32).collect()
}

#[test]
fn bundling_is_commutative_and_binding_commutes() {
    for case in 0..CASES {
        let mut rng = HdcRng::seed_from(0x1000 + case);
        let ha = Hypervector::from_vec(finite_vec(64, &mut rng));
        let hb = Hypervector::from_vec(finite_vec(64, &mut rng));
        assert_eq!(ha.bundle(&hb).unwrap(), hb.bundle(&ha).unwrap(), "case {case}");
        assert_eq!(ha.bind(&hb).unwrap(), hb.bind(&ha).unwrap(), "case {case}");
    }
}

#[test]
fn cosine_similarity_stays_in_range_and_is_symmetric() {
    for case in 0..CASES {
        let mut rng = HdcRng::seed_from(0x2000 + case);
        let ha = Hypervector::from_vec(finite_vec(32, &mut rng));
        let hb = Hypervector::from_vec(finite_vec(32, &mut rng));
        let ab = ha.cosine(&hb).unwrap();
        let ba = hb.cosine(&ha).unwrap();
        assert!((-1.0..=1.0).contains(&ab), "case {case}: {ab}");
        assert!((ab - ba).abs() < 1e-5, "case {case}: {ab} vs {ba}");
    }
}

#[test]
fn normalization_yields_unit_norm_for_nonzero_vectors() {
    for case in 0..CASES {
        let mut rng = HdcRng::seed_from(0x3000 + case);
        let hv = Hypervector::from_vec(finite_vec(48, &mut rng));
        if hv.norm() <= 1e-3 {
            continue;
        }
        let normalized = hv.normalized();
        assert!((normalized.norm() - 1.0).abs() < 1e-4, "case {case}");
        // Direction is preserved.
        assert!(hv.cosine(&normalized).unwrap() > 0.999, "case {case}");
    }
}

#[test]
fn permutation_preserves_norm_and_round_trips() {
    for case in 0..CASES {
        let mut rng = HdcRng::seed_from(0x4000 + case);
        let hv = Hypervector::from_vec(finite_vec(40, &mut rng));
        let shift = rng.index(200);
        let permuted = hv.permute(shift);
        assert!((hv.norm() - permuted.norm()).abs() < 1e-4, "case {case}");
        let back = permuted.permute(40 - (shift % 40));
        assert_eq!(back, hv, "case {case}");
    }
}

#[test]
fn quantization_error_is_bounded_by_the_step_size() {
    let widths = [BitWidth::B16, BitWidth::B8, BitWidth::B4, BitWidth::B2, BitWidth::B1];
    for case in 0..CASES {
        let mut rng = HdcRng::seed_from(0x5000 + case);
        let width = widths[rng.index(widths.len())];
        let hv = Hypervector::from_vec(finite_vec(64, &mut rng));
        let q = QuantizedHypervector::quantize(&hv, width);
        let back = q.dequantize();
        // Worst-case absolute error per element is one quantization step
        // (half a step for rounding, but 1-bit keeps only the sign so bound
        // by the max magnitude instead).
        let bound = if width == BitWidth::B1 {
            2.0 * hv.max_abs()
        } else {
            hv.max_abs() / width.max_level() as f32 + 1e-5
        };
        for (a, b) in hv.iter().zip(back.iter()) {
            assert!(
                (a - b).abs() <= bound,
                "case {case}: error {} exceeds bound {bound}",
                (a - b).abs()
            );
        }
        assert_eq!(q.storage_bits(), 64 * width.bits() as usize, "case {case}");
    }
}

#[test]
fn rbf_encoding_is_bounded_and_deterministic() {
    for case in 0..CASES {
        let mut rng = HdcRng::seed_from(0x6000 + case);
        let features = finite_vec(12, &mut rng);
        let seed = rng.index(1000) as u64;
        let encoder = RbfEncoder::new(12, 128, seed).unwrap();
        let a = encoder.encode(&features).unwrap();
        let b = encoder.encode(&features).unwrap();
        assert_eq!(&a, &b, "case {case}");
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)), "case {case}");
    }
}

#[test]
fn static_encoders_accept_any_bounded_input() {
    for case in 0..CASES {
        let mut rng = HdcRng::seed_from(0x7000 + case);
        let features = finite_vec(10, &mut rng);
        let seed = rng.index(1000) as u64;
        let id_level = IdLevelEncoder::with_range(10, 64, 8, -100.0, 100.0, seed).unwrap();
        let record = RecordEncoder::new(10, 64, seed).unwrap();
        assert_eq!(id_level.encode(&features).unwrap().dim(), 64, "case {case}");
        assert_eq!(record.encode(&features).unwrap().dim(), 64, "case {case}");
    }
}

#[test]
fn associative_memory_returns_valid_classes() {
    for case in 0..CASES {
        let mut rng = HdcRng::seed_from(0x8000 + case);
        let queries: Vec<Vec<f32>> =
            (0..1 + rng.index(7)).map(|_| finite_vec(32, &mut rng)).collect();
        let mut memory = AssociativeMemory::new(4, 32).unwrap();
        for (i, q) in queries.iter().enumerate() {
            memory.accumulate(i % 4, &Hypervector::from_vec(q.clone())).unwrap();
        }
        for q in &queries {
            let (class, similarity) = memory.nearest(&Hypervector::from_vec(q.clone())).unwrap();
            assert!(class < 4, "case {case}");
            assert!((-1.0..=1.0).contains(&similarity), "case {case}");
        }
    }
}

#[test]
fn confusion_matrix_accuracy_matches_direct_count() {
    for case in 0..CASES {
        let mut rng = HdcRng::seed_from(0x9000 + case);
        let n = 1 + rng.index(99);
        let predictions: Vec<usize> = (0..n).map(|_| rng.index(5)).collect();
        let labels: Vec<usize> = (0..n).map(|_| rng.index(5)).collect();
        let cm = ConfusionMatrix::from_predictions(&predictions, &labels, 5).unwrap();
        let direct = accuracy(&predictions, &labels).unwrap();
        assert!((cm.accuracy() - direct).abs() < 1e-12, "case {case}");
        assert_eq!(cm.total() as usize, n, "case {case}");
    }
}

#[test]
fn generated_corpora_conform_to_their_schema() {
    for case in 0..SLOW_CASES {
        let mut rng = HdcRng::seed_from(0xA000 + case);
        let seed = rng.index(500) as u64;
        let samples = 50 + rng.index(250);
        let dataset = DatasetKind::NslKdd.generate(&SyntheticConfig::new(samples, seed)).unwrap();
        assert_eq!(dataset.len(), samples, "case {case}");
        for record in dataset.records() {
            assert!(dataset.schema().validate_record(record).is_ok(), "case {case}");
        }
        assert!(dataset.labels().iter().all(|&l| l < dataset.num_classes()), "case {case}");
    }
}

#[test]
fn minmax_preprocessing_maps_training_data_into_unit_interval() {
    for case in 0..SLOW_CASES {
        let mut rng = HdcRng::seed_from(0xB000 + case);
        let seed = rng.index(500) as u64;
        let dataset = DatasetKind::UnswNb15.generate(&SyntheticConfig::new(300, seed)).unwrap();
        let preprocessor = Preprocessor::fit(&dataset, Normalization::MinMax).unwrap();
        let transformed = preprocessor.transform(&dataset).unwrap();
        assert!(
            transformed.iter().flatten().all(|&v| (0.0..=1.0).contains(&v) && v.is_finite()),
            "case {case}"
        );
        assert!(
            transformed.iter().all(|row| row.len() == preprocessor.output_width()),
            "case {case}"
        );
    }
}

#[test]
fn stratified_split_preserves_every_record_exactly_once() {
    for case in 0..SLOW_CASES {
        let mut rng = HdcRng::seed_from(0xC000 + case);
        let seed = rng.index(500) as u64;
        let dataset = DatasetKind::CicIds2018.generate(&SyntheticConfig::new(400, seed)).unwrap();
        let (train, test) = train_test_split(&dataset, 0.3, seed).unwrap();
        assert_eq!(train.len() + test.len(), dataset.len(), "case {case}");
        // Class totals are preserved.
        let total: Vec<usize> = dataset.class_counts();
        let recombined: Vec<usize> =
            train.class_counts().iter().zip(test.class_counts()).map(|(a, b)| a + b).collect();
        assert_eq!(total, recombined, "case {case}");
    }
}

//! The deployable `Detector` artifact: parity against the manual expert
//! pipeline and bit-exact versioned persistence.
//!
//! Two contracts are pinned at integration scale:
//!
//! 1. **Pipeline parity** — on every `DatasetKind`, a sealed detector's
//!    raw-flow verdicts equal the manual pipeline (fit preprocessor →
//!    transform → trainer → model) prediction for prediction, bit for bit.
//! 2. **Persistence round trip** — `to_bytes` → `from_bytes` reproduces
//!    every prediction and score bit for bit, for dense, B1- and
//!    B2-quantized class memories, and for calibrated open-set thresholds.

use cyberhd_suite::prelude::*;

/// One small labelled corpus per schema.
fn corpus(kind: DatasetKind, samples: usize, seed: u64) -> Dataset {
    kind.generate(&SyntheticConfig::new(samples, seed).difficulty(1.2)).expect("generation")
}

fn builder() -> DetectorBuilder {
    Detector::builder().dimension(192).retrain_epochs(2).learning_rate(0.05).seed(31)
}

#[test]
fn detector_matches_the_manual_pipeline_on_every_dataset_kind() {
    for kind in DatasetKind::ALL {
        let data = corpus(kind, 700, 41);
        let detector = builder().train(&data).unwrap();

        // The manual expert pipeline, configured identically.
        let preprocessor = Preprocessor::fit(&data, Normalization::MinMax).unwrap();
        let (x, y) = preprocessor.transform_with_labels(&data).unwrap();
        let config = CyberHdConfig::builder(preprocessor.output_width(), data.num_classes())
            .dimension(192)
            .retrain_epochs(2)
            .learning_rate(0.05)
            .seed(31)
            .build()
            .unwrap();
        let model = CyberHdTrainer::new(config).unwrap().fit(&x, &y).unwrap();

        // Single-flow raw path vs manual serial prediction: bit-exact.
        for (i, record) in data.records().iter().take(60).enumerate() {
            assert_eq!(
                detector.detect(record).unwrap().class,
                model.predict(&x[i]).unwrap(),
                "{kind:?} flow {i}"
            );
        }
        // Raw batch path vs manual batched prediction: bit-exact.
        let verdicts = detector.detect_batch(data.records()).unwrap();
        let manual = model.predict_batch(&x).unwrap();
        for (i, (verdict, class)) in verdicts.iter().zip(&manual).enumerate() {
            assert_eq!(verdict.class, *class, "{kind:?} batched flow {i}");
        }
        // And the artifact's evaluate agrees with the manual confusion
        // matrix accuracy.
        let manual_accuracy = model.accuracy(&x, &y).unwrap();
        assert!((detector.accuracy(&data).unwrap() - manual_accuracy).abs() < 1e-12, "{kind:?}");
    }
}

#[test]
fn view_batch_path_equals_row_batch_path() {
    let data = corpus(DatasetKind::UnswNb15, 600, 43);
    let detector = builder().train(&data).unwrap();
    let model = detector.model().unwrap();
    let preprocessor = detector.preprocessor();
    let rows = preprocessor.transform(&data).unwrap();
    let matrix = preprocessor.transform_matrix(&data).unwrap();
    let view = BatchView::new(&matrix, preprocessor.output_width()).unwrap();
    assert_eq!(
        model.predict_batch_view(view).unwrap(),
        model.predict_batch(&rows).unwrap(),
        "zero-copy view path and legacy row path must agree exactly"
    );
    let quantized = model.quantize(BitWidth::B1);
    assert_eq!(
        quantized.predict_batch_view(view).unwrap(),
        quantized.predict_batch(&rows).unwrap()
    );
}

/// Asserts a saved→loaded artifact reproduces verdicts (class, similarity
/// bits, novel flag) exactly.
fn assert_bit_exact_round_trip(detector: &Detector, data: &Dataset, label: &str) {
    let bytes = detector.to_bytes();
    let loaded = Detector::from_bytes(&bytes).unwrap();
    assert_eq!(loaded.bit_width(), detector.bit_width(), "{label}");
    assert_eq!(loaded.thresholds().is_some(), detector.thresholds().is_some(), "{label}");
    if let (Some(a), Some(b)) = (loaded.thresholds(), detector.thresholds()) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: thresholds must round-trip bit-exactly");
        }
    }
    // Single-flow path: class, similarity bits and novelty all equal.
    for (i, record) in data.records().iter().take(80).enumerate() {
        let original = detector.detect(record).unwrap();
        let reloaded = loaded.detect(record).unwrap();
        assert_eq!(reloaded.class, original.class, "{label} flow {i}");
        assert_eq!(
            reloaded.similarity.to_bits(),
            original.similarity.to_bits(),
            "{label} flow {i}: similarity must be bit-exact"
        );
        assert_eq!(reloaded.novel, original.novel, "{label} flow {i}");
    }
    // Batched path too.
    let original = detector.detect_batch(data.records()).unwrap();
    let reloaded = loaded.detect_batch(data.records()).unwrap();
    assert_eq!(original.len(), reloaded.len(), "{label}");
    for (i, (a, b)) in original.iter().zip(&reloaded).enumerate() {
        assert_eq!(a.class, b.class, "{label} batched flow {i}");
        assert_eq!(a.similarity.to_bits(), b.similarity.to_bits(), "{label} batched flow {i}");
        assert_eq!(a.novel, b.novel, "{label} batched flow {i}");
    }
    // The loaded artifact serializes back to the identical byte stream.
    assert_eq!(loaded.to_bytes(), bytes, "{label}: canonical re-serialization");
}

#[test]
fn dense_artifact_round_trips_bit_exactly() {
    let data = corpus(DatasetKind::NslKdd, 700, 47);
    let detector = builder().regeneration_rate(0.2).train(&data).unwrap();
    assert!(detector.model().unwrap().effective_dimension() >= 192);
    assert_bit_exact_round_trip(&detector, &data, "dense");
}

#[test]
fn quantized_artifacts_round_trip_bit_exactly() {
    let data = corpus(DatasetKind::CicIds2017, 700, 53);
    for width in [BitWidth::B1, BitWidth::B2] {
        let detector = builder().quantize(width).train(&data).unwrap();
        assert_eq!(detector.bit_width(), Some(width));
        assert_bit_exact_round_trip(&detector, &data, &format!("{width}"));
    }
}

#[test]
fn open_set_artifact_round_trips_thresholds_bit_exactly() {
    let data = corpus(DatasetKind::CicIds2018, 700, 59);
    let detector = builder().open_set(0.05).train(&data).unwrap();
    assert_eq!(detector.thresholds().unwrap().len(), data.num_classes());
    assert_bit_exact_round_trip(&detector, &data, "open-set");
}

#[test]
fn online_trained_artifact_round_trips_and_streams_on() {
    let data = corpus(DatasetKind::UnswNb15, 900, 61);
    let detector = builder().online().train(&data).unwrap();
    assert_bit_exact_round_trip(&detector, &data, "online");

    // A loaded artifact can be unsealed and keep learning.
    let loaded = Detector::from_bytes(&detector.to_bytes()).unwrap();
    let mut online = loaded.into_online().unwrap();
    let more = corpus(DatasetKind::UnswNb15, 200, 67);
    for (record, &label) in more.records().iter().zip(more.labels()) {
        online.observe(record, label).unwrap();
    }
    assert_eq!(online.samples_seen(), more.records().len());
    let resealed = online.seal();
    assert!(resealed.accuracy(&data).unwrap() > 0.3);
}

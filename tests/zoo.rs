//! Integration suite for the workload zoo: the symbolic/sequence encoding
//! subsystem driven end-to-end through the Detector/serve stack.
//!
//! Pins the acceptance contract of the zoo:
//!
//! 1. **Language ID** — the bind-permute-bundle n-gram path classifies the
//!    eight-language synthetic corpus at ≥ 0.9 dense accuracy, with the
//!    1-bit quantized deployment within 0.05 of dense.
//! 2. **Tabular** — the symbol-record path learns the census-shaped mixed
//!    categorical/numeric workload well above chance.
//! 3. **Zero-day** — an open-set detector trained without the held-out
//!    language flags it as novel at a usable rate.
//! 4. **Serving** — both workloads serve through `ServeEngine` with
//!    verdicts bit-identical to one `detect_batch` call across randomized
//!    interleavings (the PR-4 contract, re-pinned on symbolic encoders).
//! 5. **Artifacts** — sealed zoo detectors round-trip save → load
//!    byte-identically and reproduce verdicts bit for bit.

use cyberhd_suite::prelude::*;
use hdc::rng::HdcRng;
use std::sync::Arc;
use std::time::Duration;

/// The zoo language-ID detector shape used across this suite.
fn language_builder() -> DetectorBuilder {
    Detector::builder()
        .encoder(EncoderKind::NGram)
        .ngram_order(3)
        .dimension(2048)
        .retrain_epochs(3)
        .regeneration_rate(0.0)
        .seed(0xB00C)
}

/// The zoo tabular detector shape used across this suite.
fn tabular_builder() -> DetectorBuilder {
    Detector::builder()
        .encoder(EncoderKind::SymbolRecord)
        .dimension(2048)
        .id_level_levels(16)
        .retrain_epochs(3)
        .regeneration_rate(0.0)
        .seed(0xB00D)
}

#[test]
fn language_id_meets_the_accuracy_bar_dense_and_one_bit() {
    let train = language_id::generate(1600, 11).unwrap();
    let test = language_id::generate(400, 12).unwrap();

    let dense = language_builder().train(&train).unwrap();
    let dense_accuracy = dense.accuracy(&test).unwrap();
    assert!(
        dense_accuracy >= 0.9,
        "dense language-ID accuracy {dense_accuracy:.3} below the 0.9 acceptance bar"
    );

    let one_bit = language_builder().quantize(BitWidth::B1).train(&train).unwrap();
    let one_bit_accuracy = one_bit.accuracy(&test).unwrap();
    assert!(
        one_bit_accuracy >= dense_accuracy - 0.05,
        "1-bit accuracy {one_bit_accuracy:.3} more than 0.05 below dense {dense_accuracy:.3}"
    );
}

#[test]
fn tabular_workload_learns_the_census_bands() {
    let corpus = tabular_zoo::generate(&SyntheticConfig::new(2400, 5)).unwrap();
    let (train, test) = train_test_split(&corpus, 0.25, 3).unwrap();
    let detector = tabular_builder().train(&train).unwrap();
    let accuracy = detector.accuracy(&test).unwrap();
    // Four imbalanced bands; majority-class guessing sits around 0.4.
    assert!(accuracy > 0.7, "tabular accuracy {accuracy:.3} barely above chance");
    // The 1-bit deployment stays close.
    let one_bit = tabular_builder().quantize(BitWidth::B1).train(&train).unwrap();
    let one_bit_accuracy = one_bit.accuracy(&test).unwrap();
    assert!(
        one_bit_accuracy > accuracy - 0.1,
        "1-bit tabular accuracy {one_bit_accuracy:.3} collapsed from dense {accuracy:.3}"
    );
}

#[test]
fn open_set_flags_the_held_out_language_as_novel() {
    let train = language_id::generate(1600, 21).unwrap();
    let detector = language_builder().open_set(0.05).train(&train).unwrap();

    // In-distribution traffic keeps flowing: at the 0.05 quantile roughly
    // 5% of known-language flows are sacrificed as novel.
    let known = language_id::generate(300, 22).unwrap();
    let known_novel =
        detector.detect_batch(known.records()).unwrap().iter().filter(|v| v.novel).count() as f64
            / known.len() as f64;
    assert!(known_novel < 0.25, "{known_novel:.2} of known-language flows flagged novel");

    // The held-out language was never trained on; its n-gram statistics
    // score below every class threshold far more often.
    let mut weights = vec![0.0; language_id::NUM_LANGUAGES];
    weights[language_id::NOVEL_LANGUAGE] = 1.0;
    let unseen = language_id::generate_mix(300, &weights, 0.0, 23).unwrap();
    let unseen_novel =
        detector.detect_batch(unseen.records()).unwrap().iter().filter(|v| v.novel).count() as f64
            / unseen.len() as f64;
    assert!(
        unseen_novel > known_novel + 0.3,
        "zero-day language novel rate {unseen_novel:.2} does not clear the known-language \
         floor {known_novel:.2}"
    );
}

/// Re-pins the PR-4 serving contract on a zoo detector: verdicts through
/// the micro-batching engine are bit-identical to one `detect_batch` call,
/// across ≥ 3 randomized interleavings of two tenants.
fn assert_serve_bit_identity(detector: &Detector, records: &[Vec<f32>], salt: u64) {
    let even: Vec<Vec<f32>> = records.iter().step_by(2).take(60).cloned().collect();
    let odd: Vec<Vec<f32>> = records.iter().skip(1).step_by(2).take(60).cloned().collect();
    let oracle_even = detector.detect_batch(&even).unwrap();
    let oracle_odd = detector.detect_batch(&odd).unwrap();

    for trial in 0..3u64 {
        let mut rng = HdcRng::seed_from(salt.wrapping_add(1000 * trial));
        let registry = Arc::new(DetectorRegistry::new());
        registry.register("even", detector.clone()).unwrap();
        registry.register("odd", detector.clone()).unwrap();
        let config = ServeConfig {
            max_batch: 3 + rng.index(14),
            max_delay: Duration::from_millis(50),
            ..ServeConfig::default()
        };
        let engine = ServeEngine::new(Arc::clone(&registry), config).unwrap();

        let mut tickets_even = Vec::new();
        let mut tickets_odd = Vec::new();
        let (mut next_even, mut next_odd) = (0usize, 0usize);
        while next_even < even.len() || next_odd < odd.len() {
            let pick_even = next_odd == odd.len() || (next_even < even.len() && rng.bernoulli(0.5));
            if pick_even {
                tickets_even.push(engine.submit("even", &even[next_even]).unwrap());
                next_even += 1;
            } else {
                tickets_odd.push(engine.submit("odd", &odd[next_odd]).unwrap());
                next_odd += 1;
            }
            if rng.bernoulli(0.1) {
                engine.flush(if rng.bernoulli(0.5) { "even" } else { "odd" }).unwrap();
            }
            if rng.bernoulli(0.05) {
                engine.poll();
            }
        }
        engine.flush_all();

        for (tickets, oracle, tenant) in
            [(&tickets_even, &oracle_even, "even"), (&tickets_odd, &oracle_odd, "odd")]
        {
            for (i, (ticket, want)) in tickets.iter().zip(oracle.iter()).enumerate() {
                let got = engine.take(ticket).unwrap();
                assert_eq!(got.class, want.class, "{tenant} flow {i} trial {trial}");
                assert_eq!(
                    got.similarity.to_bits(),
                    want.similarity.to_bits(),
                    "{tenant} flow {i} trial {trial}: similarity must be bit-exact"
                );
                assert_eq!(got.novel, want.novel, "{tenant} flow {i} trial {trial}");
            }
        }
        let stats = engine.stats("even").unwrap();
        assert_eq!(stats.flows_served, even.len() as u64);
        assert_eq!(stats.uncollected, 0);
    }
}

#[test]
fn language_id_serves_bit_identically_across_interleavings() {
    let train = language_id::generate(900, 31).unwrap();
    let live = language_id::generate(200, 32).unwrap();
    // Dense and 1-bit backends both honour the contract.
    let dense = language_builder().retrain_epochs(1).train(&train).unwrap();
    assert_serve_bit_identity(&dense, live.records(), 0x1A);
    let one_bit =
        language_builder().retrain_epochs(1).quantize(BitWidth::B1).train(&train).unwrap();
    assert_serve_bit_identity(&one_bit, live.records(), 0x1B);
}

#[test]
fn tabular_serves_bit_identically_across_interleavings() {
    let corpus = tabular_zoo::generate(&SyntheticConfig::new(1200, 41)).unwrap();
    let (train, live) = train_test_split(&corpus, 0.2, 7).unwrap();
    let dense = tabular_builder().retrain_epochs(1).train(&train).unwrap();
    assert_serve_bit_identity(&dense, live.records(), 0x2A);
    // Open-set backend (novel flags travel through the ticket path too).
    let open = tabular_builder().retrain_epochs(1).open_set(0.05).train(&train).unwrap();
    assert_serve_bit_identity(&open, live.records(), 0x2B);
}

#[test]
fn zoo_artifacts_round_trip_byte_identically() {
    let language_train = language_id::generate(700, 51).unwrap();
    let tabular_train = tabular_zoo::generate(&SyntheticConfig::new(900, 52)).unwrap();
    let probes_language = language_id::generate(40, 53).unwrap();
    let probes_tabular = tabular_zoo::generate(&SyntheticConfig::new(40, 54)).unwrap();

    let detectors = [
        (language_builder().retrain_epochs(1).train(&language_train).unwrap(), &probes_language),
        (
            language_builder()
                .retrain_epochs(1)
                .quantize(BitWidth::B1)
                .train(&language_train)
                .unwrap(),
            &probes_language,
        ),
        (tabular_builder().retrain_epochs(1).train(&tabular_train).unwrap(), &probes_tabular),
        (
            tabular_builder().retrain_epochs(1).open_set(0.05).train(&tabular_train).unwrap(),
            &probes_tabular,
        ),
    ];
    for (index, (detector, probes)) in detectors.iter().enumerate() {
        let bytes = detector.to_bytes();
        let loaded = Detector::from_bytes(&bytes).unwrap();
        assert_eq!(
            loaded.to_bytes(),
            bytes,
            "artifact {index}: reserialization must be byte-identical"
        );
        let want = detector.detect_batch(probes.records()).unwrap();
        let got = loaded.detect_batch(probes.records()).unwrap();
        assert_eq!(got, want, "artifact {index}: loaded verdicts must match bit for bit");
    }
}

#[test]
fn symbolic_detectors_reject_malformed_inputs() {
    let train = language_id::generate(400, 61).unwrap();
    let detector = language_builder().retrain_epochs(0).train(&train).unwrap();
    // Wrong arity.
    assert!(detector.detect(&[0.0; 3]).is_err());
    // Out-of-alphabet and fractional symbols are schema violations, not
    // silent encodes.
    let mut record = vec![0.0f32; language_id::SEQUENCE_LEN];
    record[5] = language_id::ALPHABET as f32;
    assert!(detector.detect(&record).is_err());
    record[5] = 1.5;
    assert!(detector.detect(&record).is_err());
}

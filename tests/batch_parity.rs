//! Batch/serial parity properties of the fused inference engine.
//!
//! The engine's contract: for every encoder and for the quantized
//! deployment path, `predict_batch` produces **identical predictions** to
//! the per-sample loop, and batched scores agree with the serial scoring
//! path to within 1e-6.  Cases are generated deterministically from seeds,
//! so every run checks the same (many) inputs.
//!
//! The whole suite runs twice in CI — once with the default `parallel`
//! feature (chunk fan-out across scoped threads) and once with
//! `--no-default-features` (serial chunk loop) — which is what makes these
//! properties cover both engine configurations.

use cyberhd_suite::prelude::*;
use hdc::rng::HdcRng;
use nids_data::DatasetKind;

/// Builds an NSL-KDD-shaped train/test pair.
fn traffic(samples: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>, Vec<Vec<f32>>) {
    let dataset = DatasetKind::NslKdd
        .generate(&SyntheticConfig::new(samples, seed).difficulty(1.8))
        .expect("generation succeeds");
    let (train, test) = train_test_split(&dataset, 0.4, seed).expect("split succeeds");
    let preprocessor = Preprocessor::fit(&train, Normalization::MinMax).expect("fit succeeds");
    let (train_x, train_y) = preprocessor.transform_with_labels(&train).expect("transform");
    let (test_x, _) = preprocessor.transform_with_labels(&test).expect("transform");
    (train_x, train_y, test_x)
}

fn train(
    train_x: &[Vec<f32>],
    train_y: &[usize],
    encoder: EncoderKind,
    dimension: usize,
    seed: u64,
) -> CyberHdModel {
    let width = train_x[0].len();
    let classes = train_y.iter().max().unwrap() + 1;
    let config = CyberHdConfig::builder(width, classes)
        .dimension(dimension)
        .encoder(encoder)
        .regeneration_rate(if encoder == EncoderKind::Rbf { 0.15 } else { 0.0 })
        .retrain_epochs(3)
        .seed(seed)
        .build()
        .expect("valid config");
    CyberHdTrainer::new(config).expect("trainer").fit(train_x, train_y).expect("training")
}

#[test]
fn dense_predictions_are_identical_for_every_encoder() {
    let (train_x, train_y, test_x) = traffic(700, 11);
    for encoder in [EncoderKind::Rbf, EncoderKind::IdLevel, EncoderKind::Record] {
        let model = train(&train_x, &train_y, encoder, 384, 3);
        let batched = model.predict_batch(&test_x).expect("batched prediction");
        for (i, x) in test_x.iter().enumerate() {
            let serial = model.predict(x).expect("serial prediction");
            assert_eq!(batched[i], serial, "{encoder:?} sample {i}");
        }
    }
}

#[test]
fn batched_scores_match_serial_scores_within_1e6() {
    let (train_x, train_y, test_x) = traffic(600, 13);
    for encoder in [EncoderKind::Rbf, EncoderKind::IdLevel, EncoderKind::Record] {
        let model = train(&train_x, &train_y, encoder, 320, 7);
        let memory = model.memory();
        let dim = model.dimension();
        // Batched path: encode the whole batch into one matrix, score it
        // with per-batch class norms.
        let buffer = hdc::BatchBuffer::from_rows(&test_x, test_x[0].len()).expect("flat batch");
        let mut matrix = vec![0.0f32; test_x.len() * dim];
        model.encoder().encode_batch_into(buffer.view(), &mut matrix).expect("batch encode");
        let mut scores = vec![0.0f32; test_x.len() * memory.num_classes()];
        memory.similarities_batch(&matrix, &mut scores).expect("batch scoring");
        // Serial path: per-sample encode + per-query class norms.
        for (i, x) in test_x.iter().enumerate() {
            let encoded = model.encode(x).expect("serial encode");
            let serial = memory.similarities(&encoded).expect("serial scoring");
            let row = &scores[i * memory.num_classes()..(i + 1) * memory.num_classes()];
            for (k, (a, b)) in row.iter().zip(&serial).enumerate() {
                assert!(
                    (a - b).abs() < 1e-6,
                    "{encoder:?} sample {i} class {k}: batched {a} vs serial {b}"
                );
            }
        }
    }
}

#[test]
fn predict_with_scores_winner_is_the_scores_argmax() {
    let (train_x, train_y, test_x) = traffic(500, 17);
    let model = train(&train_x, &train_y, EncoderKind::Rbf, 256, 9);
    for x in test_x.iter().take(100) {
        let (winner, scores) = model.predict_with_scores(x).expect("prediction");
        let argmax =
            scores.iter().enumerate().fold((0usize, f32::NEG_INFINITY), |best, (i, &s)| {
                if s > best.1 {
                    (i, s)
                } else {
                    best
                }
            });
        assert_eq!(winner, argmax.0);
        assert_eq!(winner, model.predict(x).expect("prediction"));
        assert_eq!(scores.len(), model.num_classes());
    }
}

#[test]
fn quantized_predictions_are_identical_at_every_bitwidth() {
    let (train_x, train_y, mut test_x) = traffic(500, 19);
    // Degenerate all-zero flow: the serial path scores it 0.0 against every
    // class; the packed 1-bit kernel must agree instead of sign-packing
    // zeros to +1.
    test_x.push(vec![0.0; test_x[0].len()]);
    let model = train(&train_x, &train_y, EncoderKind::Rbf, 320, 21);
    for width in BitWidth::ALL {
        let deployed = model.quantize(width);
        let batched = deployed.predict_batch(&test_x).expect("batched prediction");
        for (i, x) in test_x.iter().enumerate() {
            let serial = deployed.predict(x).expect("serial prediction");
            assert_eq!(batched[i], serial, "{width:?} sample {i}");
        }
    }
}

#[test]
fn packed_one_bit_scores_match_integer_cosine_within_1e6() {
    // The packed u64 kernel's score formula ((dim - 2h) / (√na·√nb))
    // against the serial integer cosine of the quantized hypervectors.
    let mut rng = HdcRng::seed_from(23);
    let dim = 777; // deliberately not a multiple of 64
    for case in 0..32 {
        let a = Hypervector::from_fn(dim, |_| rng.standard_normal() as f32);
        let b = Hypervector::from_fn(dim, |_| rng.standard_normal() as f32);
        let qa = QuantizedHypervector::quantize(&a, BitWidth::B1);
        let qb = QuantizedHypervector::quantize(&b, BitWidth::B1);
        let serial = qa.cosine(&qb).expect("integer cosine");

        let pa = hdc::BinaryHypervector::from_level_signs(qa.levels());
        let pb = hdc::BinaryHypervector::from_level_signs(qb.levels());
        let h = hdc::hamming_distance(pa.as_words(), pb.as_words());
        let packed = (dim as f64 - 2.0 * h as f64) / ((dim as f64).sqrt() * (dim as f64).sqrt());
        assert!(
            (serial - packed as f32).abs() < 1e-6,
            "case {case}: serial {serial} vs packed {packed}"
        );
    }
}

#[test]
fn nearest_batch_agrees_with_serial_nearest_on_random_memories() {
    for case in 0..8u64 {
        let mut rng = HdcRng::seed_from(0xBA7C4 + case);
        let (classes, dim, rows) = (2 + rng.index(5), 16 + rng.index(64), 1 + rng.index(40));
        let mut memory = AssociativeMemory::new(classes, dim).expect("memory");
        for c in 0..classes {
            let hv = Hypervector::from_fn(dim, |_| rng.standard_normal() as f32);
            memory.accumulate(c, &hv).expect("accumulate");
        }
        let queries: Vec<f32> = (0..rows * dim).map(|_| rng.standard_normal() as f32).collect();
        let batched = memory.nearest_batch(&queries).expect("batched nearest");
        for row in 0..rows {
            let q = Hypervector::from_vec(queries[row * dim..(row + 1) * dim].to_vec());
            assert_eq!(batched[row], memory.nearest(&q).expect("serial nearest"), "case {case}");
        }
    }
}

//! Cross-crate integration tests: the full generate → split → preprocess →
//! train → evaluate pipeline on every dataset stand-in, plus the central
//! comparative claims of the paper at reduced scale.

use cyberhd_suite::prelude::*;

/// Shared helper: prepare one dataset end to end.
fn prepare(
    kind: DatasetKind,
    samples: usize,
    seed: u64,
) -> (Vec<Vec<f32>>, Vec<usize>, Vec<Vec<f32>>, Vec<usize>, usize, usize) {
    let dataset = kind
        .generate(&SyntheticConfig::new(samples, seed).difficulty(1.4))
        .expect("generation succeeds");
    let (train, test) = train_test_split(&dataset, 0.25, seed).expect("split succeeds");
    let preprocessor = Preprocessor::fit(&train, Normalization::MinMax).expect("fit succeeds");
    let (train_x, train_y) = preprocessor.transform_with_labels(&train).expect("transform");
    let (test_x, test_y) = preprocessor.transform_with_labels(&test).expect("transform");
    (train_x, train_y, test_x, test_y, preprocessor.output_width(), dataset.num_classes())
}

fn train_cyberhd(
    train_x: &[Vec<f32>],
    train_y: &[usize],
    width: usize,
    classes: usize,
    dimension: usize,
    regeneration: f32,
    seed: u64,
) -> CyberHdModel {
    let config = CyberHdConfig::builder(width, classes)
        .dimension(dimension)
        .retrain_epochs(5)
        .regeneration_rate(regeneration)
        .learning_rate(0.05)
        .encode_threads(2)
        .seed(seed)
        .build()
        .expect("valid config");
    CyberHdTrainer::new(config).expect("trainer").fit(train_x, train_y).expect("training succeeds")
}

#[test]
fn cyberhd_detects_intrusions_on_every_dataset_standin() {
    for kind in DatasetKind::ALL {
        let (train_x, train_y, test_x, test_y, width, classes) = prepare(kind, 1_600, 7);
        let model = train_cyberhd(&train_x, &train_y, width, classes, 256, 0.2, 7);
        let accuracy = model.accuracy(&test_x, &test_y).expect("evaluation succeeds");
        assert!(
            accuracy > 0.70,
            "{kind:?}: CyberHD accuracy {accuracy} should clearly beat chance on synthetic data"
        );
        assert!(model.effective_dimension() > model.dimension());
    }
}

#[test]
fn regeneration_beats_the_static_baseline_at_equal_dimensionality() {
    // The paper's central accuracy claim (Fig. 3): at the same physical
    // dimensionality, CyberHD's regeneration recovers accuracy the static
    // baseline leaves on the table. At reduced scale we assert "not worse and
    // usually better" on a deliberately small dimensionality where the
    // difference is visible.
    let (train_x, train_y, test_x, test_y, width, classes) =
        prepare(DatasetKind::UnswNb15, 2_500, 21);
    let dimension = 96;
    let cyber = train_cyberhd(&train_x, &train_y, width, classes, dimension, 0.25, 3);
    let baseline = train_cyberhd(&train_x, &train_y, width, classes, dimension, 0.0, 3);
    let cyber_accuracy = cyber.accuracy(&test_x, &test_y).unwrap();
    let baseline_accuracy = baseline.accuracy(&test_x, &test_y).unwrap();
    assert!(
        cyber_accuracy >= baseline_accuracy - 0.02,
        "CyberHD ({cyber_accuracy}) should not lose to the static baseline ({baseline_accuracy})"
    );
}

#[test]
fn cyberhd_at_low_dimension_approaches_the_large_static_baseline() {
    // Fig. 3's other claim: CyberHD at 0.5k physical dimensions is comparable
    // to the static baseline at its effective dimensionality.
    let (train_x, train_y, test_x, test_y, width, classes) =
        prepare(DatasetKind::NslKdd, 2_000, 33);
    let cyber = train_cyberhd(&train_x, &train_y, width, classes, 256, 0.2, 5);
    let large_baseline = train_cyberhd(&train_x, &train_y, width, classes, 1024, 0.0, 5);
    let cyber_accuracy = cyber.accuracy(&test_x, &test_y).unwrap();
    let baseline_accuracy = large_baseline.accuracy(&test_x, &test_y).unwrap();
    assert!(
        cyber_accuracy >= baseline_accuracy - 0.05,
        "CyberHD at 256 dims ({cyber_accuracy}) should be within a few points of the 1024-dim \
         static baseline ({baseline_accuracy})"
    );
}

#[test]
fn all_five_models_of_the_paper_run_on_the_same_data() {
    let (train_x, train_y, test_x, test_y, width, classes) =
        prepare(DatasetKind::CicIds2018, 1_500, 55);

    let cyber = train_cyberhd(&train_x, &train_y, width, classes, 256, 0.2, 1);
    let cyber_accuracy = cyber.accuracy(&test_x, &test_y).unwrap();

    let baseline = BaselineHd::new(width, classes, 256, 1)
        .unwrap()
        .retrain_epochs(5)
        .fit(&train_x, &train_y)
        .unwrap();
    let baseline_accuracy = baseline.accuracy(&test_x, &test_y).unwrap();

    let mut mlp =
        Mlp::new(MlpConfig::new(width, classes).hidden_layers(vec![64]).epochs(8).seed(1)).unwrap();
    mlp.fit(&train_x, &train_y).unwrap();
    let mlp_accuracy = mlp.accuracy(&test_x, &test_y).unwrap();

    let mut svm = LinearSvm::new(SvmConfig::new(width, classes).epochs(8).seed(1)).unwrap();
    svm.fit(&train_x, &train_y).unwrap();
    let svm_accuracy = svm.accuracy(&test_x, &test_y).unwrap();

    for (name, accuracy) in [
        ("CyberHD", cyber_accuracy),
        ("baselineHD", baseline_accuracy),
        ("MLP", mlp_accuracy),
        ("SVM", svm_accuracy),
    ] {
        assert!(accuracy > 0.55, "{name} accuracy {accuracy} is implausibly low");
        assert!(accuracy <= 1.0);
    }
}

#[test]
fn quantized_deployments_preserve_most_of_the_accuracy() {
    let (train_x, train_y, test_x, test_y, width, classes) =
        prepare(DatasetKind::NslKdd, 1_500, 77);
    // Any model seed works now: percentile-clipped quantization scaling (see
    // hdc::quant) keeps a stray outlier element from collapsing the narrow
    // level grids, which used to make the 2-bit column seed-sensitive under
    // symmetric max-abs scaling.  Several seeds assert that explicitly.
    for seed in [2, 3, 11] {
        let model = train_cyberhd(&train_x, &train_y, width, classes, 256, 0.2, seed);
        let full = model.accuracy(&test_x, &test_y).unwrap();
        for bits in [BitWidth::B16, BitWidth::B8, BitWidth::B4, BitWidth::B2, BitWidth::B1] {
            let deployed = model.quantize(bits);
            let quantized = deployed.accuracy(&test_x, &test_y).unwrap();
            assert!(
                quantized > full - 0.12,
                "seed {seed} / {bits:?}: quantized accuracy {quantized} dropped too far below \
                 full precision {full}"
            );
        }
    }
}

#[test]
fn online_learner_matches_batch_training_reasonably() {
    let (train_x, train_y, test_x, test_y, width, classes) =
        prepare(DatasetKind::NslKdd, 1_800, 91);
    let batch = train_cyberhd(&train_x, &train_y, width, classes, 256, 0.0, 11);
    let batch_accuracy = batch.accuracy(&test_x, &test_y).unwrap();

    let config = CyberHdConfig::builder(width, classes)
        .dimension(256)
        .learning_rate(0.05)
        .seed(11)
        .build()
        .unwrap();
    let mut learner = OnlineLearner::new(config).unwrap();
    // Three passes over the stream to mimic a modest retraining budget.
    for _ in 0..3 {
        for (x, &y) in train_x.iter().zip(&train_y) {
            learner.observe(x, y).unwrap();
        }
    }
    let online = learner.into_model();
    let online_accuracy = online.accuracy(&test_x, &test_y).unwrap();
    assert!(
        online_accuracy > batch_accuracy - 0.10,
        "online accuracy {online_accuracy} should be within 10 points of batch {batch_accuracy}"
    );
}

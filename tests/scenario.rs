//! Deterministic scenario-replay harness for drift-adaptive serving.
//!
//! This suite pins the three load-bearing properties of the adaptive
//! serving loop (`cyberhd::serve::AdaptiveLane` + `DriftMonitor` +
//! regeneration + registry republish) under seeded
//! [`nids_data::drift::DriftStream`] scenarios:
//!
//! 1. **Serial-replay bit-identity** — an adaptive lane's verdicts *and*
//!    its final model are bit-identical to a serial [`OnlineDetector`]
//!    replay of the same event sequence (submits, labelled submits, late
//!    feedback, monitor trips, regenerations), across randomized flush
//!    interleavings, 1/2/8 concurrent lanes and all four dataset kinds.
//! 2. **Frozen-lane bit-identity** — the PR-4 contract survives every
//!    scenario: frozen tenants stay bit-identical to one `detect_batch`
//!    oracle call even while the adaptive lane republishes into the same
//!    registry.
//! 3. **Drift recovery** — on the abrupt-shift scenario the adaptive
//!    lane's post-drift prequential accuracy beats the frozen artifact by
//!    a pinned margin, with at least one automatic regeneration + registry
//!    swap firing mid-stream; the zero-day scenario trips on the open-set
//!    unknown-rate surge with almost no labels at all.
//! 4. **Crash durability** — a [`DurableLane`] killed at a random offset
//!    (process death with unflushed events, plus seeded storage faults on
//!    the WAL and checkpoints from [`DiskFaultInjector`]) recovers and
//!    finishes the stream **bit-identical** to the lane that never
//!    crashed, across ≥3 kill points × all four dataset kinds ×
//!    abrupt / gradual / zero-day drift schedules.

use bench::crash::{build_cell, crash_config, run_crashed, run_uncrashed, CrashSchedule};
use bench::scenario::{
    abrupt_shift, class_surge, gradual_drift, replay, replay_prepared, zero_day,
    zoo_unseen_language, zoo_vocab_shift, ReplayConfig, ADAPTIVE_TENANT,
};
use cyberhd_suite::prelude::*;
use hdc::rng::HdcRng;
use nids_data::drift::{DriftPhase, DriftStream};
use std::sync::Arc;

// ---------------------------------------------------------------------
// 1. Serial-replay bit-identity
// ---------------------------------------------------------------------

/// One scheduled event of the deterministic replay: what arrives, in what
/// order — the *only* thing the adaptive lane's outcome may depend on.
#[derive(Debug, Clone)]
enum Event {
    /// Serve a flow; `label` attaches ground truth at submit time.
    Submit { flow: usize, label: Option<usize> },
    /// Late ground truth for the `ticket`-th submission.
    Feedback { ticket: usize, label: usize },
}

/// A drifting labelled stream whose second phase rotates the label
/// semantics — guaranteed prequential-error surge, so the monitor trips
/// (and regenerates) somewhere mid-schedule on every kind.
fn scheduled_events(kind: DatasetKind, seed: u64) -> (DriftStream, Vec<Event>) {
    let (schema, profiles) = (kind.schema(), kind.profiles());
    let phases = vec![
        DriftPhase::stationary(150, profiles.len()),
        DriftPhase::stationary(150, profiles.len()).difficulty(1.5),
    ];
    let live = DriftStream::generate(&schema, &profiles, &phases, seed).expect("stream");
    let classes = profiles.len();

    let mut rng = HdcRng::seed_from(seed ^ 0xE7E47);
    let mut events = Vec::new();
    let mut pending_feedback: Vec<(usize, usize, usize)> = Vec::new(); // (due, ticket, label)
    for i in 0..live.len() {
        // Phase 1 rotates ground truth, so the labelled error rate surges.
        let truth = live.dataset().labels()[i];
        let label = if i < 150 { truth } else { (truth + 1) % classes };
        if rng.bernoulli(0.65) {
            events.push(Event::Submit { flow: i, label: Some(label) });
        } else {
            events.push(Event::Submit { flow: i, label: None });
            if rng.bernoulli(0.7) {
                // Every flow is one submission, so flow index == ticket
                // index in the lane's submission order.
                let due = events.len() + 1 + rng.index(15);
                pending_feedback.push((due, i, label));
            }
        }
        // Emit feedback whose due point has passed, in due order.
        pending_feedback.sort_by_key(|&(due, _, _)| due);
        while pending_feedback.first().is_some_and(|&(due, _, _)| due <= events.len()) {
            let (_, ticket, label) = pending_feedback.remove(0);
            events.push(Event::Feedback { ticket, label });
        }
    }
    for (_, ticket, label) in pending_feedback {
        events.push(Event::Feedback { ticket, label });
    }
    (live, events)
}

fn scenario_monitor() -> DriftMonitorConfig {
    DriftMonitorConfig {
        window: 24,
        min_observations: 12,
        error_delta: 0.2,
        unknown_surge: 0.4,
        cooldown: 16,
    }
}

/// The adaptation policy, replayed serially on a plain [`OnlineDetector`]
/// — written out independently here (including the reservoir sampling and
/// post-trip recalibration rules, with the default lane constants spelled
/// out) so the test pins the lane's policy rather than calling back into
/// it.
struct SerialOracle {
    online: OnlineDetector,
    thresholds: Option<Vec<f32>>,
    monitor: DriftMonitor,
    reservoir: Vec<(Vec<f32>, usize)>,
    reservoir_candidates: u64,
}

/// The lane defaults the oracle mirrors (`AdaptiveConfig::default()`).
const ORACLE_RESERVOIR_CAPACITY: usize = 256;
const ORACLE_RESERVOIR_SEED: u64 = 0x5EED_CA1B;
const ORACLE_RECALIBRATION_QUANTILE: f64 = 0.05;

impl SerialOracle {
    fn new(detector: Detector, monitor: DriftMonitorConfig) -> Self {
        let thresholds = detector.thresholds().map(<[f32]>::to_vec);
        Self {
            online: detector.into_online().expect("dense artifact"),
            thresholds,
            monitor: DriftMonitor::new(monitor).expect("valid monitor"),
            reservoir: Vec::new(),
            reservoir_candidates: 0,
        }
    }

    /// Algorithm R with a per-candidate seeded draw — the lane's
    /// deterministic reservoir rule, restated independently.
    fn reservoir_note(&mut self, record: &[f32], label: usize) {
        let candidate = self.reservoir_candidates;
        self.reservoir_candidates += 1;
        if self.reservoir.len() < ORACLE_RESERVOIR_CAPACITY {
            self.reservoir.push((record.to_vec(), label));
            return;
        }
        let mut rng = HdcRng::seed_from(
            ORACLE_RESERVOIR_SEED ^ candidate.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let slot = rng.index(candidate as usize + 1);
        if slot < ORACLE_RESERVOIR_CAPACITY {
            self.reservoir[slot] = (record.to_vec(), label);
        }
    }

    /// Applies one event; returns the verdict for submits.
    fn step(&mut self, record: &[f32], label: Option<usize>, is_feedback: bool) -> Option<Verdict> {
        let (class, similarity) = match label {
            Some(label) => self.online.observe_scored(record, label).expect("valid event"),
            None => self.online.predict_scored(record).expect("valid event"),
        };
        let novel = self.thresholds.as_ref().is_some_and(|t| similarity < t[class]);
        let tripped = match label {
            Some(label) => self.monitor.record_labelled(class == label, novel),
            None => self.monitor.record_unlabelled(novel),
        };
        // Ground truth certifies in-distribution membership: the model's
        // own novelty flag does not gate reservoir entry (it would
        // truncate the similarity distribution the quantile is over).
        if let Some(label) = label {
            self.reservoir_note(record, label);
        }
        if tripped {
            self.online.regenerate().expect("RBF artifacts regenerate");
            // Open-set lanes recalibrate their thresholds from the
            // reservoir against the freshly regenerated memory.
            if self.thresholds.is_some() && !self.reservoir.is_empty() {
                let (records, labels): (Vec<Vec<f32>>, Vec<usize>) =
                    self.reservoir.iter().cloned().unzip();
                self.thresholds = Some(
                    self.online
                        .recalibrate_thresholds(&records, &labels, ORACLE_RECALIBRATION_QUANTILE)
                        .expect("reservoir entries are valid records"),
                );
            }
        }
        (!is_feedback).then_some(Verdict { class, similarity, novel })
    }
}

/// Replays the schedule through one adaptive lane with randomized flush /
/// poll / collect interleavings, returning the verdicts in submission
/// order and the sealed final model.
fn lane_replay(
    detector: Detector,
    live: &DriftStream,
    events: &[Event],
    interleave_seed: u64,
) -> (Vec<Verdict>, Vec<u8>) {
    let mut rng = HdcRng::seed_from(interleave_seed);
    let config = AdaptiveConfig {
        max_batch: 3 + rng.index(12),
        queue_capacity: events.len() + 64,
        monitor: scenario_monitor(),
        retention: events.len(),
        ..AdaptiveConfig::default()
    };
    let lane = AdaptiveLane::new("lane", detector, config).expect("valid lane");
    let mut tickets: Vec<Ticket> = Vec::new();
    let mut collected: Vec<Option<Verdict>> = Vec::new();
    for event in events {
        match event {
            Event::Submit { flow, label } => {
                let record = live.dataset().records()[*flow].as_slice();
                let ticket = match label {
                    Some(label) => lane.submit_labelled(record, *label).unwrap(),
                    None => lane.submit(record).unwrap(),
                };
                tickets.push(ticket);
                collected.push(None);
            }
            Event::Feedback { ticket, label } => {
                lane.submit_feedback(&tickets[*ticket], *label).unwrap();
            }
        }
        // Randomized interleaving: flushes, delay polls and early collects
        // must all be invisible to the outcome.
        if rng.bernoulli(0.08) {
            lane.flush().unwrap();
        }
        if rng.bernoulli(0.05) {
            lane.poll();
        }
        if rng.bernoulli(0.1) && !tickets.is_empty() {
            let pick = rng.index(tickets.len());
            if collected[pick].is_none() {
                if let Ok(Some(verdict)) = lane.try_take(&tickets[pick]) {
                    collected[pick] = Some(verdict);
                }
            }
        }
    }
    lane.flush().unwrap();
    let verdicts = tickets
        .iter()
        .zip(collected)
        .map(|(ticket, early)| match early {
            Some(verdict) => verdict,
            None => lane.take(ticket).unwrap(),
        })
        .collect();
    (verdicts, lane.seal_snapshot().to_bytes())
}

#[test]
fn adaptive_lanes_are_bit_identical_to_a_serial_online_replay() {
    for kind in DatasetKind::ALL {
        // Train on a stationary slice of the same traffic shape; one kind
        // gets open-set thresholds so novelty flags are exercised too.
        let (schema, profiles) = (kind.schema(), kind.profiles());
        let train_phases = [DriftPhase::stationary(500, profiles.len())];
        let train =
            DriftStream::generate(&schema, &profiles, &train_phases, 5 + kind as u64).unwrap();
        let mut builder = Detector::builder()
            .dimension(112)
            .retrain_epochs(1)
            .regeneration_rate(0.1)
            .seed(3 + kind as u64);
        if kind == DatasetKind::CicIds2017 {
            builder = builder.open_set(0.05);
        }
        let detector = builder.train(train.dataset()).unwrap();

        let (live, events) = scheduled_events(kind, 31 + kind as u64);

        // The serial oracle: one OnlineDetector, events applied in order.
        let mut oracle = SerialOracle::new(detector.clone(), scenario_monitor());
        let mut oracle_verdicts = Vec::new();
        for event in &events {
            match event {
                Event::Submit { flow, label } => {
                    let record = live.dataset().records()[*flow].as_slice();
                    oracle_verdicts.push(oracle.step(record, *label, false).unwrap());
                }
                Event::Feedback { ticket, label } => {
                    let record = live.dataset().records()[*ticket].as_slice();
                    oracle.step(record, Some(*label), true);
                }
            }
        }
        let oracle_bytes = oracle.online.seal_snapshot().to_bytes();
        assert!(
            oracle.monitor.trips() >= 1,
            "{kind:?}: the rotated-label phase must trip the monitor for this test to have power"
        );

        // >= 3 randomized interleavings x 1/2/8 concurrent lanes: every
        // lane must reproduce the oracle bit for bit.
        for trial in 0..3u64 {
            for threads in [1usize, 2, 8] {
                let results: Vec<(Vec<Verdict>, Vec<u8>)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let detector = detector.clone();
                            let live = &live;
                            let events = &events;
                            let seed = 1_000 * trial + 37 * t as u64 + kind as u64;
                            scope.spawn(move || lane_replay(detector, live, events, seed))
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                for (lane_index, (verdicts, bytes)) in results.iter().enumerate() {
                    assert_eq!(verdicts.len(), oracle_verdicts.len());
                    for (i, (got, want)) in verdicts.iter().zip(&oracle_verdicts).enumerate() {
                        assert_eq!(
                            got.class, want.class,
                            "{kind:?} trial {trial} threads {threads} lane {lane_index} flow {i}"
                        );
                        assert_eq!(
                            got.similarity.to_bits(),
                            want.similarity.to_bits(),
                            "{kind:?} trial {trial} threads {threads} lane {lane_index} flow {i}: \
                             similarity must be bit-exact"
                        );
                        assert_eq!(got.novel, want.novel, "{kind:?} flow {i}");
                    }
                    assert_eq!(
                        bytes, &oracle_bytes,
                        "{kind:?} trial {trial} threads {threads} lane {lane_index}: the final \
                         model must be bit-identical to the serial replay"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// 2 & 3. Scenario replays: frozen contract + drift recovery
// ---------------------------------------------------------------------

#[test]
fn abrupt_shift_recovers_with_an_automatic_regeneration_and_swap() {
    let spec = abrupt_shift(DatasetKind::NslKdd);
    let outcome = replay(&spec, &ReplayConfig::default()).unwrap();

    // The frozen lane held the PR-4 bit-identity contract throughout.
    assert!(outcome.frozen_bit_identical, "frozen lane diverged from its detect_batch oracle");

    // Drift recovery: over the post-drift window the adaptive lane beats
    // the frozen artifact by a pinned margin.
    assert!(
        outcome.recovery_delta() >= 0.10,
        "adaptive recovery must beat the frozen artifact by >= 10 points: adaptive {:.3} vs \
         frozen {:.3} over {:?}",
        outcome.adaptive_recovery_accuracy,
        outcome.frozen_recovery_accuracy,
        outcome.recovery_window,
    );
    assert!(
        outcome.adaptive_recovery_accuracy >= 0.70,
        "the adapted lane must actually recover, got {:.3}",
        outcome.adaptive_recovery_accuracy
    );

    // At least one automatic regeneration + registry swap fired mid-stream.
    let stats = &outcome.adaptive;
    assert!(stats.monitor_trips >= 1, "the abrupt shift must trip the monitor: {stats}");
    assert!(stats.adaptations >= 1, "{stats}");
    assert!(stats.regenerated_dimensions >= 1, "{stats}");
    assert!(stats.publishes >= 1, "an automatic republish must fire mid-stream: {stats}");
    assert_eq!(stats.publish_failures, 0, "{stats}");
    assert!(
        outcome.final_registry_version >= 2,
        "the registry must have swapped to an adapted artifact, got v{}",
        outcome.final_registry_version
    );
    assert!(
        stats.effective_dimension > 256,
        "regeneration grows D*: {}",
        stats.effective_dimension
    );
}

#[test]
fn published_snapshots_serve_frozen_lanes_bit_identically() {
    // Replay the abrupt shift, then drive the frozen micro-batching
    // engine against the *adaptive* tenant of the registry the lane
    // republished into: probe submissions must score bit-identically to
    // the last published artifact's detect_batch — the republish →
    // hot-swap → micro-batch handoff, end to end.
    let spec = abrupt_shift(DatasetKind::NslKdd);
    let config = ReplayConfig { seed: 41, ..ReplayConfig::default() };
    let outcome = replay(&spec, &config).unwrap();
    assert!(outcome.adaptive.publishes >= 1, "{}", outcome.adaptive);
    assert!(outcome.final_registry_version >= 2);

    let (schema, profiles) = (spec.kind.schema(), spec.kind.profiles());
    let probe_phases = [DriftPhase::stationary(64, profiles.len())];
    let probe = DriftStream::generate(&schema, &profiles, &probe_phases, 4242).unwrap();

    let engine = ServeEngine::new(Arc::clone(&outcome.registry), ServeConfig::default()).unwrap();
    let tickets: Vec<Ticket> = probe
        .dataset()
        .records()
        .iter()
        .map(|record| engine.submit(ADAPTIVE_TENANT, record).unwrap())
        .collect();
    engine.flush(ADAPTIVE_TENANT).unwrap();

    let (published, version) = outcome.registry.current(ADAPTIVE_TENANT).unwrap();
    assert_eq!(version, outcome.final_registry_version);
    let oracle = published.detect_batch(probe.dataset().records()).unwrap();
    for (ticket, want) in tickets.iter().zip(&oracle) {
        let got = engine.take(ticket).unwrap();
        assert_eq!(got.class, want.class);
        assert_eq!(
            got.similarity.to_bits(),
            want.similarity.to_bits(),
            "frozen serving of the published artifact must be bit-identical"
        );
    }
    // The frozen tenant was never swapped.
    assert_eq!(outcome.registry.version(bench::scenario::FROZEN_TENANT), Some(1));
}

#[test]
fn zero_day_surge_trips_on_novelty_with_sparse_labels() {
    let spec = zero_day(DatasetKind::NslKdd);
    // Analyst-in-the-loop: ground truth for every fourth flow arrives 250
    // flows late, so when the unseen class erupts there are **no labels
    // for it at all** for hundreds of flows — the monitor's trip has to
    // come from the open-set unknown-rate surge, not the error window.
    let config = ReplayConfig { feedback_every: 4, feedback_delay: 250, ..ReplayConfig::default() };
    let outcome = replay(&spec, &config).unwrap();

    assert!(outcome.frozen_bit_identical);
    let stats = &outcome.adaptive;
    assert!(
        stats.monitor_trips >= 1,
        "the zero-day surge must trip on novelty despite sparse labels: {stats}"
    );
    assert!(stats.adaptations >= 1, "{stats}");
    assert!(stats.publishes >= 1, "{stats}");
    // Publication semantics, pinned: republished snapshots carry
    // thresholds recalibrated from the lane's in-distribution reservoir
    // against the adapted memory — an open-set lane republishes an
    // **open-set** artifact (the old behavior dropped to closed-set), and
    // the registry makes that observable.
    assert!(stats.recalibrations >= 1, "each open-set adaptation must recalibrate: {stats}");
    let registry = &outcome.registry;
    assert!(registry.info(ADAPTIVE_TENANT).unwrap().open_set);
    assert!(registry.info(bench::scenario::FROZEN_TENANT).unwrap().open_set);
    // The frozen artifact has never seen the surging class; the adaptive
    // lane learns it from the sparse feedback and pulls ahead.
    assert!(
        outcome.recovery_delta() >= 0.05,
        "adaptive {:.3} vs frozen {:.3}",
        outcome.adaptive_recovery_accuracy,
        outcome.frozen_recovery_accuracy
    );
}

#[test]
fn zoo_vocab_shift_recovers_through_the_online_rule_alone() {
    // The symbolic workload zoo on the same replay core: the language-ID
    // trigram detector under a five-phase vocabulary shift.  The n-gram
    // item memories cannot regenerate, so any recovery is the online
    // adaptive rule tracking the moving transition statistics.
    let prepared = zoo_vocab_shift(1200, 1024, 77).unwrap();
    let outcome = replay_prepared(&prepared, &ReplayConfig::default()).unwrap();
    println!(
        "zoo_vocab_shift: frozen {:.3} vs adaptive {:.3} over {:?}",
        outcome.frozen_recovery_accuracy,
        outcome.adaptive_recovery_accuracy,
        outcome.recovery_window
    );

    assert!(outcome.frozen_bit_identical, "frozen lane diverged from its detect_batch oracle");
    assert!(
        outcome.recovery_delta() >= 0.10,
        "the adaptive lane must out-track the frozen trigram profiles under full shift: \
         adaptive {:.3} vs frozen {:.3} over {:?}",
        outcome.adaptive_recovery_accuracy,
        outcome.frozen_recovery_accuracy,
        outcome.recovery_window,
    );
    assert!(
        outcome.adaptive_recovery_accuracy >= 0.60,
        "the adapted lane must actually track the shifted vocabulary, got {:.3}",
        outcome.adaptive_recovery_accuracy
    );
    // Symbolic item memories have nothing to regenerate (the artifact's
    // rate is pinned at zero), so a monitor trip regenerates 0 dimensions
    // — but it still republishes the online-adapted model, and the frozen
    // tenants of the registry pick that snapshot up.
    let stats = &outcome.adaptive;
    assert!(stats.monitor_trips >= 1, "the full shift must trip the monitor: {stats}");
    assert_eq!(stats.regenerated_dimensions, 0, "{stats}");
    assert_eq!(stats.adaptation_failures, 0, "{stats}");
    assert!(stats.publishes >= 1, "the online-adapted snapshot must republish: {stats}");
    assert!(outcome.final_registry_version >= 2, "v{}", outcome.final_registry_version);
}

#[test]
fn zoo_unseen_language_trips_on_novelty_and_recovers() {
    // Zero-day on the language zoo: the held-out ninth language erupts to
    // half the traffic.  Sparse, late ground truth (every 4th flow, 250
    // flows late) means the monitor's trip must come from the open-set
    // unknown-rate surge; recovery comes from the online rule learning
    // the new language out of that sparse feedback.
    let prepared = zoo_unseen_language(1200, 1024, 78).unwrap();
    let config = ReplayConfig { feedback_every: 4, feedback_delay: 250, ..ReplayConfig::default() };
    let outcome = replay_prepared(&prepared, &config).unwrap();
    println!(
        "zoo_unseen_language: frozen {:.3} vs adaptive {:.3} over {:?}",
        outcome.frozen_recovery_accuracy,
        outcome.adaptive_recovery_accuracy,
        outcome.recovery_window
    );

    assert!(outcome.frozen_bit_identical);
    // The open-set artifact flags the unseen language: the frozen lane's
    // novel rate surges once the zero-day phase starts.
    let novel_rate = |window: &std::ops::Range<usize>| {
        window.clone().filter(|&i| outcome.frozen_verdicts[i].novel).count() as f64
            / window.len() as f64
    };
    let calm_novel = novel_rate(&outcome.phase_ranges[0]);
    let surge_novel = novel_rate(&outcome.phase_ranges[1]);
    assert!(
        surge_novel > calm_novel + 0.2,
        "the zero-day surge must be visible in the open-set flags: calm {calm_novel:.2} vs \
         surge {surge_novel:.2}"
    );
    // The unknown-rate surge trips the monitor despite the label drought;
    // with nothing to regenerate at the artifact's zero rate, each trip
    // republishes the online-adapted model and serving continues.
    let stats = &outcome.adaptive;
    assert!(stats.monitor_trips >= 1, "the novelty surge must trip the monitor: {stats}");
    assert_eq!(stats.adaptation_failures, 0, "{stats}");
    assert_eq!(stats.regenerated_dimensions, 0, "{stats}");
    assert!(stats.publishes >= 1, "{stats}");
    // The frozen artifact can never name the unseen language; the
    // adaptive lane learns it from the sparse late feedback and pulls
    // ahead over the recovery window.
    assert!(
        outcome.recovery_delta() >= 0.10,
        "adaptive {:.3} vs frozen {:.3}",
        outcome.adaptive_recovery_accuracy,
        outcome.frozen_recovery_accuracy
    );
}

#[test]
fn republished_snapshot_stays_open_set_within_tolerance_of_fresh_calibration() {
    use nids_data::datasets::language_id;

    // The acceptance bar for reservoir recalibration: after the
    // mid-stream novelty trip and republish, the lane must still emit
    // open-set verdicts — and its late-stream novel rate on the unseen
    // language must sit within 0.05 of a detector freshly trained *and*
    // calibrated on a corpus that includes that language.  (Before this
    // recalibration existed, the republished thresholds were stale
    // against the adapted memory and the lane's unknown rate pinned
    // several times higher than any fresh calibration.)
    let prepared = zoo_unseen_language(1200, 1024, 79).unwrap();
    let config = ReplayConfig { feedback_every: 4, feedback_delay: 250, ..ReplayConfig::default() };
    let outcome = replay_prepared(&prepared, &config).unwrap();
    let stats = &outcome.adaptive;
    assert!(stats.monitor_trips >= 1, "the novelty surge must trip mid-stream: {stats}");
    assert!(stats.publishes >= 1, "the trip must republish: {stats}");
    assert!(stats.recalibrations >= 1, "each open-set adaptation recalibrates: {stats}");

    let (published, version) =
        outcome.registry.current(ADAPTIVE_TENANT).expect("adaptive tenant is registered");
    assert!(version >= 2, "the republished snapshot must have superseded the seed, got v{version}");
    assert!(
        published.thresholds().is_some(),
        "the republished snapshot must carry open-set thresholds, not drop to closed-set"
    );

    // The reference: the same detector shape, freshly trained and
    // open-set calibrated on a balanced corpus of all nine languages —
    // what an offline rebuild with the collected labels would ship.
    let corpus =
        language_id::generate_mix(1350, &language_id::zero_day_weights(1.0), 0.0, 0xF12E5).unwrap();
    let fresh = Detector::builder()
        .encoder(EncoderKind::NGram)
        .ngram_order(3)
        .dimension(1024)
        .retrain_epochs(2)
        .regeneration_rate(0.0)
        .seed(79)
        .open_set(0.05)
        .train(&corpus)
        .unwrap();

    // Compare novel rates on the unseen-language flows of the surge's
    // back half — all well after the trips, so the lane's verdicts there
    // came from the recalibrated thresholds.
    let surge = outcome.phase_ranges[1].clone();
    let mid = surge.start + (surge.end - surge.start) / 2;
    let labels = prepared.live.dataset().labels();
    let unseen: Vec<usize> =
        (mid..surge.end).filter(|&i| labels[i] == language_id::NOVEL_LANGUAGE).collect();
    assert!(unseen.len() >= 100, "the surge tail must actually contain the unseen language");
    let lane_rate = unseen.iter().filter(|&&i| outcome.adaptive_verdicts[i].novel).count() as f64
        / unseen.len() as f64;
    let fresh_verdicts = fresh.detect_batch(prepared.live.dataset().records()).unwrap();
    let fresh_rate =
        unseen.iter().filter(|&&i| fresh_verdicts[i].novel).count() as f64 / unseen.len() as f64;
    println!(
        "post-republish open-set: lane novel rate {lane_rate:.3} vs freshly calibrated \
         {fresh_rate:.3} over {} unseen-language flows",
        unseen.len()
    );
    assert!(
        (lane_rate - fresh_rate).abs() <= 0.05,
        "the adapted-and-recalibrated lane must emit open-set verdicts within tolerance of a \
         freshly calibrated detector: lane {lane_rate:.3} vs fresh {fresh_rate:.3}"
    );
}

#[test]
fn gradual_drift_and_class_surge_hold_the_contracts() {
    for spec in [gradual_drift(DatasetKind::CicIds2017), class_surge(DatasetKind::CicIds2018)] {
        let config = ReplayConfig { dimension: 160, train_samples: 800, ..ReplayConfig::default() };
        let outcome = replay(&spec, &config).unwrap();
        assert!(outcome.frozen_bit_identical, "{}: frozen lane diverged", spec.name);
        assert_eq!(outcome.flows, outcome.adaptive_verdicts.len());
        assert_eq!(outcome.adaptive.rejected, 0, "{}", spec.name);
        // Adaptation must never make the lane meaningfully worse than the
        // frozen artifact over the post-drift window.  (Prequential
        // accuracy on a high-overlap regime can sit a few points below a
        // frozen batch-trained model — the bound is a regression guard,
        // not a win claim.)
        assert!(
            outcome.recovery_delta() >= -0.08,
            "{}: adaptive {:.3} vs frozen {:.3}",
            spec.name,
            outcome.adaptive_recovery_accuracy,
            outcome.frozen_recovery_accuracy
        );
        let _ = ADAPTIVE_TENANT;
    }
}

// ---------------------------------------------------------------------
// 4. Crash-fault matrix: kill, corrupt, recover, continue — bit-identical
// ---------------------------------------------------------------------

/// Where the process dies, as fractions of the event schedule — early
/// (one checkpoint on disk), mid-stream and deep into the drift.
const KILL_FRACTIONS: [f64; 3] = [0.3, 0.6, 0.85];

/// The full bit-identity contract between a crashed-and-recovered
/// timeline and the uncrashed oracle: recovery horizon sanity, sealed
/// model bytes, open-set thresholds, the recalibration reservoir (entries
/// and candidate counter), prequential accuracy, every counter, and every
/// observed verdict.
fn assert_recovery_identity(
    cell: &str,
    oracle: &bench::crash::TimelineOutcome,
    crashed: &bench::crash::TimelineOutcome,
    report: &cyberhd::RecoveryReport,
    kill_event: usize,
    damage_checkpoint: bool,
) {
    assert!(
        report.next_event <= kill_event as u64,
        "{cell}: recovery cannot resurrect events that were never durable"
    );
    assert_eq!(report.checkpoint_events + report.events_replayed, report.next_event);
    if damage_checkpoint {
        assert!(
            report.checkpoints_skipped >= 1,
            "{cell}: the flipped checkpoint must be rejected, not trusted"
        );
    }

    // The crown: the recovered-and-continued lane is bit-identical
    // to the lane that never crashed.
    assert_eq!(crashed.sealed, oracle.sealed, "{cell}: final model must be bit-identical");
    match (&crashed.thresholds, &oracle.thresholds) {
        (Some(c), Some(o)) => {
            let c: Vec<u32> = c.iter().map(|t| t.to_bits()).collect();
            let o: Vec<u32> = o.iter().map(|t| t.to_bits()).collect();
            assert_eq!(c, o, "{cell}: open-set thresholds must be bit-identical");
        }
        (c, o) => assert_eq!(c.is_some(), o.is_some(), "{cell}: threshold presence must agree"),
    }
    assert_eq!(
        crashed.reservoir.1, oracle.reservoir.1,
        "{cell}: reservoir candidate counters must agree"
    );
    assert_eq!(
        crashed.reservoir.0.len(),
        oracle.reservoir.0.len(),
        "{cell}: reservoir sizes must agree"
    );
    for (slot, ((cr, cl), (or_, ol))) in
        crashed.reservoir.0.iter().zip(&oracle.reservoir.0).enumerate()
    {
        assert_eq!(cl, ol, "{cell} reservoir slot {slot}: label");
        let cr: Vec<u32> = cr.iter().map(|v| v.to_bits()).collect();
        let or_: Vec<u32> = or_.iter().map(|v| v.to_bits()).collect();
        assert_eq!(cr, or_, "{cell} reservoir slot {slot}: record must be bit-exact");
    }
    assert_eq!(
        crashed.prequential.to_bits(),
        oracle.prequential.to_bits(),
        "{cell}: prequential accuracy must be bit-identical"
    );
    let (c, o) = (&crashed.stats, &oracle.stats);
    assert_eq!(
        (c.flows_submitted, c.flows_served, c.samples_learned),
        (o.flows_submitted, o.flows_served, o.samples_learned),
        "{cell}"
    );
    assert_eq!(
        (c.feedback_submitted, c.feedback_applied),
        (o.feedback_submitted, o.feedback_applied),
        "{cell}"
    );
    assert_eq!(
        (c.monitor_trips, c.adaptations, c.regenerated_dimensions),
        (o.monitor_trips, o.adaptations, o.regenerated_dimensions),
        "{cell}: adaptation history must replay identically"
    );
    assert_eq!(
        (c.recalibrations, c.reservoir_size),
        (o.recalibrations, o.reservoir_size),
        "{cell}: recalibration history must replay identically"
    );

    // Every verdict the crashed timeline observed (replayed or
    // served after recovery) matches the oracle bit for bit, and
    // coverage reaches at least every flow from the recovery
    // checkpoint on.
    let mut covered = 0usize;
    for (seq, (got, want)) in crashed.verdicts.iter().zip(&oracle.verdicts).enumerate() {
        if let Some(got) = got {
            let want = want.as_ref().expect("oracle observed every verdict");
            assert_eq!(got.class, want.class, "{cell} flow {seq}");
            assert_eq!(
                got.similarity.to_bits(),
                want.similarity.to_bits(),
                "{cell} flow {seq}: similarity must be bit-exact"
            );
            assert_eq!(got.novel, want.novel, "{cell} flow {seq}");
            covered += 1;
        }
    }
    assert!(
        covered >= crashed.verdicts.len().saturating_sub(report.checkpoint_events as usize),
        "{cell}: {covered} verdicts observed, checkpoint at event {}",
        report.checkpoint_events
    );
}

fn run_crash_matrix(schedule: CrashSchedule, batched: bool) {
    for kind in DatasetKind::ALL {
        let seed = 0x6B17 + kind as u64 * 131;
        let cell = build_cell(kind, schedule, seed);
        let config = crash_config(cell.events.len(), scenario_monitor(), batched);
        let max_batch = config.adaptive.max_batch;
        let base = std::env::temp_dir()
            .join(format!("cyberhd_crash_{schedule:?}_{kind:?}_{batched}_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();

        let oracle = run_uncrashed(&base.join("oracle"), &cell, &config);
        if schedule == CrashSchedule::Abrupt {
            assert!(
                oracle.stats.monitor_trips >= 1,
                "{kind:?}: the rotated-label break must trip the monitor so the matrix crosses \
                 real adaptations, not just submits"
            );
        }

        for (point, fraction) in KILL_FRACTIONS.iter().enumerate() {
            let mut kill_event = (cell.events.len() as f64 * fraction) as usize;
            if batched {
                // A batched lane's flush boundaries are the multiples of
                // `max_batch` (the driver never flushes mid-schedule), so
                // aim the kills deliberately: point 0 dies exactly *on* a
                // batch boundary, the later points die mid-batch at
                // different offsets into the open batch.
                kill_event = match point {
                    0 => kill_event - kill_event % max_batch,
                    1 => kill_event - kill_event % max_batch + 3,
                    _ => kill_event - kill_event % max_batch + max_batch - 1,
                }
                .min(cell.events.len());
            }
            let dir = base.join(format!("kill{point}"));
            // The middle kill point also corrupts the newest checkpoint:
            // recovery must fall back to the previous one and still agree.
            let damage_checkpoint = point == 1;
            let (crashed, report) = run_crashed(
                &dir,
                &cell,
                &config,
                kill_event,
                seed ^ (0x9E37 * (point as u64 + 1)),
                damage_checkpoint,
            );
            let label = format!("{kind:?} {schedule:?} batched={batched} kill {point}");
            assert_recovery_identity(
                &label,
                &oracle,
                &crashed,
                &report,
                kill_event,
                damage_checkpoint,
            );
        }
        std::fs::remove_dir_all(&base).ok();
    }
}

#[test]
fn crash_matrix_abrupt_shift_recovers_bit_identically_at_every_kill_point() {
    run_crash_matrix(CrashSchedule::Abrupt, false);
}

#[test]
fn crash_matrix_gradual_drift_recovers_bit_identically_at_every_kill_point() {
    run_crash_matrix(CrashSchedule::Gradual, false);
}

#[test]
fn crash_matrix_zero_day_recovers_bit_identically_at_every_kill_point() {
    run_crash_matrix(CrashSchedule::ZeroDay, false);
}

#[test]
fn crash_matrix_batched_lanes_recover_bit_identically_mid_batch_and_on_boundaries() {
    // The batched-feedback matrix: kills land exactly on flush
    // boundaries (multiples of `max_batch`) and mid-batch at two
    // offsets, across every dataset kind.  Abrupt guarantees trips amid
    // the kills; ZeroDay adds open-set recalibration under batching.
    run_crash_matrix(CrashSchedule::Abrupt, true);
    run_crash_matrix(CrashSchedule::ZeroDay, true);
}

#[test]
fn crash_matrix_kill_on_checkpoint_aligned_recalibration_recovers_bit_identically() {
    // ZeroDay is the only schedule whose artifact carries open-set
    // thresholds, so its drift trips recalibrate from the reservoir.
    // `crash_config` checkpoints every 48 events; kills pinned to
    // multiples of 48 land exactly where a checkpoint (and, mid-surge,
    // the recalibration audit record of the flush feeding it) was just
    // written — the durable horizon *is* the kill point, nothing
    // replays, and the recovered state must still be bit-identical.
    for batched in [false, true] {
        let kind = DatasetKind::UnswNb15;
        let seed = 0xA11C + batched as u64;
        let cell = build_cell(kind, CrashSchedule::ZeroDay, seed);
        let config = crash_config(cell.events.len(), scenario_monitor(), batched);
        let checkpoint_every = config.checkpoint_every;
        let base = std::env::temp_dir()
            .join(format!("cyberhd_crash_ckpt_recal_{batched}_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();

        let oracle = run_uncrashed(&base.join("oracle"), &cell, &config);
        assert!(
            oracle.stats.recalibrations >= 1,
            "the zero-day surge must recalibrate at least once for this cell to mean anything"
        );
        assert!(oracle.thresholds.is_some(), "the zero-day artifact is open-set");

        // The novel-class surge starts at flow 90; with interleaved
        // feedback that is comfortably before the third checkpoint, so
        // these aligned kills bracket the recalibrating stretch.
        for (point, multiple) in [3usize, 4, 5].into_iter().enumerate() {
            let kill_event = checkpoint_every as usize * multiple;
            assert!(kill_event < cell.events.len(), "schedule long enough for aligned kills");
            let dir = base.join(format!("kill{point}"));
            let (crashed, report) =
                run_crashed(&dir, &cell, &config, kill_event, seed ^ (0x77AA << point), false);
            let label = format!("{kind:?} ZeroDay batched={batched} ckpt-aligned kill {multiple}");
            assert_recovery_identity(&label, &oracle, &crashed, &report, kill_event, false);
        }
        std::fs::remove_dir_all(&base).ok();
    }
}

//! Integration tests for the robustness study (Fig. 5): HDC models degrade
//! gracefully under random bit flips, far more gracefully than the DNN, and
//! lower-precision HDC deployments are the most robust.

use cyberhd_suite::prelude::*;

fn prepared() -> (Vec<Vec<f32>>, Vec<usize>, Vec<Vec<f32>>, Vec<usize>, usize, usize) {
    let dataset = DatasetKind::NslKdd
        .generate(&SyntheticConfig::new(2_000, 13).difficulty(1.3))
        .expect("generation succeeds");
    let (train, test) = train_test_split(&dataset, 0.25, 13).expect("split succeeds");
    let preprocessor = Preprocessor::fit(&train, Normalization::MinMax).expect("fit succeeds");
    let (train_x, train_y) = preprocessor.transform_with_labels(&train).expect("transform");
    let (test_x, test_y) = preprocessor.transform_with_labels(&test).expect("transform");
    (train_x, train_y, test_x, test_y, preprocessor.output_width(), dataset.num_classes())
}

fn mean_corrupted_accuracy(
    deployed: &QuantizedModel,
    test_x: &[Vec<f32>],
    test_y: &[usize],
    rate: f64,
) -> f64 {
    let mut total = 0.0;
    for trial in 0..3u64 {
        let mut corrupted = deployed.clone();
        let mut injector = BitFlipInjector::new(rate, 40 + trial).unwrap();
        injector.flip_quantized_set(corrupted.classes_mut());
        total += corrupted.accuracy(test_x, test_y).unwrap();
    }
    total / 3.0
}

#[test]
fn one_bit_cyberhd_survives_heavy_bit_flips() {
    let (train_x, train_y, test_x, test_y, width, classes) = prepared();
    let config = CyberHdConfig::builder(width, classes)
        .dimension(512)
        .retrain_epochs(5)
        .regeneration_rate(0.2)
        .encode_threads(2)
        .seed(3)
        .build()
        .unwrap();
    let model = CyberHdTrainer::new(config).unwrap().fit(&train_x, &train_y).unwrap();

    let deployed = model.quantize(BitWidth::B1);
    let clean = deployed.accuracy(&test_x, &test_y).unwrap();
    let corrupted = mean_corrupted_accuracy(&deployed, &test_x, &test_y, 0.10);
    let loss = clean - corrupted;
    assert!(
        loss < 0.10,
        "a 1-bit HDC model should lose only a few accuracy points at a 10% flip rate, lost {loss}"
    );
}

#[test]
fn hdc_is_more_robust_than_the_dnn_at_matching_flip_rates() {
    let (train_x, train_y, test_x, test_y, width, classes) = prepared();

    // CyberHD deployed at 1 bit.
    let config = CyberHdConfig::builder(width, classes)
        .dimension(512)
        .retrain_epochs(5)
        .regeneration_rate(0.2)
        .encode_threads(2)
        .seed(5)
        .build()
        .unwrap();
    let model = CyberHdTrainer::new(config).unwrap().fit(&train_x, &train_y).unwrap();
    let deployed = model.quantize(BitWidth::B1);
    let hdc_clean = deployed.accuracy(&test_x, &test_y).unwrap();
    let hdc_corrupted = mean_corrupted_accuracy(&deployed, &test_x, &test_y, 0.10);
    let hdc_loss = (hdc_clean - hdc_corrupted).max(0.0);

    // The DNN with bit flips in its f32 weights.
    let mut mlp =
        Mlp::new(MlpConfig::new(width, classes).hidden_layers(vec![128, 128]).epochs(10).seed(5))
            .unwrap();
    mlp.fit(&train_x, &train_y).unwrap();
    let dnn_clean = mlp.accuracy(&test_x, &test_y).unwrap();
    let mut dnn_corrupted_total = 0.0;
    for trial in 0..3u64 {
        let mut corrupted = mlp.clone();
        let mut injector = BitFlipInjector::new(0.10, 80 + trial).unwrap();
        injector.flip_mlp(&mut corrupted);
        dnn_corrupted_total +=
            eval::metrics::accuracy(&corrupted.predict_batch(&test_x).unwrap(), &test_y).unwrap();
    }
    let dnn_loss = (dnn_clean - dnn_corrupted_total / 3.0).max(0.0);

    assert!(
        hdc_loss < dnn_loss,
        "1-bit CyberHD (loss {hdc_loss:.3}) should degrade less than the DNN (loss {dnn_loss:.3}) \
         at a 10% flip rate"
    );
}

#[test]
fn robustness_decreases_as_hdc_precision_grows() {
    let (train_x, train_y, test_x, test_y, width, classes) = prepared();
    let config = CyberHdConfig::builder(width, classes)
        .dimension(512)
        .retrain_epochs(5)
        .regeneration_rate(0.2)
        .encode_threads(2)
        .seed(7)
        .build()
        .unwrap();
    let model = CyberHdTrainer::new(config).unwrap().fit(&train_x, &train_y).unwrap();

    let loss_at = |bits: BitWidth| {
        let deployed = model.quantize(bits);
        let clean = deployed.accuracy(&test_x, &test_y).unwrap();
        (clean - mean_corrupted_accuracy(&deployed, &test_x, &test_y, 0.15)).max(0.0)
    };
    let loss_1 = loss_at(BitWidth::B1);
    let loss_8 = loss_at(BitWidth::B8);
    assert!(
        loss_1 <= loss_8 + 0.02,
        "1-bit deployment (loss {loss_1:.3}) should be at least as robust as 8-bit ({loss_8:.3})"
    );
}

//! Property-style fuzz of the `hdc::codec` persistence layer.
//!
//! The codec is the trust boundary of every deployed artifact: bytes
//! arrive over the wire (`DetectorRegistry::swap_from_bytes`) or from
//! disk, and a malformed stream must **fail with an error — never panic,
//! never allocate unboundedly, never mis-decode** into a silently wrong
//! model.  This suite pins that contract three ways:
//!
//! 1. **Round trips** — every persistable struct (detector artifacts of
//!    all backend shapes, schemas, preprocessors, encoders, class
//!    memories, quantized hypervectors) re-serializes to the exact same
//!    bytes across randomized shapes, and the reloaded artifact reproduces
//!    verdicts bit for bit.
//! 2. **Targeted corruption** — truncations at every prefix length,
//!    flipped magic/version bytes and corrupted length fields all return
//!    errors.
//! 3. **Random corruption / random input** — seeded storage faults from
//!    [`fault_inject::disk::DiskFaultInjector`] (byte flips, truncations,
//!    torn writes) and arbitrary byte soup through the `Reader`
//!    primitives never panic (a panic fails the test by construction).

use cyberhd::model::AnyEncoder;
use cyberhd_suite::prelude::*;
use hdc::codec::{Reader, Writer};
use hdc::rng::HdcRng;
use hdc::QuantizedHypervector;

fn dataset(kind: DatasetKind, samples: usize, seed: u64) -> Dataset {
    kind.generate(&SyntheticConfig::new(samples, seed).difficulty(1.2))
        .expect("synthetic generation")
}

/// One detector per backend shape at a randomized dimension.
fn shaped_detectors(rng: &mut HdcRng) -> Vec<(String, Detector, Dataset)> {
    let mut artifacts = Vec::new();
    for (i, kind) in DatasetKind::ALL.into_iter().enumerate() {
        let data = dataset(kind, 250, 100 + i as u64);
        let dim = 48 + 16 * rng.index(6); // 48..=128
        let builder = Detector::builder().dimension(dim).retrain_epochs(1).seed(7 + i as u64);
        let shapes: Vec<(String, Detector)> = match i % 4 {
            0 => vec![
                ("dense".into(), builder.clone().train(&data).unwrap()),
                ("open_set".into(), builder.clone().open_set(0.05).train(&data).unwrap()),
            ],
            1 => vec![("b1".into(), builder.clone().quantize(BitWidth::B1).train(&data).unwrap())],
            2 => vec![("b2".into(), builder.clone().quantize(BitWidth::B2).train(&data).unwrap())],
            _ => vec![("online".into(), builder.clone().online().train(&data).unwrap())],
        };
        for (shape, detector) in shapes {
            artifacts.push((format!("{kind:?}/{shape}/dim{dim}"), detector, data.clone()));
        }
    }
    artifacts
}

#[test]
fn detector_artifacts_reserialize_identically_and_reproduce_verdicts() {
    let mut rng = HdcRng::seed_from(0xC0DEC);
    for (label, detector, data) in shaped_detectors(&mut rng) {
        let bytes = detector.to_bytes();
        let loaded = Detector::from_bytes(&bytes).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(loaded.to_bytes(), bytes, "{label}: reserialization must be byte-identical");
        assert_eq!(loaded.info(), detector.info(), "{label}");
        for record in data.records().iter().take(20) {
            let original = detector.detect(record).unwrap();
            let replayed = loaded.detect(record).unwrap();
            assert_eq!(replayed.class, original.class, "{label}");
            assert_eq!(
                replayed.similarity.to_bits(),
                original.similarity.to_bits(),
                "{label}: loaded artifacts must reproduce similarities bit for bit"
            );
            assert_eq!(replayed.novel, original.novel, "{label}");
        }
    }
}

#[test]
fn every_truncation_errors_and_magic_version_flips_are_rejected() {
    let data = dataset(DatasetKind::NslKdd, 200, 3);
    let detector = Detector::builder().dimension(48).retrain_epochs(1).train(&data).unwrap();
    let bytes = detector.to_bytes();

    // Every strict prefix must fail: either the parse hits EOF, or a
    // "complete" parse would have consumed bytes the prefix does not hold.
    for n in 0..bytes.len() {
        assert!(
            Detector::from_bytes(&bytes[..n]).is_err(),
            "truncation to {n}/{} bytes must not decode",
            bytes.len()
        );
    }

    // Any single-byte change to the magic tag or the format version must
    // be rejected (bytes 0..4 magic, 4..8 version).
    for index in 0..8 {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = bytes.clone();
            corrupt[index] ^= flip;
            assert!(
                Detector::from_bytes(&corrupt).is_err(),
                "flipping byte {index} with {flip:#x} must be rejected"
            );
        }
    }

    // Trailing garbage is rejected too (the reader demands exhaustion).
    let mut trailing = bytes.clone();
    trailing.extend_from_slice(&[0, 1, 2]);
    assert!(Detector::from_bytes(&trailing).is_err());
}

#[test]
fn corrupted_length_fields_fail_before_allocating() {
    let data = dataset(DatasetKind::UnswNb15, 200, 5);
    let detector = Detector::builder().dimension(48).retrain_epochs(1).train(&data).unwrap();
    let mut bytes = detector.to_bytes();
    // The first length field is the schema-name prefix at offset 8 (magic
    // + version).  A huge declared length must fail the up-front size
    // guard instead of allocating.
    for b in &mut bytes[8..16] {
        *b = 0xFF;
    }
    assert!(Detector::from_bytes(&bytes).is_err());

    // The same guard at the primitive level: a vector whose declared
    // element count cannot fit the remaining bytes fails before any
    // element is read.
    let mut w = Writer::new();
    w.usize(usize::MAX / 16);
    w.bytes(&[0u8; 64]);
    let soup = w.into_bytes();
    assert!(Reader::new(&soup).f32_vec().is_err());
    assert!(Reader::new(&soup).f64_vec().is_err());
    assert!(Reader::new(&soup).i32_vec().is_err());
    assert!(Reader::new(&soup).str().is_err());
}

#[test]
fn random_single_byte_corruption_never_panics() {
    let data = dataset(DatasetKind::CicIds2017, 200, 7);
    let detector = Detector::builder().dimension(48).retrain_epochs(1).train(&data).unwrap();
    let bytes = detector.to_bytes();
    let mut faults = DiskFaultInjector::new(0xF1177);
    let mut decoded_ok = 0usize;
    for _ in 0..400 {
        let mut corrupt = bytes.clone();
        faults.flip_byte(&mut corrupt).expect("artifact is non-empty");
        // The v2 CRC trailer catches every single-bit flip over the
        // checksummed span; only flips landing in the trailer itself can
        // fail differently (a checksum mismatch either way).  No panic,
        // and nothing corrupted may silently decode.
        if Detector::from_bytes(&corrupt).is_ok() {
            decoded_ok += 1;
        }
    }
    assert_eq!(decoded_ok, 0, "the artifact checksum must reject every single-bit corruption");
}

#[test]
fn random_storage_faults_never_panic_and_never_silently_decode() {
    let data = dataset(DatasetKind::CicIds2018, 200, 9);
    let detector = Detector::builder().dimension(48).retrain_epochs(1).train(&data).unwrap();
    let bytes = detector.to_bytes();
    let mut faults = DiskFaultInjector::new(0xD15C);
    for trial in 0..200 {
        let mut corrupt = bytes.clone();
        match faults.corrupt(&mut corrupt) {
            DiskFault::None => unreachable!("artifact is non-empty"),
            // Truncation removes at least a byte; flips are caught by the
            // CRC trailer.  Both must yield a defined error.
            DiskFault::Truncated(_) | DiskFault::FlippedByte(_) => {
                assert!(
                    Detector::from_bytes(&corrupt).is_err(),
                    "trial {trial}: a storage fault decoded as a valid artifact"
                );
            }
        }
        // A torn re-write (old artifact + partial new artifact) is what a
        // crashed save-over looks like; it must be rejected too.
        let mut torn = bytes.clone();
        faults.torn_write(&mut torn, &bytes);
        if torn.len() != bytes.len() {
            assert!(
                Detector::from_bytes(&torn).is_err(),
                "trial {trial}: a torn append decoded as a valid artifact"
            );
        }
    }
}

#[test]
fn reader_primitives_never_panic_on_arbitrary_byte_soup() {
    let mut rng = HdcRng::seed_from(0x50E9);
    for trial in 0..200 {
        let len = rng.index(257);
        let soup: Vec<u8> = (0..len).map(|_| rng.index(256) as u8).collect();
        let mut r = Reader::new(&soup);
        // A random op sequence over random bytes: every outcome is Ok or
        // Err, never a panic, and `remaining` stays consistent.
        for _ in 0..64 {
            let before = r.remaining();
            match rng.index(11) {
                0 => drop(r.u8()),
                1 => drop(r.u32()),
                2 => drop(r.u64()),
                3 => drop(r.usize()),
                4 => drop(r.i32()),
                5 => drop(r.f32()),
                6 => drop(r.f64()),
                7 => drop(r.bool()),
                8 => drop(r.str()),
                9 => drop(r.f32_vec()),
                _ => drop(r.take(rng.index(before + 2))),
            }
            assert!(r.remaining() <= before, "trial {trial}: reader went backwards");
        }
    }
}

#[test]
fn persistable_components_round_trip_with_randomized_shapes() {
    let mut rng = HdcRng::seed_from(0x511A9E5);
    for trial in 0..8u64 {
        // Class memories with random shapes and random contents.
        let classes = 2 + rng.index(5);
        let dim = 8 + rng.index(120);
        let memory = AssociativeMemory::from_class_hypervectors(
            (0..classes)
                .map(|_| {
                    Hypervector::from_vec((0..dim).map(|_| rng.normal(0.0, 1.0) as f32).collect())
                })
                .collect(),
        )
        .unwrap();
        let mut w = Writer::new();
        memory.write_to(&mut w);
        let bytes = w.into_bytes();
        let loaded = AssociativeMemory::read_from(&mut Reader::new(&bytes)).unwrap();
        let mut again = Writer::new();
        loaded.write_to(&mut again);
        assert_eq!(again.into_bytes(), bytes, "memory trial {trial}");
        assert!(Reader::new(&bytes[..bytes.len() - 1]).remaining() < bytes.len());
        assert!(AssociativeMemory::read_from(&mut Reader::new(&bytes[..bytes.len() / 2])).is_err());

        // Quantized hypervectors at every bitwidth.
        for width in BitWidth::ALL {
            let hv = Hypervector::from_vec((0..dim).map(|_| rng.normal(0.0, 2.0) as f32).collect());
            let quantized = QuantizedHypervector::quantize(&hv, width);
            let mut w = Writer::new();
            quantized.write_to(&mut w);
            let bytes = w.into_bytes();
            let loaded = QuantizedHypervector::read_from(&mut Reader::new(&bytes)).unwrap();
            assert_eq!(loaded.levels(), quantized.levels(), "{width} trial {trial}");
            assert_eq!(loaded.scale().to_bits(), quantized.scale().to_bits());
            let mut again = Writer::new();
            loaded.write_to(&mut again);
            assert_eq!(again.into_bytes(), bytes);
            assert!(QuantizedHypervector::read_from(&mut Reader::new(&bytes[..bytes.len() - 1]))
                .is_err());
        }

        // Schemas + fitted preprocessors over every dataset kind, and the
        // encoder family dispatcher.
        let kind = DatasetKind::ALL[rng.index(4)];
        let data = dataset(kind, 120, 40 + trial);
        let normalization =
            if rng.bernoulli(0.5) { Normalization::MinMax } else { Normalization::ZScore };
        let preprocessor = Preprocessor::fit(&data, normalization).unwrap();
        let mut w = Writer::new();
        preprocessor.write_to(&mut w);
        let bytes = w.into_bytes();
        let loaded = Preprocessor::read_from(&mut Reader::new(&bytes)).unwrap();
        let mut again = Writer::new();
        loaded.write_to(&mut again);
        assert_eq!(again.into_bytes(), bytes, "preprocessor {kind:?} trial {trial}");
        let record = data.records()[0].as_slice();
        assert_eq!(
            loaded.transform_record(record).unwrap(),
            preprocessor.transform_record(record).unwrap(),
            "reloaded preprocessors must transform bit-identically"
        );
        assert!(Preprocessor::read_from(&mut Reader::new(&bytes[..bytes.len() / 3])).is_err());

        let mut configs: Vec<CyberHdConfig> =
            [EncoderKind::Rbf, EncoderKind::IdLevel, EncoderKind::Record]
                .into_iter()
                .map(|encoder_kind| {
                    CyberHdConfig::builder(preprocessor.output_width(), data.num_classes())
                        .dimension(64)
                        .encoder(encoder_kind)
                        .regeneration_rate(0.0) // static encoders cannot regenerate
                        .seed(trial)
                        .build()
                        .unwrap()
                })
                .collect();
        // The symbolic family rides through the same tagged dispatcher,
        // with its extra config fields (order, alphabets) in the stream.
        configs.push(
            CyberHdConfig::builder(4 + rng.index(20), 2 + rng.index(6))
                .dimension(64)
                .encoder(EncoderKind::NGram)
                .ngram_order(1 + rng.index(3))
                .symbol_alphabets(vec![2 + rng.index(30)])
                .regeneration_rate(0.0)
                .seed(trial)
                .build()
                .unwrap(),
        );
        let columns = 2 + rng.index(6);
        let alphabets: Vec<usize> =
            (0..columns).map(|_| if rng.bernoulli(0.4) { 0 } else { 2 + rng.index(9) }).collect();
        configs.push(
            CyberHdConfig::builder(columns, 2 + rng.index(6))
                .dimension(64)
                .encoder(EncoderKind::SymbolRecord)
                .symbol_alphabets(alphabets)
                .id_level_levels(4 + rng.index(12))
                .regeneration_rate(0.0)
                .seed(trial)
                .build()
                .unwrap(),
        );
        for config in configs {
            let encoder_kind = config.encoder;
            let encoder = AnyEncoder::from_config(&config).unwrap();
            let mut w = Writer::new();
            encoder.write_to(&mut w);
            let bytes = w.into_bytes();
            let loaded = AnyEncoder::read_from(&mut Reader::new(&bytes)).unwrap();
            let mut again = Writer::new();
            loaded.write_to(&mut again);
            assert_eq!(again.into_bytes(), bytes, "{encoder_kind:?} trial {trial}");
            assert!(AnyEncoder::read_from(&mut Reader::new(&bytes[..bytes.len() - 2])).is_err());
        }
    }
}

#[test]
fn symbolic_components_round_trip_and_survive_corruption_without_panicking() {
    let mut rng = HdcRng::seed_from(0x5E9_B01);
    let mut faults = DiskFaultInjector::new(0x5E9_FA17);
    for trial in 0..6u64 {
        let dim = 32 + 8 * rng.index(12);
        let alphabet = 2 + rng.index(30);
        let order = 1 + rng.index(3);
        let sequence_len = order + rng.index(20);
        let columns = 1 + rng.index(6);
        let alphabets: Vec<usize> =
            (0..columns).map(|_| if rng.bernoulli(0.4) { 0 } else { 2 + rng.index(9) }).collect();

        // Each symbolic component: serialize → reload → re-serialize must
        // be byte-identical, every strict truncation must error, and 200
        // seeded storage faults per component must never panic — if a
        // flip happens to decode at this CRC-less layer, the decoded
        // value must still re-serialize without panicking.
        let items = ItemMemory::new(alphabet, dim, 0x11 + trial).unwrap();
        let ngram = NGramEncoder::new(sequence_len, alphabet, order, dim, 0x22 + trial).unwrap();
        let record =
            SymbolRecordEncoder::new(&alphabets, dim, 4 + rng.index(12), 0x33 + trial).unwrap();

        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("item_memory", {
                let mut w = Writer::new();
                items.write_to(&mut w);
                w.into_bytes()
            }),
            ("ngram", {
                let mut w = Writer::new();
                ngram.write_to(&mut w);
                w.into_bytes()
            }),
            ("symbol_record", {
                let mut w = Writer::new();
                record.write_to(&mut w);
                w.into_bytes()
            }),
        ];
        for (label, bytes) in &cases {
            let reload = |buf: &[u8]| -> Result<Vec<u8>, hdc::codec::CodecError> {
                let mut r = Reader::new(buf);
                let mut again = Writer::new();
                match *label {
                    "item_memory" => ItemMemory::read_from(&mut r)?.write_to(&mut again),
                    "ngram" => NGramEncoder::read_from(&mut r)?.write_to(&mut again),
                    _ => SymbolRecordEncoder::read_from(&mut r)?.write_to(&mut again),
                }
                Ok(again.into_bytes())
            };
            let roundtripped = reload(bytes).unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(&roundtripped, bytes, "{label} trial {trial}: must be byte-identical");
            for n in 0..bytes.len() {
                assert!(
                    reload(&bytes[..n]).is_err(),
                    "{label} trial {trial}: truncation to {n} bytes must not decode"
                );
            }
            for _ in 0..200 {
                let mut corrupt = bytes.clone();
                match faults.corrupt(&mut corrupt) {
                    DiskFault::None => unreachable!("component streams are non-empty"),
                    DiskFault::Truncated(_) | DiskFault::FlippedByte(_) => {
                        let _ = reload(&corrupt); // must not panic
                    }
                }
            }
        }
    }
}

//! Integration suite for the `cyberhd::serve` micro-batching engine.
//!
//! Pins the three load-bearing properties of the serving layer:
//!
//! 1. **Determinism** — ticket verdicts are bit-identical to one
//!    [`Detector::detect_batch`] call over the same flows in submission
//!    order, across randomized arrival interleavings, randomized flush
//!    boundaries, all four dataset kinds and all three backend shapes
//!    (dense, quantized, open-set).
//! 2. **Hot-swap atomicity** — every verdict is computed against exactly
//!    one artifact version: flows admitted before a registry swap score on
//!    the old artifact even if they flush after it, flows admitted after
//!    score on the new one, and no batch ever mixes the two.
//! 3. **Backpressure** — a full bounded queue rejects submissions without
//!    corrupting queued work, and drains back to health.

use cyberhd::serve::ServeError;
use cyberhd_suite::prelude::*;
use hdc::rng::HdcRng;
use std::sync::Arc;
use std::time::Duration;

fn generate(kind: DatasetKind, samples: usize, seed: u64) -> Dataset {
    kind.generate(&SyntheticConfig::new(samples, seed).difficulty(1.3))
        .expect("synthetic generation")
}

/// One detector per backend shape, keyed off the dataset kind so the
/// determinism sweep exercises dense, 1-bit, 2-bit and open-set scoring.
fn shaped_detector(kind: DatasetKind, data: &Dataset, seed: u64) -> Detector {
    let builder = Detector::builder().dimension(192).retrain_epochs(1).seed(seed);
    match kind {
        DatasetKind::NslKdd => builder,
        DatasetKind::UnswNb15 => builder.quantize(BitWidth::B1),
        DatasetKind::CicIds2017 => builder.open_set(0.05),
        DatasetKind::CicIds2018 => builder.quantize(BitWidth::B2),
    }
    .train(data)
    .expect("training succeeds")
}

#[test]
fn verdicts_are_bit_identical_to_detect_batch_across_interleavings() {
    for kind in DatasetKind::ALL {
        let data = generate(kind, 500, 31);
        let detector = shaped_detector(kind, &data, 7);

        // Two concurrent sources (tenants) of the same traffic shape: even
        // flows hit `even`, odd flows hit `odd`.
        let even: Vec<Vec<f32>> = data.records().iter().step_by(2).take(90).cloned().collect();
        let odd: Vec<Vec<f32>> =
            data.records().iter().skip(1).step_by(2).take(90).cloned().collect();
        let oracle_even = detector.detect_batch(&even).unwrap();
        let oracle_odd = detector.detect_batch(&odd).unwrap();

        // >= 3 randomized interleavings per kind, each with randomized
        // micro-batch watermarks and flush boundaries.
        for trial in 0..3u64 {
            let mut rng = HdcRng::seed_from(1000 * trial + kind as u64);
            let registry = Arc::new(DetectorRegistry::new());
            registry.register("even", detector.clone()).unwrap();
            registry.register("odd", detector.clone()).unwrap();
            let config = ServeConfig {
                max_batch: 3 + rng.index(14),
                max_delay: Duration::from_millis(50),
                ..ServeConfig::default()
            };
            let engine = ServeEngine::new(Arc::clone(&registry), config).unwrap();

            // Random merge of the two arrival streams, preserving each
            // tenant's internal order; random explicit flushes in between.
            let mut tickets_even = Vec::new();
            let mut tickets_odd = Vec::new();
            let (mut next_even, mut next_odd) = (0usize, 0usize);
            while next_even < even.len() || next_odd < odd.len() {
                let pick_even =
                    next_odd == odd.len() || (next_even < even.len() && rng.bernoulli(0.5));
                if pick_even {
                    tickets_even.push(engine.submit("even", &even[next_even]).unwrap());
                    next_even += 1;
                } else {
                    tickets_odd.push(engine.submit("odd", &odd[next_odd]).unwrap());
                    next_odd += 1;
                }
                if rng.bernoulli(0.1) {
                    let tenant = if rng.bernoulli(0.5) { "even" } else { "odd" };
                    engine.flush(tenant).unwrap();
                }
                if rng.bernoulli(0.05) {
                    engine.poll();
                }
            }
            engine.flush_all();

            for (tickets, oracle, tenant) in
                [(&tickets_even, &oracle_even, "even"), (&tickets_odd, &oracle_odd, "odd")]
            {
                for (i, (ticket, want)) in tickets.iter().zip(oracle.iter()).enumerate() {
                    let got = engine.take(ticket).unwrap();
                    assert_eq!(got.class, want.class, "{kind:?} {tenant} flow {i} trial {trial}");
                    assert_eq!(
                        got.similarity.to_bits(),
                        want.similarity.to_bits(),
                        "{kind:?} {tenant} flow {i} trial {trial}: similarity must be bit-exact"
                    );
                    assert_eq!(got.novel, want.novel, "{kind:?} {tenant} flow {i} trial {trial}");
                }
            }
            let stats = engine.stats("even").unwrap();
            assert_eq!(stats.flows_served, even.len() as u64);
            assert_eq!(stats.queue_depth, 0);
            assert_eq!(stats.uncollected, 0);
            assert!(stats.batches >= 1);
        }
    }
}

#[test]
fn concurrent_submitters_preserve_the_oracle_per_tenant() {
    let data = generate(DatasetKind::NslKdd, 700, 37);
    let detector =
        Detector::builder().dimension(160).retrain_epochs(1).seed(3).train(&data).unwrap();
    let registry = Arc::new(DetectorRegistry::new());
    let tenants = ["edge-a", "edge-b", "edge-c"];
    for tenant in tenants {
        registry.register(tenant, detector.clone()).unwrap();
    }
    let engine = ServeEngine::new(
        Arc::clone(&registry),
        ServeConfig { max_batch: 16, ..ServeConfig::default() },
    )
    .unwrap();

    // One source thread per tenant; each gets its own slice of the corpus.
    let slices: Vec<Vec<Vec<f32>>> = (0..tenants.len())
        .map(|t| data.records().iter().skip(t).step_by(tenants.len()).take(120).cloned().collect())
        .collect();
    let mut all_tickets: Vec<Vec<Ticket>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = tenants
            .iter()
            .zip(&slices)
            .map(|(tenant, flows)| {
                let engine = &engine;
                scope.spawn(move || {
                    flows
                        .iter()
                        .map(|record| engine.submit(tenant, record).unwrap())
                        .collect::<Vec<Ticket>>()
                })
            })
            .collect();
        all_tickets = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });
    engine.flush_all();

    for (flows, tickets) in slices.iter().zip(&all_tickets) {
        let oracle = detector.detect_batch(flows).unwrap();
        for (ticket, want) in tickets.iter().zip(oracle) {
            assert_eq!(engine.take(ticket).unwrap(), want);
        }
    }
}

#[test]
fn hot_swap_is_atomic_per_batch() {
    let data = generate(DatasetKind::NslKdd, 600, 41);
    // Different seeds => same shape, different weights and verdicts.
    let v1 = Detector::builder().dimension(160).retrain_epochs(1).seed(1).train(&data).unwrap();
    let v2 = Detector::builder().dimension(224).retrain_epochs(2).seed(99).train(&data).unwrap();
    let flows: Vec<Vec<f32>> = data.records()[..60].to_vec();
    let oracle_v1 = v1.detect_batch(&flows).unwrap();
    let oracle_v2 = v2.detect_batch(&flows).unwrap();
    assert_ne!(
        oracle_v1.iter().map(|v| v.class).collect::<Vec<_>>(),
        oracle_v2.iter().map(|v| v.class).collect::<Vec<_>>(),
        "the two artifact versions must disagree somewhere for this test to have power"
    );

    let registry = Arc::new(DetectorRegistry::new());
    registry.register("edge", v1).unwrap();
    let engine = ServeEngine::new(
        Arc::clone(&registry),
        ServeConfig { max_batch: 8, ..ServeConfig::default() },
    )
    .unwrap();

    // 20 flows admitted under v1; the last 4 are still pending (20 % 8)
    // when the registry swaps.  They must still score on v1.
    let tickets_v1: Vec<Ticket> =
        flows[..20].iter().map(|r| engine.submit("edge", r).unwrap()).collect();
    assert_eq!(engine.stats("edge").unwrap().queue_depth, 4);
    assert_eq!(registry.swap("edge", v2).unwrap(), 2);
    // Flows admitted after the swap score on v2.
    let tickets_v2: Vec<Ticket> =
        flows[20..].iter().map(|r| engine.submit("edge", r).unwrap()).collect();
    engine.flush("edge").unwrap();

    for (i, ticket) in tickets_v1.iter().enumerate() {
        assert_eq!(
            engine.take(ticket).unwrap(),
            oracle_v1[i],
            "flow {i} was admitted under v1 and must score on v1 even though it flushed after \
             the swap"
        );
    }
    for (i, ticket) in tickets_v2.iter().enumerate() {
        assert_eq!(
            engine.take(ticket).unwrap(),
            oracle_v2[20 + i],
            "flow {} was admitted under v2 and must score on v2",
            20 + i
        );
    }
    assert_eq!(engine.stats("edge").unwrap().detector_version, 2);
}

#[test]
fn backpressure_rejects_at_capacity_and_drains_back_to_health() {
    let data = generate(DatasetKind::UnswNb15, 400, 43);
    let detector =
        Detector::builder().dimension(128).retrain_epochs(1).seed(5).train(&data).unwrap();
    let registry = Arc::new(DetectorRegistry::new());
    registry.register("edge", detector.clone()).unwrap();
    let engine = ServeEngine::new(
        Arc::clone(&registry),
        ServeConfig { max_batch: 8, queue_capacity: 8, ..ServeConfig::default() },
    )
    .unwrap();

    // Eight submissions fill the queue (the eighth auto-flushes into eight
    // uncollected verdicts, which still occupy the bounded queue).
    let tickets: Vec<Ticket> =
        data.records()[..8].iter().map(|r| engine.submit("edge", r).unwrap()).collect();
    let err = engine.submit("edge", &data.records()[8]).unwrap_err();
    match &err {
        ServeError::Backpressure { tenant, capacity, depth, retry_hint } => {
            assert_eq!(tenant, "edge");
            assert_eq!(*capacity, 8);
            assert_eq!(*depth, 8, "the error reports the live occupancy at rejection time");
            assert_eq!(
                *retry_hint,
                engine.config().max_delay,
                "the retry hint is the flush cadence: one max_delay from now the queue has moved"
            );
        }
        other => panic!("ninth submission must push back, got {other:?}"),
    }
    let stats = engine.stats("edge").unwrap();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.uncollected, 8);
    assert_eq!(stats.flows_submitted, 8);

    // Draining one ticket frees one slot; the queued work was untouched.
    let oracle = detector.detect_batch(&data.records()[..8]).unwrap();
    assert_eq!(engine.take(&tickets[0]).unwrap(), oracle[0]);
    let refill = engine.submit("edge", &data.records()[8]).unwrap();
    // The rejected submission was issued no ticket and consumed no
    // sequence number: the first accepted retry continues exactly where
    // the eighth accepted flow left off.
    assert_eq!(
        refill.seq(),
        tickets[7].seq() + 1,
        "a backpressured submission must not burn a sequence slot"
    );
    assert_eq!(
        engine.take(&refill).unwrap(),
        detector.detect_batch(&data.records()[8..9]).unwrap()[0]
    );
    for (ticket, want) in tickets[1..].iter().zip(&oracle[1..]) {
        assert_eq!(engine.take(ticket).unwrap(), *want);
    }
}

#[test]
fn evicting_a_tenant_with_queued_submissions_fails_tickets_with_defined_errors() {
    let data = generate(DatasetKind::NslKdd, 400, 53);
    let detector =
        Detector::builder().dimension(128).retrain_epochs(1).seed(9).train(&data).unwrap();
    let registry = Arc::new(DetectorRegistry::new());
    registry.register("edge", detector.clone()).unwrap();
    let engine = ServeEngine::new(
        Arc::clone(&registry),
        ServeConfig { max_batch: 64, ..ServeConfig::default() },
    )
    .unwrap();

    // Queue several flows without flushing, then evict the lane while the
    // tenant stays registered.  Every outstanding ticket must resolve with
    // a defined error — not hang, not collect a buried verdict.
    let tickets: Vec<Ticket> =
        data.records()[..5].iter().map(|r| engine.submit("edge", r).unwrap()).collect();
    assert!(engine.evict("edge"));
    for ticket in &tickets {
        assert!(matches!(engine.take(ticket), Err(ServeError::UnknownTicket)));
        assert!(matches!(engine.try_take(ticket), Err(ServeError::UnknownTicket)));
    }
    // poll() after the eviction is a no-op for the orphan (nothing left to
    // flush) and new submissions start a fresh lane with fresh sequence
    // numbers whose verdicts old tickets cannot collect.
    std::thread::sleep(engine.config().max_delay);
    engine.poll();
    let fresh = engine.submit("edge", &data.records()[0]).unwrap();
    assert_eq!(fresh.seq(), tickets[0].seq(), "the recreated lane recycles sequence numbers");
    engine.flush("edge").unwrap();
    assert!(matches!(engine.take(&tickets[0]), Err(ServeError::UnknownTicket)));
    assert_eq!(
        engine.take(&fresh).unwrap(),
        detector.detect_batch(&data.records()[..1]).unwrap()[0]
    );

    // The registry-removal flavour: queued flows, tenant removed, poll
    // reaps the lane; tickets now fail with UnknownTenant.
    let queued: Vec<Ticket> =
        data.records()[..5].iter().map(|r| engine.submit("edge", r).unwrap()).collect();
    registry.remove("edge").unwrap();
    engine.poll();
    for ticket in queued.iter().chain(std::iter::once(&fresh)) {
        assert!(matches!(engine.take(ticket), Err(ServeError::UnknownTenant(_))));
    }
}

#[test]
fn registry_swaps_are_versioned_and_admission_checked_end_to_end() {
    let nsl = generate(DatasetKind::NslKdd, 400, 47);
    let cic = generate(DatasetKind::CicIds2017, 400, 47);
    let v1 = Detector::builder().dimension(128).retrain_epochs(1).seed(1).train(&nsl).unwrap();
    let registry = Arc::new(DetectorRegistry::new());
    registry.register("edge", v1.clone()).unwrap();
    assert_eq!(registry.info("edge").unwrap(), v1.info());

    // A quantized retrain of the same corpus is admissible (the deployment
    // shape may change under live traffic)...
    let v2 = Detector::builder()
        .dimension(256)
        .retrain_epochs(1)
        .seed(2)
        .quantize(BitWidth::B1)
        .train(&nsl)
        .unwrap();
    assert_eq!(registry.swap_from_bytes("edge", &v2.to_bytes()).unwrap(), 2);
    assert_eq!(registry.info("edge").unwrap().bit_width, Some(BitWidth::B1));

    // ...a detector for a different schema is not.
    let foreign = Detector::builder().dimension(128).retrain_epochs(1).train(&cic).unwrap();
    assert!(matches!(registry.swap("edge", foreign), Err(ServeError::IncompatibleSwap(_))));

    // The engine serves the admitted artifact.
    let engine = ServeEngine::new(Arc::clone(&registry), ServeConfig::default()).unwrap();
    let ticket = engine.submit("edge", &nsl.records()[0]).unwrap();
    let verdict = engine.take(&ticket).unwrap();
    assert_eq!(verdict, v2.detect_batch(&nsl.records()[..1]).unwrap()[0]);
}

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! subset of the `rand` 0.8 API the code actually uses is re-implemented
//! here: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] for
//! the primitive types, and [`Rng::gen_range`] over integer ranges.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the ChaCha12 core of the real `StdRng`, so streams are
//! *not* bit-compatible with upstream `rand`.  Every consumer in this
//! workspace only relies on seeded determinism and reasonable statistical
//! quality, both of which xoshiro256++ provides.

#![forbid(unsafe_code)]

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: xoshiro's low bits are its weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits -> [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight bias
                // for astronomically large spans is irrelevant here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * (span + 1) as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from an integer range.
    fn gen_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draws a boolean that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_f64_is_in_unit_interval_and_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_range_covers_the_whole_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bools_are_balanced() {
        let mut rng = StdRng::seed_from_u64(4);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn fill_bytes_fills_every_byte_position() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        // With 37 random bytes, at least one should be non-zero.
        assert!(buf.iter().any(|&b| b != 0));
    }
}

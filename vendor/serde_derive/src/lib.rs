//! Derive macros for the workspace's offline serde stand-in.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` emit empty marker-trait
//! impls for the annotated type.  The parser is deliberately small: it
//! handles the non-generic structs and enums this workspace defines (plus
//! simple type generics), which keeps the shim free of `syn`/`quote` — both
//! unavailable offline.

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(type_name, generic_params)` from a derive input stream.
///
/// `generic_params` is the raw text between the `<` `>` following the type
/// name (empty for non-generic types).
fn parse_type(input: TokenStream) -> (String, String) {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`# [...]`), doc comments and visibility qualifiers
    // until the `struct` / `enum` / `union` keyword.
    for tt in tokens.by_ref() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                break;
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde shim derive: expected a type name, found {other:?}"),
    };
    // Optional generics: collect everything between the outermost < >.
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            for tt in tokens.by_ref() {
                if let TokenTree::Punct(p) = &tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                generics.push_str(&tt.to_string());
                generics.push(' ');
            }
        }
    }
    (name, generics)
}

/// Names of the generic parameters (without bounds), e.g. `"'a , T"`.
fn param_names(generics: &str) -> String {
    let mut names = Vec::new();
    for part in split_top_level(generics) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        // Drop bounds and defaults: keep the leading lifetime/ident only.
        let head = part.split([':', '=']).next().unwrap_or("").trim();
        // `const N : usize` -> `N`.
        let head = head.strip_prefix("const").map(str::trim).unwrap_or(head);
        names.push(head.to_string());
    }
    names.join(", ")
}

/// Splits a generics list on top-level commas (ignoring nested `< >`).
fn split_top_level(generics: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut depth = 0usize;
    for c in generics.chars() {
        match c {
            '<' => depth += 1,
            '>' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(c);
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

fn marker_impl(input: TokenStream, serialize: bool) -> TokenStream {
    let (name, generics) = parse_type(input);
    let names = param_names(&generics);
    let target = if names.is_empty() { name.clone() } else { format!("{name}<{names}>") };
    let code = if serialize {
        if generics.is_empty() {
            format!("impl ::serde::Serialize for {target} {{}}")
        } else {
            format!("impl<{generics}> ::serde::Serialize for {target} {{}}")
        }
    } else if generics.is_empty() {
        format!("impl<'de> ::serde::Deserialize<'de> for {target} {{}}")
    } else {
        format!("impl<'de, {generics}> ::serde::Deserialize<'de> for {target} {{}}")
    };
    code.parse().expect("serde shim derive: generated impl must parse")
}

/// Emits `impl ::serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, true)
}

/// Emits `impl<'de> ::serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, false)
}

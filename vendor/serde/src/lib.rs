//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The workspace builds without crates.io access, and nothing in it actually
//! serializes data yet — the `#[derive(Serialize, Deserialize)]` attributes
//! exist so the types are *ready* to serialize once a real serde is
//! available.  This shim therefore provides [`Serialize`] / [`Deserialize`]
//! as marker traits and re-exports derive macros that emit empty marker
//! impls.  Swapping in the real serde later requires no source changes in
//! the workspace crates.

#![forbid(unsafe_code)]

// Let the `::serde::...` paths emitted by the derive macros resolve inside
// this crate's own tests too.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Plain {
        #[allow(dead_code)]
        x: f32,
    }

    #[derive(Serialize, Deserialize)]
    enum Choice {
        #[allow(dead_code)]
        A,
        #[allow(dead_code)]
        B(u32),
    }

    fn assert_roundtrippable<T: Serialize + for<'de> Deserialize<'de>>() {}

    #[test]
    fn derives_produce_marker_impls() {
        assert_roundtrippable::<Plain>();
        assert_roundtrippable::<Choice>();
        assert_roundtrippable::<Vec<f32>>();
    }
}

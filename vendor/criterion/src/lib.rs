//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! It implements the API subset this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`Bencher::iter`], [`criterion_group!`] /
//! [`criterion_main!`] — with a simple measurement strategy: warm up, pick an
//! iteration count that fills a fixed time budget, take `sample_size` timed
//! samples and report min / median / max time per iteration.
//!
//! Set `CRITERION_SAMPLE_MS` (per-sample time budget, default 40) and
//! `CRITERION_SAMPLES` (default 12) to trade precision against wall-clock
//! time; CI smoke runs use low values.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Identifier of one benchmark case inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
    sample_budget: Duration,
}

impl Bencher {
    fn new(sample_size: usize, sample_budget: Duration) -> Self {
        Self { iters_per_sample: 1, samples: Vec::new(), sample_size, sample_budget }
    }

    /// Calls `routine` repeatedly and records wall-clock samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: time single iterations until the budget
        // says how many fit in one sample.
        let calibration = Instant::now();
        let mut calib_iters = 0u64;
        while calibration.elapsed() < self.sample_budget / 4 {
            black_box(routine());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calibration.elapsed().as_secs_f64() / calib_iters.max(1) as f64;
        let budget = self.sample_budget.as_secs_f64();
        self.iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> =
            self.samples.iter().map(|d| d.as_secs_f64() / self.iters_per_sample as f64).collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{name:<50} time: [{} {} {}]  ({} iters x {} samples)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(max),
            self.iters_per_sample,
            per_iter.len(),
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: env_usize("CRITERION_SAMPLES", 12),
            sample_budget: Duration::from_millis(env_usize("CRITERION_SAMPLE_MS", 40) as u64),
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size, self.sample_budget);
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            sample_budget: self.sample_budget,
            _criterion: self,
        }
    }
}

/// A named group of benchmark cases.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    sample_budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size, self.sample_budget);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size, self.sample_budget);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (prints nothing; kept for API compatibility).
    pub fn finish(self) {}
}

/// Collects benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness CLI arguments (`--bench`, filters, ...).
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion { sample_size: 3, sample_budget: Duration::from_millis(2) };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(fmt_time(2e-9).contains("ns"));
        assert!(fmt_time(2e-6).contains("µs"));
        assert!(fmt_time(2e-3).contains("ms"));
        assert!(fmt_time(2.0).contains("s"));
    }
}

//! # `cyberhd-suite` — facade crate for the CyberHD reproduction
//!
//! This crate re-exports every sub-crate of the workspace under one roof so
//! the runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`) have a single dependency, and so downstream users can depend on
//! one crate and pick the pieces they need:
//!
//! * [`hdc`] — hypervector algebra, encoders, quantization, associative
//!   memory,
//! * [`cyberhd`] — the CyberHD learner (adaptive training + dimension
//!   regeneration), the static baselineHD, the streaming learner, the
//!   sealed `Detector` artifact and the `cyberhd::serve` micro-batching
//!   serving engine (multi-tenant registry, hot-swap, tickets, and the
//!   sharded many-tenant engine with deadline-wheel flushing and
//!   admission control),
//! * [`nids_data`] — NSL-KDD / UNSW-NB15 / CIC-IDS-2017 / CIC-IDS-2018
//!   schemas, synthetic traffic generators, CSV loaders, preprocessing and
//!   splitting,
//! * [`baselines`] — the MLP (DNN) and linear SVM comparison models,
//! * [`eval`] — metrics, timing and report tables,
//! * [`hw_model`] — first-order CPU/FPGA energy models (Table I),
//! * [`fault_inject`] — bit-flip fault injection (Fig. 5).
//!
//! See the repository `README.md` for the quick start and the repository's
//! `EXPERIMENTS.md` for the map from every paper table and figure to the
//! bench binary or test suite that reproduces it.
//!
//! # Example
//!
//! The one-object deployment path: a sealed [`cyberhd::Detector`] takes a
//! raw [`nids_data::Dataset`], trains end to end, and serves raw records.
//!
//! ```
//! use cyberhd_suite::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a small NSL-KDD-shaped corpus and split it.
//! let dataset = DatasetKind::NslKdd.generate(&SyntheticConfig::new(800, 1))?;
//! let (train, test) = train_test_split(&dataset, 0.25, 1)?;
//!
//! // Train once, seal the artifact, serve raw flows.
//! let detector = Detector::builder().dimension(256).retrain_epochs(3).seed(7).train(&train)?;
//! let verdict = detector.detect(test.records()[0].as_slice())?;
//! assert!(verdict.class < dataset.num_classes());
//! assert!(detector.accuracy(&test)? > 0.5);
//!
//! // Ship it: a saved artifact reproduces predictions bit for bit.
//! let loaded = Detector::from_bytes(&detector.to_bytes())?;
//! assert_eq!(loaded.detect(test.records()[0].as_slice())?, verdict);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use baselines;
pub use cyberhd;
pub use eval;
pub use fault_inject;
pub use hdc;
pub use hw_model;
pub use nids_data;

/// The most commonly used items from every sub-crate, importable in one line.
pub mod prelude {
    pub use baselines::mlp::{Mlp, MlpConfig};
    pub use baselines::svm::{LinearSvm, SvmConfig};
    pub use baselines::Classifier;
    pub use cyberhd::{
        AdaptiveConfig, AdaptiveLane, AdaptiveStats, AdmissionConfig, AdmissionController,
        AdmissionStats, BaselineHd, CyberHdConfig, CyberHdModel, CyberHdTrainer, DeadlineWheel,
        DetectScratch, Detector, DetectorBuilder, DetectorInfo, DetectorRegistry, DriftMonitor,
        DriftMonitorConfig, DurableConfig, DurableLane, EncoderKind, LanePoll, OnlineDetector,
        OnlineLearner, OpenSetDetector, OpenSetPrediction, Priority, QuantizedModel,
        RecoveryReport, ScoringBackend, ServeConfig, ServeEngine, ServeError, ServeStats,
        ShardConfig, ShardedServeEngine, TenantQuota, Ticket, TrainingBatch, Verdict,
    };
    pub use eval::detection::{DetectionCounts, RocCurve};
    pub use eval::metrics::{accuracy, ConfusionMatrix};
    pub use eval::timing::{LatencyHistogram, Stopwatch, ThroughputReport};
    pub use fault_inject::{BitFlipInjector, DiskFault, DiskFaultInjector};
    pub use hdc::encoder::{Encoder, ItemMemory, NGramEncoder, RbfEncoder, SymbolRecordEncoder};
    pub use hdc::{
        AssociativeMemory, BatchBuffer, BatchView, BitWidth, Hypervector, QuantizedHypervector,
    };
    pub use hw_model::{CpuModel, FpgaModel, HdcWorkload};
    pub use nids_data::datasets::{language_id, tabular_zoo};
    pub use nids_data::drift::{DriftPhase, DriftStream};
    pub use nids_data::preprocess::{Normalization, Preprocessor};
    pub use nids_data::split::{stratified_k_fold, train_test_split};
    pub use nids_data::synth::SyntheticConfig;
    pub use nids_data::{Dataset, DatasetKind};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_re_exports_compile_and_are_usable() {
        use crate::prelude::*;
        let hv = Hypervector::zeros(8);
        assert_eq!(hv.dim(), 8);
        assert_eq!(DatasetKind::ALL.len(), 4);
        assert_eq!(BitWidth::B1.bits(), 1);
    }
}

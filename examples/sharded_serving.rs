//! Sharded many-tenant serving on `cyberhd::serve::shard`.
//!
//! A single [`ServeEngine`] is one lane map behind one lock; a fleet of
//! hundreds of edge tenants wants more. This example runs the scale-out
//! shape: 24 tenants with heavy-tailed (Zipf) traffic submit raw flows
//! one at a time into a [`ShardedServeEngine`] that partitions them
//! across 4 shards by tenant hash, flushes lanes from a deadline wheel
//! (background flusher threads under the `parallel` feature, a
//! caller-driven [`ShardedServeEngine::poll`] loop without it), and
//! sheds the hottest tenant with a token-bucket quota so the head of the
//! Zipf curve cannot starve the tail.
//!
//! The punchline is the same as for the single-shard engine: sharding,
//! flush timing, flusher threads and shedding are all invisible in the
//! verdicts — every tenant's served verdicts are bit-identical to one
//! `detect_batch` call over its admitted flows in submission order.
//!
//! ```text
//! cargo run --example sharded_serving --release
//! ```

use bench::zipf::ZipfSampler;
use cyberhd_suite::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const TENANTS: usize = 24;
const FLOWS: usize = 6_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One artifact shared by the whole fleet (each tenant could just as
    // well register its own shape, as in `examples/serving.rs`).
    let data = DatasetKind::NslKdd.generate(&SyntheticConfig::new(4_000, 17).difficulty(1.2))?;
    let (train, live) = train_test_split(&data, 0.5, 17)?;
    let detector = Detector::builder().dimension(256).retrain_epochs(2).seed(5).train(&train)?;

    let registry = Arc::new(DetectorRegistry::new());
    let tenants: Vec<String> = (0..TENANTS).map(|t| format!("edge-{t:02}")).collect();
    for tenant in &tenants {
        registry.register(tenant, detector.clone())?;
    }

    let engine = ShardedServeEngine::new(
        Arc::clone(&registry),
        ShardConfig {
            shards: 4,
            serve: ServeConfig {
                max_batch: 32,
                max_delay: Duration::from_millis(1),
                queue_capacity: 4_096,
            },
            admission: Some(AdmissionConfig::default()),
            ..ShardConfig::default()
        },
    )?;
    println!(
        "sharded engine: {} shards, background flushers {}",
        engine.shard_count(),
        if engine.background_flush_active() { "on (deadline wheel)" } else { "off (caller polls)" }
    );
    let mut per_shard = vec![0usize; engine.shard_count()];
    for tenant in &tenants {
        per_shard[engine.shard_of(tenant)] += 1;
    }
    println!("tenant placement (FNV-1a routing): {per_shard:?}");

    // The Zipf head gets a hard quota; everyone else rides the default
    // (unmetered) admission policy with overload watermarks.
    let zipf = ZipfSampler::new(TENANTS, 1.1);
    let hot = &tenants[0];
    engine.set_quota(hot, Some(TenantQuota { rate_per_sec: 50_000, burst: 64 }));
    engine.set_priority(hot, Priority::Low);
    println!("quota on {hot}: 50k flows/s, burst 64 (Zipf head, p = {:.2})\n", zipf.probability(0));

    // Heavy-tailed arrivals: a seeded, bit-reproducible Zipf schedule
    // picks the tenant of every submission.
    let schedule = zipf.schedule(FLOWS, 91);
    let mut tickets: Vec<Vec<Ticket>> = vec![Vec::new(); TENANTS];
    let mut submitted: Vec<Vec<usize>> = vec![Vec::new(); TENANTS];
    let mut cursor = [0usize; TENANTS];
    let mut shed = 0usize;
    for (i, &t) in schedule.iter().enumerate() {
        let record = cursor[t] % live.len();
        cursor[t] += 1;
        match engine.submit(&tenants[t], &live.records()[record]) {
            Ok(ticket) => {
                tickets[t].push(ticket);
                submitted[t].push(record);
            }
            Err(cyberhd::serve::ServeError::Shed { .. }) => shed += 1,
            Err(e) => return Err(e.into()),
        }
        // Without background flushers the caller's event loop owns the
        // max_delay watermark; with them this branch never runs.
        if !engine.background_flush_active() && i % 256 == 0 {
            engine.poll();
        }
    }
    engine.flush_all();

    // Bit-identity through sharding, flusher threads and shedding: every
    // tenant's verdicts equal one detect_batch over its admitted flows.
    let mut alerts = 0usize;
    for (t, tenant) in tenants.iter().enumerate() {
        let flows: Vec<Vec<f32>> =
            submitted[t].iter().map(|&r| live.records()[r].clone()).collect();
        let oracle = detector.detect_batch(&flows)?;
        for ((ticket, want), record) in tickets[t].iter().zip(&oracle).zip(&submitted[t]) {
            let got = engine.take(ticket)?;
            assert_eq!(
                got, *want,
                "{tenant} flow #{record}: served verdict must match detect_batch bit for bit"
            );
            if got.class != 0 {
                alerts += 1;
            }
        }
    }

    let admission = engine.admission_stats();
    println!(
        "admission: {} admitted, {} shed by quota, {} shed by overload",
        admission.admitted, admission.shed_quota, admission.shed_overload
    );
    println!("observed at the submit loop: {shed} sheds across {FLOWS} arrivals");
    println!("\nbusiest tenants:");
    let mut by_volume: Vec<(usize, usize)> = tickets.iter().map(Vec::len).enumerate().collect();
    by_volume.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for &(t, n) in by_volume.iter().take(5) {
        let stats = engine.stats(&tenants[t]).expect("tenant served traffic");
        println!(
            "  {} ({} flows on shard {}): {stats}",
            tenants[t],
            n,
            engine.shard_of(&tenants[t])
        );
    }

    let fleet = engine.fleet_stats().expect("the fleet served traffic");
    println!("\nfleet: {fleet}");
    println!(
        "verdict check: all {} served verdicts are bit-identical to detect_batch ({} alerts)",
        fleet.flows_served, alerts
    );
    Ok(())
}

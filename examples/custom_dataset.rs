//! Bring your own data: define a custom schema, load flows from CSV text and
//! train CyberHD on them — the **expert path** that wires the preprocessor,
//! config builder and trainer by hand instead of going through the sealed
//! `Detector` artifact (see `examples/quickstart.rs` for that).  Use this
//! path when an experiment needs access to the internal seams: custom
//! transforms, per-epoch reports, encoder surgery.
//!
//! The same `loader::parse_csv` path accepts the real NSL-KDD / UNSW-NB15 /
//! CIC-IDS CSV files when pointed at their schemas; here a small IoT-gateway
//! style schema is defined inline so the example is self-contained.
//!
//! ```text
//! cargo run --example custom_dataset --release
//! ```

use cyberhd_suite::prelude::*;
use nids_data::loader::{parse_csv, CsvOptions};
use nids_data::schema::{FeatureKind, FeatureSpec, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the columns of the custom corpus.
    let schema = Schema::new(
        "iot-gateway",
        vec![
            FeatureSpec::new("flow_duration_s", FeatureKind::numeric(0.0, 600.0)),
            FeatureSpec::new("protocol", FeatureKind::categorical(["tcp", "udp", "mqtt", "coap"])),
            FeatureSpec::new("packets", FeatureKind::numeric(0.0, 10_000.0)),
            FeatureSpec::new("bytes", FeatureKind::numeric(0.0, 1.0e7)),
            FeatureSpec::new("distinct_ports", FeatureKind::numeric(0.0, 1024.0)),
            FeatureSpec::new("failed_handshake_rate", FeatureKind::numeric(0.0, 1.0)),
        ],
        vec!["benign".into(), "scan".into(), "flood".into()],
    )?;

    // 2. Load flows from CSV (in a real deployment this comes from a file via
    //    `loader::load_csv_file`).
    let csv = "\
flow_duration_s,protocol,packets,bytes,distinct_ports,failed_handshake_rate,label
12.0,mqtt,40,5200,1,0.00,benign
300.5,tcp,910,120000,2,0.01,benign
0.8,tcp,25,1400,310,0.92,scan
1.1,tcp,30,1600,422,0.88,scan
4.0,udp,8800,9800000,1,0.05,flood
3.2,udp,9400,9900000,1,0.02,flood
15.0,coap,55,6100,1,0.00,benign
0.9,tcp,22,1300,275,0.95,scan
2.8,udp,9100,9700000,2,0.03,flood
180.0,tcp,600,88000,3,0.00,benign
";
    let mut dataset = parse_csv(&schema, csv, CsvOptions::default())?;
    println!("loaded {} labelled flows with schema {:?}", dataset.len(), dataset.schema().name());

    // 3. Augment the tiny corpus with synthetic flows built from the same
    //    schema, so there is enough data to train on.
    let profiles = nids_data::traffic::profiles_for(
        &schema,
        &[
            ("benign", nids_data::traffic::AttackKind::Normal, 6.0),
            ("scan", nids_data::traffic::AttackKind::PortScan, 2.0),
            ("flood", nids_data::traffic::AttackKind::Ddos, 2.0),
        ],
        0xB0B,
    );
    let synthetic =
        nids_data::synth::generate(&schema, &profiles, &SyntheticConfig::new(2_000, 4))?;
    dataset.extend_from(&synthetic)?;
    println!(
        "after synthetic augmentation: {} flows, class counts {:?}",
        dataset.len(),
        dataset.class_counts()
    );

    // 4. Standard pipeline: split, preprocess, train, evaluate.
    let (train, test) = train_test_split(&dataset, 0.3, 4)?;
    let preprocessor = Preprocessor::fit(&train, Normalization::ZScore)?;
    let (train_x, train_y) = preprocessor.transform_with_labels(&train)?;
    let (test_x, test_y) = preprocessor.transform_with_labels(&test)?;

    let config = CyberHdConfig::builder(preprocessor.output_width(), schema.num_classes())
        .dimension(256)
        .retrain_epochs(8)
        .regeneration_rate(0.15)
        .seed(12)
        .build()?;
    let model = CyberHdTrainer::new(config)?.fit(&train_x, &train_y)?;
    let report = model.evaluate(&test_x, &test_y)?.report();
    println!("\nheld-out performance on the custom corpus:\n{report}");

    // 5. Classify the CSV rows themselves.
    for (record, &label) in dataset.records().iter().take(5).zip(dataset.labels()) {
        let dense = preprocessor.transform_record(record)?;
        let predicted = model.predict(&dense)?;
        println!(
            "flow {:?} -> predicted {:<6} (true {})",
            &record[..3],
            schema.classes()[predicted],
            schema.classes()[label]
        );
    }
    Ok(())
}

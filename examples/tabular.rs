//! Workload zoo, tabular: the symbol-record encoder on a census-shaped
//! mixed categorical/numeric dataset.
//!
//! NIDS flows are one instance of a broader shape — records with a few
//! dozen mixed-type columns.  This example classifies the repo's
//! synthetic census workload (income bands from age, work class,
//! education, hours, region, ...) with the record-binding encoder:
//! categorical columns use per-column symbol item memories, numeric
//! columns a flip-chain level ladder, every column bound to its field ID
//! vector and bundled.
//!
//! 1. train a sealed [`Detector`] with the symbol-record encoder and
//!    score it, dense and 1-bit,
//! 2. round-trip the artifact through bytes,
//! 3. show that malformed records (wrong arity, out-of-alphabet
//!    category) are schema violations, not silent encodes,
//! 4. serve records through the micro-batching [`ServeEngine`].
//!
//! ```text
//! cargo run --example tabular --release
//! ```

use cyberhd_suite::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = tabular_zoo::generate(&SyntheticConfig::new(3000, 5))?;
    let (train, test) = train_test_split(&corpus, 0.25, 3)?;
    let schema = corpus.schema();
    println!(
        "census corpus: {} train / {} test records, {} columns, {} income bands",
        train.len(),
        test.len(),
        schema.num_features(),
        corpus.num_classes(),
    );

    let builder = || {
        Detector::builder()
            .encoder(EncoderKind::SymbolRecord)
            .dimension(2048)
            .id_level_levels(16)
            .retrain_epochs(3)
            .regeneration_rate(0.0)
            .seed(0xB00D)
    };
    let dense = builder().train(&train)?;
    let one_bit = builder().quantize(BitWidth::B1).train(&train)?;
    println!("dense accuracy : {:.3}", dense.accuracy(&test)?);
    println!("1-bit accuracy : {:.3}", one_bit.accuracy(&test)?);

    // Sealed artifacts ship as bytes and reproduce verdicts bit for bit.
    let loaded = Detector::from_bytes(&dense.to_bytes())?;
    let probe = test.records()[0].as_slice();
    assert_eq!(loaded.detect(probe)?, dense.detect(probe)?);
    println!("artifact round-trip: {} bytes, verdicts bit-identical", dense.to_bytes().len());

    // Symbol columns are validated, not coerced: a category index outside
    // its column's alphabet (or a fractional one) is a hard error.
    let mut malformed = test.records()[0].clone();
    malformed[1] = 99.0; // workclass has 7 categories
    assert!(dense.detect(&malformed).is_err());
    malformed[1] = 1.5;
    assert!(dense.detect(&malformed).is_err());
    assert!(dense.detect(&malformed[..5]).is_err());
    println!("malformed records rejected: out-of-alphabet, fractional symbol, wrong arity");

    // Same serving stack as every other workload.
    let registry = Arc::new(DetectorRegistry::new());
    registry.register("census", dense.clone())?;
    let engine = ServeEngine::new(Arc::clone(&registry), ServeConfig::default())?;
    let tickets: Vec<Ticket> = test.records()[..32]
        .iter()
        .map(|record| engine.submit("census", record))
        .collect::<Result<_, _>>()?;
    engine.flush("census")?;
    let served = engine.take(&tickets[0])?;
    println!(
        "served {} records; first verdict: {} (similarity {:.3})",
        tickets.len(),
        schema.classes()[served.class],
        served.similarity,
    );
    assert_eq!(served, dense.detect(test.records()[0].as_slice())?);
    Ok(())
}

//! Zero-day awareness: open-set rejection plus detection-oriented metrics.
//!
//! Trains CyberHD with one attack family deliberately *held out* (simulating
//! an attack that did not exist at training time), calibrates per-class
//! similarity thresholds, and then measures
//!
//! * how often the unseen family is flagged as "unknown traffic",
//! * the detection rate / false-alarm rate of the closed-set part,
//! * the ROC curve of the binary benign-vs-attack decision.
//!
//! ```text
//! cargo run --example zero_day_detection --release
//! ```

use cyberhd_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = DatasetKind::UnswNb15;
    let dataset = kind.generate(&SyntheticConfig::new(6_000, 31).difficulty(1.6))?;
    let schema = dataset.schema().clone();
    let (train, test) = train_test_split(&dataset, 0.3, 31)?;
    let preprocessor = Preprocessor::fit(&train, Normalization::MinMax)?;
    let (train_x, train_y) = preprocessor.transform_with_labels(&train)?;
    let (test_x, test_y) = preprocessor.transform_with_labels(&test)?;

    // Hold out the "Fuzzers" family (class 3) from training entirely.
    let held_out = 3usize;
    let held_out_name = schema.classes()[held_out].clone();
    let mut known_x = Vec::new();
    let mut known_y = Vec::new();
    for (x, &y) in train_x.iter().zip(&train_y) {
        if y != held_out {
            known_x.push(x.clone());
            known_y.push(if y > held_out { y - 1 } else { y });
        }
    }
    println!(
        "training on {} flows covering {} of {} classes (held out: {held_out_name})",
        known_x.len(),
        schema.num_classes() - 1,
        schema.num_classes()
    );

    let config = CyberHdConfig::builder(preprocessor.output_width(), schema.num_classes() - 1)
        .dimension(512)
        .retrain_epochs(8)
        .regeneration_rate(0.2)
        .encode_threads(4)
        .seed(2)
        .build()?;
    let model = CyberHdTrainer::new(config)?.fit(&known_x, &known_y)?;
    let detector = OpenSetDetector::calibrate(model, &known_x, &known_y, 0.08)?;

    // Closed-set quality on the known classes + open-set rate on the held-out family.
    let mut predictions = Vec::new();
    let mut labels_binary = Vec::new();
    let mut attack_scores = Vec::new();
    let mut novel_flagged = 0usize;
    let mut novel_total = 0usize;
    let mut known_flagged = 0usize;
    let mut known_total = 0usize;
    for (x, &y) in test_x.iter().zip(&test_y) {
        let prediction = detector.predict(x)?;
        if y == held_out {
            novel_total += 1;
            if prediction.is_unknown() {
                novel_flagged += 1;
            }
            continue;
        }
        known_total += 1;
        if prediction.is_unknown() {
            known_flagged += 1;
        }
        let remapped = if y > held_out { y - 1 } else { y };
        // Binary benign-vs-attack view (class 0 is benign everywhere).
        let predicted_class = prediction.class().unwrap_or(1);
        predictions.push(usize::from(predicted_class != 0));
        labels_binary.push(usize::from(remapped != 0));
        // Attack score: margin of the best attack class over the benign class.
        let (_, scores) = detector.model().predict_with_scores(x)?;
        let best_attack = scores[1..].iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        attack_scores.push((best_attack - scores[0]) as f64);
    }

    println!(
        "\nopen-set behaviour: {:.1}% of unseen '{held_out_name}' flows flagged as unknown, \
         {:.1}% of known traffic rejected",
        100.0 * novel_flagged as f64 / novel_total.max(1) as f64,
        100.0 * known_flagged as f64 / known_total.max(1) as f64
    );

    let counts = DetectionCounts::from_multiclass(&predictions, &labels_binary, 0)?;
    println!("\nclosed-set detection quality (benign vs. attack):");
    println!("  detection rate:   {:.2}%", counts.detection_rate() * 100.0);
    println!("  false-alarm rate: {:.2}%", counts.false_alarm_rate() * 100.0);
    println!("  attack-class F1:  {:.3}", counts.f1());

    let actual_attack: Vec<bool> = labels_binary.iter().map(|&l| l != 0).collect();
    let roc = RocCurve::from_scores(&attack_scores, &actual_attack)?;
    println!("  ROC AUC:          {:.3}", roc.auc());
    println!(
        "  detection rate at ≤1% false alarms: {:.2}%",
        roc.detection_rate_at_false_alarm(0.01) * 100.0
    );
    Ok(())
}

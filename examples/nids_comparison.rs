//! Compare CyberHD against the DNN, SVM and static-HDC baselines on one
//! dataset — a miniature version of the paper's Fig. 3/4 on a single corpus.
//!
//! ```text
//! cargo run --example nids_comparison --release
//! ```

use cyberhd_suite::prelude::*;
use eval::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset =
        DatasetKind::CicIds2017.generate(&SyntheticConfig::new(5_000, 11).difficulty(1.4))?;
    let (train, test) = train_test_split(&dataset, 0.25, 11)?;
    let preprocessor = Preprocessor::fit(&train, Normalization::MinMax)?;
    let (train_x, train_y) = preprocessor.transform_with_labels(&train)?;
    let (test_x, test_y) = preprocessor.transform_with_labels(&test)?;
    let width = preprocessor.output_width();
    let classes = dataset.num_classes();
    println!(
        "CIC-IDS-2017 stand-in: {} train / {} test flows, {classes} classes\n",
        train.len(),
        test.len()
    );

    let mut table = Table::new(vec![
        "model".into(),
        "accuracy (%)".into(),
        "train time (s)".into(),
        "inference latency (ms/flow)".into(),
    ]);

    // CyberHD (0.5k physical dimensions + regeneration).
    let config = CyberHdConfig::builder(width, classes)
        .dimension(512)
        .retrain_epochs(10)
        .regeneration_rate(0.2)
        .learning_rate(0.05)
        .encode_threads(4)
        .seed(1)
        .build()?;
    let (model, train_time) =
        Stopwatch::time(|| CyberHdTrainer::new(config)?.fit(&train_x, &train_y));
    let model = model?;
    let (predictions, infer_time) = Stopwatch::time(|| model.predict_batch(&test_x));
    let cyber_accuracy = accuracy(&predictions?, &test_y)?;
    table.add_row(vec![
        format!("CyberHD (D=0.5k, D*={})", model.effective_dimension()),
        format!("{:.2}", cyber_accuracy * 100.0),
        format!("{:.2}", train_time.as_secs_f64()),
        format!("{:.3}", infer_time.as_secs_f64() * 1e3 / test_x.len() as f64),
    ]);

    // Static baselineHD at 4k dimensions.
    let baseline = BaselineHd::new(width, classes, 4096, 1)?.retrain_epochs(10).learning_rate(0.05);
    let (baseline_model, train_time) = Stopwatch::time(|| baseline.fit(&train_x, &train_y));
    let baseline_model = baseline_model?;
    let (predictions, infer_time) = Stopwatch::time(|| baseline_model.predict_batch(&test_x));
    table.add_row(vec![
        "Baseline HDC (D=4k, static)".into(),
        format!("{:.2}", accuracy(&predictions?, &test_y)? * 100.0),
        format!("{:.2}", train_time.as_secs_f64()),
        format!("{:.3}", infer_time.as_secs_f64() * 1e3 / test_x.len() as f64),
    ]);

    // DNN (MLP 2x256).
    let mut mlp =
        Mlp::new(MlpConfig::new(width, classes).hidden_layers(vec![256, 256]).epochs(15).seed(1))?;
    let (fit, train_time) = Stopwatch::time(|| mlp.fit(&train_x, &train_y));
    fit?;
    let (predictions, infer_time) = Stopwatch::time(|| mlp.predict_batch(&test_x));
    table.add_row(vec![
        "DNN (MLP 2x256)".into(),
        format!("{:.2}", accuracy(&predictions?, &test_y)? * 100.0),
        format!("{:.2}", train_time.as_secs_f64()),
        format!("{:.3}", infer_time.as_secs_f64() * 1e3 / test_x.len() as f64),
    ]);

    // Linear SVM.
    let mut svm = LinearSvm::new(SvmConfig::new(width, classes).epochs(15).seed(1))?;
    let (fit, train_time) = Stopwatch::time(|| svm.fit(&train_x, &train_y));
    fit?;
    let (predictions, infer_time) = Stopwatch::time(|| svm.predict_batch(&test_x));
    table.add_row(vec![
        "SVM (linear, OvR)".into(),
        format!("{:.2}", accuracy(&predictions?, &test_y)? * 100.0),
        format!("{:.2}", train_time.as_secs_f64()),
        format!("{:.3}", infer_time.as_secs_f64() * 1e3 / test_x.len() as f64),
    ]);

    println!("{table}");
    println!("expected shape (paper Fig. 3/4): CyberHD ≈ DNN ≈ baselineHD(4k) in accuracy,");
    println!("while training and classifying markedly faster than both larger models.");
    Ok(())
}

//! Multi-tenant micro-batching serving on the `cyberhd::serve` engine.
//!
//! The paper pitches CyberHD as a lightweight detector for live traffic;
//! this example runs the deployment shape that claim implies: two edge
//! streams (tenants) with different artifact shapes submit raw flows **one
//! at a time**, the [`ServeEngine`] aggregates them into micro-batches
//! that ride the fused batched kernels, and halfway through the operator
//! hot-swaps one tenant's artifact from persisted bytes — without dropping
//! a single in-flight flow.
//!
//! ```text
//! cargo run --example serving --release
//! ```

use cyberhd_suite::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two tenants with different traffic shapes and deployment shapes:
    // an NSL-KDD edge served dense, a UNSW-NB15 edge served at 1 bit.
    let nsl = DatasetKind::NslKdd.generate(&SyntheticConfig::new(4_000, 11).difficulty(1.2))?;
    let unsw = DatasetKind::UnswNb15.generate(&SyntheticConfig::new(4_000, 13).difficulty(1.2))?;
    let (nsl_train, nsl_live) = train_test_split(&nsl, 0.5, 11)?;
    let (unsw_train, unsw_live) = train_test_split(&unsw, 0.5, 13)?;

    let nsl_v1 = Detector::builder().dimension(512).retrain_epochs(3).seed(1).train(&nsl_train)?;
    let unsw_v1 = Detector::builder()
        .dimension(512)
        .retrain_epochs(3)
        .seed(2)
        .quantize(BitWidth::B1)
        .train(&unsw_train)?;

    // Register both artifacts; `Detector::info()` is the admission-check
    // surface the registry consults before any hot-swap.
    let registry = Arc::new(DetectorRegistry::new());
    registry.register("edge/nsl", nsl_v1)?;
    registry.register("edge/unsw", unsw_v1)?;
    println!("registered tenants:");
    for tenant in registry.tenants() {
        println!("  {tenant:>10}: {}", registry.info(&tenant).expect("registered"));
    }

    let engine = ServeEngine::new(
        Arc::clone(&registry),
        ServeConfig { max_batch: 64, max_delay: Duration::from_millis(2), queue_capacity: 4096 },
    )?;

    // Meanwhile, ops retrains the NSL tenant and ships v2 as artifact
    // bytes (the `hdc::codec` wire format a deployment pipeline moves
    // around).
    let nsl_v2_bytes =
        Detector::builder().dimension(512).retrain_epochs(5).seed(21).train(&nsl_train)?.to_bytes();

    // Live traffic: the two streams interleave, flows arrive one at a
    // time, and verdicts come back through tickets.  Halfway through, the
    // NSL artifact is hot-swapped — in-flight micro-batches finish on v1,
    // later submissions score on v2.
    let mut tickets = Vec::new();
    let live_flows = nsl_live.len().min(unsw_live.len());
    let mut alerts = [0usize; 2];
    for i in 0..live_flows {
        tickets.push(("edge/nsl", engine.submit("edge/nsl", &nsl_live.records()[i])?));
        tickets.push(("edge/unsw", engine.submit("edge/unsw", &unsw_live.records()[i])?));
        if i == live_flows / 2 {
            let version = registry.swap_from_bytes("edge/nsl", &nsl_v2_bytes)?;
            println!("\nhot-swapped edge/nsl to v{version} mid-stream (zero flows dropped)");
        }
        // The event loop's only obligation between submissions: let the
        // max_delay watermark flush stragglers.
        if i % 128 == 0 {
            engine.poll();
        }
    }
    engine.flush_all();
    let mut nsl_verdicts = Vec::new();
    for (tenant, ticket) in &tickets {
        let verdict = engine.take(ticket)?;
        if verdict.class != 0 {
            alerts[usize::from(*tenant == "edge/unsw")] += 1;
        }
        if *tenant == "edge/nsl" {
            nsl_verdicts.push(verdict);
        }
    }
    println!(
        "\nserved {} flows ({} nsl alerts, {} unsw alerts)",
        tickets.len(),
        alerts[0],
        alerts[1]
    );

    println!("\nper-tenant serve stats:");
    for tenant in registry.tenants() {
        let stats = engine.stats(&tenant).expect("tenant served traffic");
        println!("  {stats}");
        let histogram: Vec<String> = stats
            .batch_size_histogram
            .iter()
            .map(|(size, count)| format!("{size}x{count}"))
            .collect();
        println!("    batch sizes (size x batches): {}", histogram.join(", "));
    }

    // The determinism contract, demonstrated: replaying the post-swap NSL
    // flows through one detect_batch call on the current (v2) artifact
    // reproduces the served verdicts bit for bit.
    let (replay, _) = registry.current("edge/nsl").expect("registered");
    let tail: Vec<Vec<f32>> = nsl_live.records()[live_flows / 2 + 1..live_flows].to_vec();
    let replayed = replay.detect_batch(&tail)?;
    assert_eq!(
        &nsl_verdicts[live_flows / 2 + 1..],
        replayed.as_slice(),
        "served verdicts must be bit-identical to a detect_batch replay"
    );
    println!(
        "\nreplay check: detect_batch on the post-swap tail reproduces all {} served verdicts \
         bit for bit",
        tail.len()
    );
    Ok(())
}

//! Durable adaptive serving: crash a lane mid-stream, recover it from the
//! WAL + checkpoint directory, and finish bit-identical to a lane that
//! never died.
//!
//! The paper's deployment target is an always-on edge NIDS: the adaptive
//! loop (prequential learning, drift trips, regeneration) accumulates
//! state that a power cut must not silently rewind.  This example runs
//! the durability contract end to end:
//!
//! 1. a [`DurableLane`] wraps the adaptive lane with a write-ahead log —
//!    every event is framed, CRC-checksummed and fsynced per micro-batch,
//!    and a checkpoint every `checkpoint_every` events bounds replay;
//! 2. the process "dies" mid-stream (the lane is dropped without a flush)
//!    and a seeded [`DiskFaultInjector`] tears the WAL tail the way a real
//!    crash does — a partial append, then a cut at an arbitrary offset;
//! 3. [`DurableLane::recover`] loads the newest checkpoint that passes its
//!    CRC, truncates the torn tail, replays the surviving records and
//!    reports exactly what was lost;
//! 4. the stream resumes from the recovery report's durable horizon and
//!    the final model is asserted **bit-identical** to an uncrashed twin.
//!
//! ```text
//! cargo run --example durable_serving --release
//! ```

use cyberhd_suite::prelude::*;
use hdc::rng::HdcRng;
use hdc::wal;
use nids_data::drift::{DriftPhase, DriftStream};
use std::path::Path;

/// One scheduled event: both timelines replay this exact sequence, so the
/// only thing that may differ between them is the crash.
#[derive(Clone, Copy)]
enum Event {
    Submit { flow: usize, label: Option<usize> },
    Feedback { ticket: usize, label: usize },
}

/// Feeds a slice of the schedule into a lane.  Each flow is the `flow`-th
/// submission, so ticket sequence numbers equal flow indices — which is
/// what lets feedback re-target a flow after recovery destroyed the
/// original ticket object.
fn drive(lane: &DurableLane, live: &DriftStream, events: &[Event]) -> Vec<Ticket> {
    let mut tickets = Vec::new();
    for event in events {
        match event {
            Event::Submit { flow, label } => {
                let record = live.dataset().records()[*flow].as_slice();
                let ticket = match label {
                    Some(label) => lane.submit_labelled(record, *label).expect("capacity"),
                    None => lane.submit(record).expect("capacity"),
                };
                assert_eq!(ticket.seq() as usize, *flow);
                tickets.push(ticket);
            }
            Event::Feedback { ticket, label } => {
                lane.submit_feedback(&lane.reissue_ticket(*ticket as u64), *label)
                    .expect("feedback inside retention");
            }
        }
    }
    tickets
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cyberhd_durable_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = DatasetKind::NslKdd;
    let (schema, profiles) = (kind.schema(), kind.profiles());
    let classes = profiles.len();

    let train =
        DriftStream::generate(&schema, &profiles, &[DriftPhase::stationary(600, classes)], 0xD07)?;
    let detector = Detector::builder()
        .dimension(256)
        .retrain_epochs(2)
        .regeneration_rate(0.1)
        .seed(11)
        .train(train.dataset())?;

    // Live traffic drifts harder halfway through, so the recovered lane
    // has real adaptation history to preserve, not just verdicts.
    let live_phases = [
        DriftPhase::stationary(200, classes),
        DriftPhase::stationary(200, classes).difficulty(1.5),
    ];
    let live = DriftStream::generate(&schema, &profiles, &live_phases, 0xBEEF)?;

    // The event schedule: most flows arrive labelled (analyst feedback at
    // submit time), the rest unlabelled with late feedback a few events
    // on.  Past the shift the label semantics rotate, so the prequential
    // error surges, the monitor trips and the lane regenerates — giving
    // the crash genuine adaptation history to destroy.
    let shift_at = live.phase_start(1)?;
    let mut rng = HdcRng::seed_from(0x5EED);
    let mut events = Vec::new();
    let mut pending: Vec<(usize, usize, usize)> = Vec::new(); // (due, ticket, label)
    for i in 0..live.len() {
        let truth = live.dataset().labels()[i];
        let label = if i < shift_at { truth } else { (truth + 1) % classes };
        if rng.bernoulli(0.7) {
            events.push(Event::Submit { flow: i, label: Some(label) });
        } else {
            events.push(Event::Submit { flow: i, label: None });
            pending.push((events.len() + 1 + rng.index(12), i, label));
        }
        pending.sort_by_key(|&(due, _, _)| due);
        while pending.first().is_some_and(|&(due, _, _)| due <= events.len()) {
            let (_, ticket, label) = pending.remove(0);
            events.push(Event::Feedback { ticket, label });
        }
    }
    for (_, ticket, label) in pending {
        events.push(Event::Feedback { ticket, label });
    }

    let config = DurableConfig {
        adaptive: AdaptiveConfig {
            max_batch: 8,
            queue_capacity: events.len() + 64,
            retention: events.len(),
            monitor: DriftMonitorConfig {
                window: 24,
                min_observations: 12,
                error_delta: 0.2,
                unknown_surge: 0.4,
                cooldown: 16,
            },
            ..AdaptiveConfig::default()
        },
        checkpoint_every: 64,
        keep_checkpoints: 2,
    };

    // The uncrashed twin: the whole schedule through one durable lane.
    let oracle_dir = fresh_dir("oracle");
    let oracle = DurableLane::create(&oracle_dir, "edge", detector.clone(), config.clone(), None)?;
    drive(&oracle, &live, &events);
    oracle.flush()?;
    let oracle_sealed = oracle.seal_snapshot().to_bytes();
    let oracle_stats = oracle.stats();
    println!("uncrashed twin: {oracle_stats}");
    assert!(
        oracle_stats.monitor_trips >= 1,
        "the rotated-label surge must trip the monitor — otherwise the bit-identity claim \
         below only covers verdicts, not adaptation"
    );

    // The crash: run 60% of the schedule, then die without flushing —
    // queued events and buffered WAL records vanish with the process.
    let crash_dir = fresh_dir("crashed");
    let kill_event = events.len() * 6 / 10;
    {
        let lane = DurableLane::create(&crash_dir, "edge", detector, config.clone(), None)?;
        drive(&lane, &live, &events[..kill_event]);
        // -- power cut --
    }

    // Storage damage on top: a torn partial append and a cut at an
    // arbitrary offset, straight from the fault injector the test matrix
    // uses.  The CRC frames make both detectable.
    let wal_path = crash_dir.join("wal.log");
    let mut bytes = std::fs::read(&wal_path)?;
    let before = bytes.len();
    let mut injector = DiskFaultInjector::new(0xFA11);
    injector.torn_write(&mut bytes, &wal::frame(&[0xA5; 24]));
    injector.truncate_after(&mut bytes, wal::HEADER_LEN);
    std::fs::write(&wal_path, &bytes)?;
    println!(
        "\ncrash at event {kill_event}/{}: WAL torn+cut from {before} to {} bytes",
        events.len(),
        bytes.len()
    );

    // Recovery: newest valid checkpoint + replay of the surviving tail.
    let (lane, report) = DurableLane::recover(&crash_dir, None)?;
    println!(
        "recovered: checkpoint at event {}, {} events replayed, {} torn bytes truncated, \
         durable horizon {}",
        report.checkpoint_events, report.events_replayed, report.truncated_bytes, report.next_event
    );
    assert!(
        report.events_replayed < config.checkpoint_every + config.adaptive.max_batch as u64,
        "checkpoints must bound replay"
    );

    // Resume the stream from the durable horizon and finish the schedule.
    drive(&lane, &live, &events[report.next_event as usize..]);
    lane.flush()?;

    // The crown: bit-identical to the lane that never crashed.
    assert_eq!(
        lane.seal_snapshot().to_bytes(),
        oracle_sealed,
        "recovered + resumed lane must equal the uncrashed twin bit for bit"
    );
    let stats = lane.stats();
    assert_eq!(stats.samples_learned, oracle_stats.samples_learned);
    assert_eq!(stats.monitor_trips, oracle_stats.monitor_trips);
    assert_eq!(stats.adaptations, oracle_stats.adaptations);
    println!(
        "\nresumed lane:   {stats}\nfinal model, prequential accuracy and adaptation history are \
         bit-identical to the uncrashed twin"
    );

    for dir in [&oracle_dir, &crash_dir] {
        std::fs::remove_dir_all::<&Path>(dir.as_ref()).ok();
    }
    Ok(())
}

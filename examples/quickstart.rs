//! Quickstart: train CyberHD on a synthetic NSL-KDD stand-in and inspect the
//! result.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use cyberhd_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a labelled corpus with the NSL-KDD schema (41 features,
    //    5 traffic categories) and split it 75/25.
    let dataset = DatasetKind::NslKdd.generate(&SyntheticConfig::new(4_000, 42).difficulty(1.4))?;
    let (train, test) = train_test_split(&dataset, 0.25, 42)?;
    println!(
        "dataset: {} ({} train / {} test flows, {} classes)",
        dataset.schema().name(),
        train.len(),
        test.len(),
        dataset.num_classes()
    );

    // 2. Preprocess: one-hot expand the categorical features and scale
    //    everything to [0, 1]. The preprocessor is fitted on the training
    //    split only.
    let preprocessor = Preprocessor::fit(&train, Normalization::MinMax)?;
    let (train_x, train_y) = preprocessor.transform_with_labels(&train)?;
    let (test_x, test_y) = preprocessor.transform_with_labels(&test)?;

    // 3. Train CyberHD: 512 physical dimensions, 20% of the least significant
    //    dimensions regenerated after each retraining epoch.
    let config = CyberHdConfig::builder(preprocessor.output_width(), dataset.num_classes())
        .dimension(512)
        .retrain_epochs(10)
        .regeneration_rate(0.2)
        .learning_rate(0.05)
        .encode_threads(4)
        .seed(7)
        .build()?;
    let (model, elapsed) = Stopwatch::time(|| CyberHdTrainer::new(config)?.fit(&train_x, &train_y));
    let model = model?;
    println!(
        "trained in {:.2} s: physical D = {}, effective D* = {} ({} dimensions regenerated)",
        elapsed.as_secs_f64(),
        model.dimension(),
        model.effective_dimension(),
        model.report().regeneration.total_regenerated
    );

    // 4. Evaluate on the held-out flows.
    let report = model.evaluate(&test_x, &test_y)?.report();
    println!("\ntest-set performance:\n{report}");

    // 5. Classify one new flow.
    let (prediction, scores) = model.predict_with_scores(&test_x[0])?;
    println!(
        "first test flow -> class {} ({}), similarity scores {:?}",
        prediction,
        dataset.schema().classes()[prediction],
        scores.iter().map(|s| (s * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    Ok(())
}

//! Quickstart: train a sealed `Detector` on a synthetic NSL-KDD stand-in,
//! serve raw flows, and ship the artifact.
//!
//! This is the deployment path the suite is built around: one builder call
//! runs preprocess → train → seal, and the resulting artifact consumes
//! **raw records** (schema values) directly — no manual preprocessing at
//! serve time.  See `examples/custom_dataset.rs` for the expert path that
//! wires the preprocessor, config and trainer by hand.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use cyberhd_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a labelled corpus with the NSL-KDD schema (41 features,
    //    5 traffic categories) and split it 75/25.
    let dataset = DatasetKind::NslKdd.generate(&SyntheticConfig::new(4_000, 42).difficulty(1.4))?;
    let (train, test) = train_test_split(&dataset, 0.25, 42)?;
    println!(
        "dataset: {} ({} train / {} test flows, {} classes)",
        dataset.schema().name(),
        train.len(),
        test.len(),
        dataset.num_classes()
    );

    // 2. Train the sealed artifact: preprocessing (one-hot + min-max) is
    //    fitted on the training split, CyberHD trains with 512 physical
    //    dimensions and 20% regeneration per retraining epoch.
    let (detector, elapsed) = Stopwatch::time(|| {
        Detector::builder()
            .dimension(512)
            .retrain_epochs(10)
            .regeneration_rate(0.2)
            .learning_rate(0.05)
            .encode_threads(4)
            .seed(7)
            .train(&train)
    });
    let detector = detector?;
    let model = detector.model().expect("dense detector");
    println!(
        "trained in {:.2} s: physical D = {}, effective D* = {} ({} dimensions regenerated)",
        elapsed.as_secs_f64(),
        model.dimension(),
        model.effective_dimension(),
        model.report().regeneration.total_regenerated
    );

    // 3. Evaluate on the held-out flows — raw records in, no manual
    //    transform step.
    let report = detector.evaluate(&test)?.report();
    println!("\ntest-set performance:\n{report}");

    // 4. Classify one raw flow.
    let record = test.records()[0].as_slice();
    let verdict = detector.detect(record)?;
    println!(
        "first test flow -> class {} ({}), similarity {:.3}",
        verdict.class,
        dataset.schema().classes()[verdict.class],
        verdict.similarity
    );

    // 5. Ship the artifact: save, reload, and verify the loaded detector
    //    reproduces the verdict bit for bit.
    let path = std::env::temp_dir().join("cyberhd_quickstart.chd");
    detector.save(&path)?;
    let loaded = Detector::load(&path)?;
    let bytes = std::fs::metadata(&path)?.len();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.detect(record)?, verdict, "loaded artifact must be bit-exact");
    println!("\nartifact: {bytes} bytes on disk, loaded copy is bit-exact");
    Ok(())
}

//! Robust, quantized edge deployment — a miniature of Table I and Fig. 5.
//!
//! Trains CyberHD once, deploys it at every bitwidth from 32 down to 1 bit,
//! prices each deployment with the CPU/FPGA energy models, and then measures
//! how gracefully each deployment degrades when 5% of its model bits are
//! flipped.
//!
//! ```text
//! cargo run --example robust_deployment --release
//! ```

use cyberhd_suite::prelude::*;
use eval::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DatasetKind::NslKdd.generate(&SyntheticConfig::new(4_000, 9).difficulty(1.4))?;
    let (train, test) = train_test_split(&dataset, 0.25, 9)?;
    let preprocessor = Preprocessor::fit(&train, Normalization::MinMax)?;
    let (train_x, train_y) = preprocessor.transform_with_labels(&train)?;
    let (test_x, test_y) = preprocessor.transform_with_labels(&test)?;

    let config = CyberHdConfig::builder(preprocessor.output_width(), dataset.num_classes())
        .dimension(512)
        .retrain_epochs(10)
        .regeneration_rate(0.2)
        .encode_threads(4)
        .seed(5)
        .build()?;
    let model = CyberHdTrainer::new(config)?.fit(&train_x, &train_y)?;
    let full_accuracy = model.accuracy(&test_x, &test_y)?;
    println!("full-precision CyberHD accuracy: {:.2}%\n", full_accuracy * 100.0);

    let cpu = CpuModel::default();
    let fpga = FpgaModel::default();
    let mut table = Table::new(vec![
        "deployment".into(),
        "clean accuracy (%)".into(),
        "accuracy after 5% bit flips (%)".into(),
        "model size (bits)".into(),
        "FPGA vs CPU energy (x)".into(),
    ]);

    for width in
        [BitWidth::B32, BitWidth::B16, BitWidth::B8, BitWidth::B4, BitWidth::B2, BitWidth::B1]
    {
        let deployed = model.quantize(width);
        let clean = deployed.accuracy(&test_x, &test_y)?;

        // Flip 5% of the stored model bits (averaged over three seeds).
        let mut corrupted_accuracy = 0.0;
        for trial in 0..3u64 {
            let mut corrupted = deployed.clone();
            let mut injector = BitFlipInjector::new(0.05, 100 + trial)?;
            injector.flip_quantized_set(corrupted.classes_mut());
            corrupted_accuracy += corrupted.accuracy(&test_x, &test_y)?;
        }
        corrupted_accuracy /= 3.0;

        // Price one training run of this configuration on both platforms.
        let workload = HdcWorkload::new(
            model.dimension(),
            width.bits(),
            model.num_classes(),
            preprocessor.output_width(),
            train_x.len(),
            10,
        )?;
        let fpga_vs_cpu =
            fpga.training_cost(&workload).efficiency_over(&cpu.training_cost(&workload));

        table.add_row(vec![
            format!("CyberHD @ {width}"),
            format!("{:.2}", clean * 100.0),
            format!("{:.2}", corrupted_accuracy * 100.0),
            format!("{}", deployed.storage_bits()),
            format!("{:.1}", fpga_vs_cpu),
        ]);
    }
    println!("{table}");
    println!("expected shape: low-bit deployments shrink the model by up to 32x, keep accuracy");
    println!("within a few points, degrade most gracefully under bit flips (1-bit best), and");
    println!("benefit the most from the FPGA's narrow-datapath parallelism.");
    Ok(())
}

//! Streaming (online) intrusion detection on an edge device, on the
//! `Detector` artifact API.
//!
//! The paper motivates HDC for NIDS with real-time detection on
//! resource-constrained devices: flows arrive continuously and the detector
//! must keep learning as the traffic mix drifts.  This example trains a
//! sealed detector with the builder's single-pass `.online()` mode, unseals
//! it with `into_online()` to keep learning from a UNSW-NB15-shaped stream
//! of **raw records**, triggers a dimension regeneration halfway through,
//! and re-seals the result for 1-bit deployment.
//!
//! ```text
//! cargo run --example streaming_detection --release
//! ```

use cyberhd_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A warmup corpus and a live stream with the UNSW-NB15 schema.
    let dataset =
        DatasetKind::UnswNb15.generate(&SyntheticConfig::new(6_000, 23).difficulty(1.3))?;
    let (warmup, stream) = train_test_split(&dataset, 0.8, 23)?;

    // Single-pass streaming training on the warmup flows, then unseal for
    // live learning.
    let detector = Detector::builder()
        .dimension(512)
        .regeneration_rate(0.2)
        .learning_rate(0.06)
        .seed(3)
        .online()
        .train(&warmup)?;
    let mut online = detector.into_online()?;

    println!("streaming {} UNSW-NB15-shaped raw flows through the detector...\n", stream.len());
    let checkpoint = stream.len() / 5;
    for (i, (record, &label)) in stream.records().iter().zip(stream.labels()).enumerate() {
        online.observe(record, label)?;
        if (i + 1) % checkpoint == 0 {
            println!(
                "after {:>5} flows: prequential accuracy {:.2}%",
                i + 1,
                online.prequential_accuracy() * 100.0,
            );
        }
        // Halfway through, drop and regenerate the least useful dimensions —
        // the streaming counterpart of CyberHD's retraining loop.
        if i + 1 == stream.len() / 2 {
            let regenerated = online.regenerate()?;
            println!("  >> regenerated {regenerated} insignificant dimensions");
        }
    }

    // Re-seal the learner and redeploy at 1-bit precision.
    let samples_seen = online.samples_seen();
    let sealed = online.seal();
    let model = sealed.model().expect("dense artifact");
    let deployed = model.quantize(BitWidth::B1);
    println!(
        "\nre-sealed model: {} flows streamed, {} classes, {} bits of 1-bit class memory",
        samples_seen,
        sealed.num_classes(),
        deployed.storage_bits()
    );
    let record = stream.records()[0].as_slice();
    let verdict = sealed.detect(record)?;
    println!(
        "first stream flow classified as {:?} (similarity {:.3}) by the re-sealed detector",
        dataset.schema().classes()[verdict.class],
        verdict.similarity
    );
    Ok(())
}

//! Streaming (online) intrusion detection on an edge device.
//!
//! The paper motivates HDC for NIDS with real-time detection on
//! resource-constrained devices: flows arrive one at a time and the detector
//! must keep learning as the traffic mix drifts.  This example feeds a
//! UNSW-NB15-shaped stream to the single-pass [`OnlineLearner`], tracks
//! prequential ("test-then-train") accuracy, and triggers a dimension
//! regeneration halfway through the stream.
//!
//! ```text
//! cargo run --example streaming_detection --release
//! ```

use cyberhd_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A stream of labelled flows with the UNSW-NB15 schema.
    let dataset =
        DatasetKind::UnswNb15.generate(&SyntheticConfig::new(6_000, 23).difficulty(1.3))?;
    let (warmup, stream) = train_test_split(&dataset, 0.8, 23)?;
    let preprocessor = Preprocessor::fit(&warmup, Normalization::MinMax)?;
    let (stream_x, stream_y) = preprocessor.transform_with_labels(&stream)?;

    let config = CyberHdConfig::builder(preprocessor.output_width(), dataset.num_classes())
        .dimension(512)
        .regeneration_rate(0.2)
        .learning_rate(0.06)
        .seed(3)
        .build()?;
    let mut learner = OnlineLearner::new(config)?;

    println!("streaming {} UNSW-NB15-shaped flows through the online learner...\n", stream_x.len());
    let checkpoint = stream_x.len() / 5;
    for (i, (x, &y)) in stream_x.iter().zip(&stream_y).enumerate() {
        learner.observe(x, y)?;
        if (i + 1) % checkpoint == 0 {
            println!(
                "after {:>5} flows: prequential accuracy {:.2}%  (effective D* = {})",
                i + 1,
                learner.prequential_accuracy() * 100.0,
                learner.effective_dimension()
            );
        }
        // Halfway through, drop and regenerate the least useful dimensions —
        // the streaming counterpart of CyberHD's retraining loop.
        if i + 1 == stream_x.len() / 2 {
            let regenerated = learner.regenerate()?;
            println!("  >> regenerated {regenerated} insignificant dimensions");
        }
    }

    // Freeze the learner and deploy it at 1-bit precision.
    let samples_seen = learner.samples_seen();
    let model = learner.into_model();
    let deployed = model.quantize(BitWidth::B1);
    println!(
        "\nfrozen model: {} flows seen, {} classes, {} bits of 1-bit class memory",
        samples_seen,
        model.num_classes(),
        deployed.storage_bits()
    );
    let sample = &stream_x[0];
    println!(
        "first stream flow classified as {:?} by the deployed 1-bit model",
        dataset.schema().classes()[deployed.predict(sample)?]
    );
    Ok(())
}

//! Workload zoo, language ID: the symbolic n-gram encoder on the same
//! Detector/serve stack the NIDS workloads use.
//!
//! Hyperdimensional text classification is the classic HDC showcase: a
//! character sequence becomes one hypervector by binding each trigram's
//! rotated item vectors (ρ²(V_a) ⊕ ρ(V_b) ⊕ V_c) and bundling every
//! window.  This example runs the repo's eight-language synthetic corpus
//! (seeded first-order Markov chains) through that path end to end:
//!
//! 1. train a sealed [`Detector`] with the trigram encoder and score it,
//!    dense and 1-bit,
//! 2. round-trip the artifact through bytes and reproduce a verdict bit
//!    for bit,
//! 3. calibrate open-set thresholds and watch the held-out ninth
//!    language get flagged as novel,
//! 4. serve text snippets through the micro-batching [`ServeEngine`].
//!
//! ```text
//! cargo run --example language_id --release
//! ```

use cyberhd_suite::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Eight seeded Markov languages over a 27-symbol alphabet (a–z plus
    // the word separator), 64 characters per record.
    let train = language_id::generate(2000, 11)?;
    let test = language_id::generate(500, 12)?;
    println!(
        "language-ID corpus: {} train / {} test records, {} chars each, {} languages",
        train.len(),
        test.len(),
        language_id::SEQUENCE_LEN,
        language_id::NUM_SEEN,
    );

    // The trigram bind-permute-bundle detector.  Symbolic item memories
    // have no low-variance dimensions to drop, so regeneration stays off.
    let builder = || {
        Detector::builder()
            .encoder(EncoderKind::NGram)
            .ngram_order(3)
            .dimension(2048)
            .retrain_epochs(3)
            .regeneration_rate(0.0)
            .seed(0xB00C)
    };
    let dense = builder().train(&train)?;
    let one_bit = builder().quantize(BitWidth::B1).train(&train)?;
    println!("dense accuracy : {:.3}", dense.accuracy(&test)?);
    println!("1-bit accuracy : {:.3}", one_bit.accuracy(&test)?);

    // Sealed artifacts ship as bytes and reproduce verdicts bit for bit.
    let loaded = Detector::from_bytes(&dense.to_bytes())?;
    let probe = test.records()[0].as_slice();
    assert_eq!(loaded.detect(probe)?, dense.detect(probe)?);
    println!("artifact round-trip: {} bytes, verdicts bit-identical", dense.to_bytes().len());

    // Zero-day: the ninth language is in the schema but never trained
    // on.  Open-set thresholds flag it instead of misfiling it.
    let open = builder().open_set(0.05).train(&train)?;
    let mut weights = vec![0.0; language_id::NUM_LANGUAGES];
    weights[language_id::NOVEL_LANGUAGE] = 1.0;
    let unseen = language_id::generate_mix(300, &weights, 0.0, 23)?;
    let novel_rate = |verdicts: &[Verdict]| {
        verdicts.iter().filter(|v| v.novel).count() as f64 / verdicts.len() as f64
    };
    let known_novel = novel_rate(&open.detect_batch(test.records())?);
    let unseen_novel = novel_rate(&open.detect_batch(unseen.records())?);
    println!(
        "open-set novel rate: known languages {known_novel:.2}, unseen language {unseen_novel:.2}"
    );

    // Serving works unchanged: the engine never looks inside the encoder.
    let registry = Arc::new(DetectorRegistry::new());
    registry.register("texts", dense.clone())?;
    let engine = ServeEngine::new(Arc::clone(&registry), ServeConfig::default())?;
    let tickets: Vec<Ticket> = test.records()[..32]
        .iter()
        .map(|record| engine.submit("texts", record))
        .collect::<Result<_, _>>()?;
    engine.flush("texts")?;
    let classes = train.schema().classes();
    let served = engine.take(&tickets[0])?;
    println!(
        "served {} snippets; first verdict: {} (similarity {:.3})",
        tickets.len(),
        classes[served.class],
        served.similarity,
    );
    assert_eq!(served, dense.detect(test.records()[0].as_slice())?);
    Ok(())
}

//! Drift-adaptive serving: feedback-driven adaptation with automatic
//! regeneration and registry hot-swap.
//!
//! The paper motivates CyberHD with non-stationary edge traffic: the
//! benign mix shifts and new attack campaigns appear, so a frozen
//! artifact decays.  This example runs the closed loop the repo ships for
//! that regime:
//!
//! 1. an operator serves a tenant through the frozen micro-batching
//!    [`ServeEngine`] (the fast path),
//! 2. an [`AdaptiveLane`] for the same tenant consumes the labelled
//!    feedback stream (prequential test-then-train),
//! 3. when its [`DriftMonitor`] trips on the post-shift error surge, the
//!    lane regenerates low-variance dimensions in place and republishes a
//!    sealed snapshot through the shared [`DetectorRegistry`] —
//! 4. the frozen engine hot-swaps to the adapted artifact atomically;
//!    in-flight micro-batches finish on their pinned generation.
//!
//! ```text
//! cargo run --example adaptive_serving --release
//! ```

use cyberhd_suite::prelude::*;
use nids_data::drift::{DriftPhase, DriftStream};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = DatasetKind::NslKdd;
    let (schema, profiles) = (kind.schema(), kind.profiles());
    let classes = profiles.len();
    let rare_attack = classes - 1;

    // Train on calm traffic in which the last attack family is vanishingly
    // rare — the regime the artifact will later be wrong about.
    let calm_mix = DriftPhase::stationary(1500, classes).scale_class(rare_attack, 0.02);
    let train = DriftStream::generate(&schema, &profiles, &[calm_mix], 0xCA1A)?;
    let detector = Detector::builder()
        .dimension(512)
        .retrain_epochs(3)
        .regeneration_rate(0.1)
        .seed(7)
        .train(train.dataset())?;

    // One registry, one tenant, two consumers: the frozen engine serves
    // it, the adaptive lane republishes into it.
    let registry = Arc::new(DetectorRegistry::new());
    registry.register("edge", detector.clone())?;
    let engine = ServeEngine::new(Arc::clone(&registry), ServeConfig::default())?;
    let lane = AdaptiveLane::with_registry(
        "edge",
        detector.clone(),
        AdaptiveConfig {
            monitor: DriftMonitorConfig {
                window: 96,
                min_observations: 48,
                error_delta: 0.12,
                unknown_surge: 2.0, // closed-set artifact: novelty disabled
                cooldown: 96,
            },
            ..AdaptiveConfig::default()
        },
        Arc::clone(&registry),
    )?;
    println!("registered edge: {}", registry.info("edge").expect("registered"));

    // Live traffic: a calm phase, then the rare attack erupts while the
    // benign mix collapses and the traffic gets noisier.
    let live_phases = [
        DriftPhase::stationary(400, classes).scale_class(rare_attack, 0.02),
        DriftPhase::stationary(1000, classes)
            .scale_class(rare_attack, 30.0)
            .scale_class(0, 0.3)
            .difficulty(1.6),
    ];
    let live = DriftStream::generate(&schema, &profiles, &live_phases, 0xD41F7)?;
    let shift_at = live.phase_start(1)?;

    let mut mirror_tickets = Vec::new();
    let mut swap_log: Vec<(usize, u64)> = Vec::new();
    let mut version = registry.version("edge").expect("registered");
    for (i, (record, label, _phase)) in live.iter().enumerate() {
        // The operator's serving path (frozen, micro-batched)...
        mirror_tickets.push(engine.submit("edge", record)?);
        // ...and the analyst feedback stream into the adaptive lane.
        lane.submit_labelled(record, label)?;
        if i % 32 == 31 {
            engine.flush("edge")?;
            lane.flush()?;
        }
        let now = registry.version("edge").expect("registered");
        if now != version {
            swap_log.push((i, now));
            version = now;
        }
    }
    engine.flush("edge")?;
    lane.flush()?;

    let stats = lane.stats();
    println!("\nadaptive lane after {} flows:", stats.flows_served);
    println!("  {stats}");
    for (flow, version) in &swap_log {
        println!("  flow {flow:>5}: registry hot-swapped to v{version} (automatic republish)");
    }
    assert!(
        stats.monitor_trips >= 1 && stats.publishes >= 1,
        "the shift must trip the monitor and republish"
    );
    assert!(
        swap_log.iter().all(|&(flow, _)| flow >= shift_at),
        "no swap may fire before the drift actually starts"
    );

    // What adaptation bought: post-drift accuracy of the frozen v1
    // artifact vs the lane's prequential verdicts over the same window.
    let window = live.phase_range(1)?;
    let tail = window.start + window.len() / 2..window.end;
    let v1_verdicts = detector.detect_batch(&live.dataset().records()[tail.clone()])?;
    let labels = &live.dataset().labels()[tail.clone()];
    let v1_accuracy = v1_verdicts.iter().zip(labels).filter(|(v, &y)| v.class == y).count() as f64
        / labels.len() as f64;
    println!(
        "\npost-drift tail ({} flows): frozen v1 accuracy {:.3}, adaptive window accuracy {:.3}",
        labels.len(),
        v1_accuracy,
        stats.window_accuracy,
    );
    assert!(
        stats.window_accuracy > v1_accuracy + 0.05,
        "the adapted lane must beat the frozen artifact post-drift"
    );

    // The handoff, end to end: fresh flows served by the frozen engine now
    // score on the *adapted* artifact — bit-identical to a detect_batch
    // call on the latest published snapshot.
    let probe: Vec<Vec<f32>> = live.dataset().records()[..64].to_vec();
    let probe_tickets: Vec<Ticket> =
        probe.iter().map(|record| engine.submit("edge", record)).collect::<Result<_, _>>()?;
    engine.flush("edge")?;
    let (published, version) = registry.current("edge").expect("registered");
    let oracle = published.detect_batch(&probe)?;
    for (ticket, want) in probe_tickets.iter().zip(&oracle) {
        assert_eq!(
            engine.take(ticket)?,
            *want,
            "post-swap serving must be bit-identical to the published artifact"
        );
    }
    println!(
        "\nhandoff check: {} probe flows served by the frozen engine reproduce the published \
         v{version} artifact bit for bit",
        probe.len()
    );
    Ok(())
}
